//! The serving-node role: one pod of a multi-process cluster.
//!
//! A [`ServingNode`] wraps a single-pod in-process [`ServingCluster`] with
//! the two planes a real deployment needs:
//!
//! * **data plane** — the event-loop [`HttpServer`] serving the full REST
//!   surface (`/recommend`, `/metrics`, …), identical to the in-process
//!   server because it *is* the in-process server;
//! * **control plane** — a framed binary protocol on a second socket for
//!   the router tier: liveness pings, index-artifact distribution
//!   (validated with `serenade_index::binfmt` before anything is
//!   published — a corrupt artifact is rejected and the old generation
//!   keeps serving), and session export/import/forget for ownership
//!   handoff when membership changes.
//!
//! # Control protocol
//!
//! Requests are `b"SRNC" op:u8 len:u32le payload`, responses are
//! `b"SRNR" status:u8 len:u32le payload` (status 0 = ok, 1 = error with a
//! UTF-8 message payload). Session sets are encoded as
//! `count:u32le (sid:u64le len:u32le item:u64le*len)*`. All reads are
//! bounded: a declared length beyond [`MAX_CTRL_FRAME_BYTES`] is rejected
//! before any allocation, and payloads are read incrementally so a hostile
//! length costs only the bytes actually sent.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serenade_core::{CoreError, ItemId, SessionIndex};
use serenade_index::binfmt;
use serenade_telemetry::TraceConfig;

use crate::cluster::ServingCluster;
use crate::engine::{Engine, EngineConfig};
use crate::http::{HttpServer, HttpServerConfig};
use crate::rules::BusinessRules;

/// Request frame magic.
const CTRL_MAGIC: &[u8; 4] = b"SRNC";
/// Response frame magic.
const CTRL_RESPONSE_MAGIC: &[u8; 4] = b"SRNR";

/// Largest accepted control payload: must admit a full index artifact
/// (bounded by `binfmt`'s own 1 GiB payload cap plus framing).
pub const MAX_CTRL_FRAME_BYTES: u64 = (1 << 30) + (1 << 16);

/// Control opcodes.
mod op {
    /// Liveness probe; responds with the serving index generation.
    pub const PING: u8 = 1;
    /// Validate + publish an index artifact (`binfmt` bytes).
    pub const LOAD_INDEX: u8 = 2;
    /// Export up to `cap` live sessions (payload: `cap:u32le`).
    pub const EXPORT: u8 = 3;
    /// Import a session set (prepend semantics, see `Engine::import_session`).
    pub const IMPORT: u8 = 4;
    /// Physically erase a list of session ids (`count:u32le sid:u64le*`).
    pub const FORGET: u8 = 5;
}

/// How a node identifies and binds itself.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Member id in the cluster's rendezvous key space. Nodes `0..n`
    /// reproduce exactly the ownership of an in-process `n`-pod cluster,
    /// which the conformance tests rely on.
    pub node_id: u64,
    /// Control-socket bind address (port 0 for ephemeral).
    pub ctrl_addr: String,
    /// Data-plane server configuration (bind address, workers, limits).
    pub server: HttpServerConfig,
    /// Engine configuration for the node's single pod.
    pub engine: EngineConfig,
    /// Business rules for the node's single pod.
    pub rules: BusinessRules,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            node_id: 0,
            ctrl_addr: String::from("127.0.0.1:0"),
            server: HttpServerConfig::default(),
            engine: EngineConfig::default(),
            rules: BusinessRules::none(),
        }
    }
}

/// A running serving node: data-plane HTTP server + control socket around
/// one single-pod cluster. Dropping it (or [`ServingNode::shutdown`])
/// drains the data plane and stops the control thread.
pub struct ServingNode {
    id: u64,
    cluster: Arc<ServingCluster>,
    server: Option<HttpServer>,
    data_addr: SocketAddr,
    ctrl_addr: SocketAddr,
    ctrl_stop: Arc<AtomicBool>,
    ctrl_thread: Option<JoinHandle<()>>,
}

impl ServingNode {
    /// Builds the single-pod cluster, starts the data-plane server and the
    /// control listener.
    pub fn start(index: Arc<SessionIndex>, config: NodeConfig) -> Result<Self, CoreError> {
        let cluster = Arc::new(ServingCluster::with_trace_config(
            index,
            1,
            config.engine,
            config.rules,
            TraceConfig::default(),
        )?);
        let server =
            HttpServer::serve(Arc::clone(&cluster), config.server).map_err(|e| {
                CoreError::InvalidConfig {
                    parameter: "node.server",
                    reason: format!("data plane failed to bind: {e}"),
                }
            })?;
        let data_addr = server.addr();
        let listener = TcpListener::bind(&config.ctrl_addr).map_err(|e| {
            CoreError::InvalidConfig {
                parameter: "node.ctrl_addr",
                reason: format!("control plane failed to bind: {e}"),
            }
        })?;
        let ctrl_addr = listener.local_addr().map_err(|e| CoreError::InvalidConfig {
            parameter: "node.ctrl_addr",
            reason: format!("control address unavailable: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| CoreError::InvalidConfig {
            parameter: "node.ctrl_addr",
            reason: format!("control listener mode: {e}"),
        })?;
        let ctrl_stop = Arc::new(AtomicBool::new(false));
        let ctrl_thread = {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&ctrl_stop);
            std::thread::spawn(move || control_accept_loop(listener, cluster, stop))
        };
        Ok(Self {
            id: config.node_id,
            cluster,
            data_addr,
            server: Some(server),
            ctrl_addr,
            ctrl_stop,
            ctrl_thread: Some(ctrl_thread),
        })
    }

    /// The node's member id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The data-plane address.
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// The control-socket address.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// The node's cluster (the single pod plus telemetry).
    pub fn cluster(&self) -> &Arc<ServingCluster> {
        &self.cluster
    }

    /// Drains the data plane and stops the control thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        self.ctrl_stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.ctrl_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServingNode {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accept loop for the control socket. Nonblocking accept + stop-flag poll;
/// each accepted connection gets its own thread (control connections are
/// one-per-router, not one-per-request, so the thread count is the router
/// count — the data plane's reactor rationale does not apply here).
fn control_accept_loop(
    listener: TcpListener,
    cluster: Arc<ServingCluster>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cluster = Arc::clone(&cluster);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || control_connection(stream, cluster, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one keep-alive control connection until EOF, error or shutdown.
fn control_connection(
    mut stream: TcpStream,
    cluster: Arc<ServingCluster>,
    stop: Arc<AtomicBool>,
) {
    // Bounded reads so a dead peer cannot pin the thread forever; the
    // first-byte wait polls the stop flag between timeouts.
    if stream.set_read_timeout(Some(Duration::from_millis(250))).is_err() {
        return;
    }
    loop {
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // EOF: router closed the control channel.
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame has started: the rest must follow promptly.
        let Ok((opcode, payload)) = read_frame_rest(&mut stream, first[0]) else { return };
        let (status, body) = execute(&cluster, opcode, &payload);
        if write_response(&mut stream, status, &body).is_err() {
            return;
        }
    }
}

/// Reads the remainder of a request frame given its first magic byte.
fn read_frame_rest(stream: &mut TcpStream, first: u8) -> std::io::Result<(u8, Vec<u8>)> {
    let corrupt = || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad control frame");
    if first != CTRL_MAGIC[0] {
        return Err(corrupt());
    }
    let mut head = [0u8; 3 + 1 + 4];
    stream.read_exact(&mut head)?;
    if head[..3] != CTRL_MAGIC[1..] {
        return Err(corrupt());
    }
    let opcode = head[3];
    let len = u64::from(u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")));
    if len > MAX_CTRL_FRAME_BYTES {
        return Err(corrupt());
    }
    let mut payload = Vec::new();
    stream.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(corrupt());
    }
    Ok((opcode, payload))
}

/// Writes one response frame.
fn write_response(stream: &mut TcpStream, status: u8, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(9 + payload.len());
    frame.extend_from_slice(CTRL_RESPONSE_MAGIC);
    frame.push(status);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

/// The single pod behind a node cluster.
fn pod(cluster: &ServingCluster) -> &Arc<Engine> {
    &cluster.pods()[0]
}

/// Executes one control operation; returns `(status, payload)`.
fn execute(cluster: &ServingCluster, opcode: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    match opcode {
        op::PING => {
            let generation = pod(cluster).index_handle().generation();
            (0, generation.to_le_bytes().to_vec())
        }
        op::LOAD_INDEX => match binfmt::read_index(payload) {
            Ok(index) => match cluster.reload_index(Arc::new(index)) {
                Ok(()) => {
                    let generation = pod(cluster).index_handle().generation();
                    (0, generation.to_le_bytes().to_vec())
                }
                Err(e) => (1, format!("index rejected: {e}").into_bytes()),
            },
            Err(e) => (1, format!("artifact rejected: {e}").into_bytes()),
        },
        op::EXPORT => {
            if payload.len() != 4 {
                return (1, b"export expects cap:u32le".to_vec());
            }
            let cap = u32::from_le_bytes(payload.try_into().expect("4 bytes")) as usize;
            let sessions = pod(cluster).export_sessions(cap);
            (0, encode_sessions(&sessions))
        }
        op::IMPORT => match decode_sessions(payload) {
            Ok(sessions) => {
                let n = sessions.len() as u32;
                for (sid, items) in sessions {
                    pod(cluster).import_session(sid, items);
                }
                (0, n.to_le_bytes().to_vec())
            }
            Err(e) => (1, e.into_bytes()),
        },
        op::FORGET => match decode_session_ids(payload) {
            Ok(sids) => {
                let mut dropped = 0u32;
                for sid in sids {
                    if pod(cluster).forget_session(sid) {
                        dropped += 1;
                    }
                }
                (0, dropped.to_le_bytes().to_vec())
            }
            Err(e) => (1, e.into_bytes()),
        },
        _ => (1, format!("unknown control opcode {opcode}").into_bytes()),
    }
}

/// Encodes a session set for the wire.
pub(crate) fn encode_sessions(sessions: &[(u64, Vec<ItemId>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + sessions.len() * 16);
    out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for (sid, items) in sessions {
        out.extend_from_slice(&sid.to_le_bytes());
        out.extend_from_slice(&(items.len() as u32).to_le_bytes());
        for item in items {
            out.extend_from_slice(&item.to_le_bytes());
        }
    }
    out
}

/// Decodes a session set; allocation is bounded by the bytes present.
pub(crate) fn decode_sessions(bytes: &[u8]) -> Result<Vec<(u64, Vec<ItemId>)>, String> {
    let mut cursor = Cursor { bytes, at: 0 };
    let count = cursor.u32()? as usize;
    // A count cannot exceed what the payload could possibly hold.
    if count > bytes.len() / 12 {
        return Err(format!("session count {count} exceeds the payload"));
    }
    let mut sessions = Vec::with_capacity(count);
    for _ in 0..count {
        let sid = cursor.u64()?;
        let len = cursor.u32()? as usize;
        if len > cursor.remaining() / 8 {
            return Err(format!("session length {len} exceeds the payload"));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(cursor.u64()?);
        }
        sessions.push((sid, items));
    }
    if cursor.remaining() != 0 {
        return Err(String::from("trailing bytes after session set"));
    }
    Ok(sessions)
}

/// Encodes a bare session-id list (for FORGET).
pub(crate) fn encode_session_ids(sids: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + sids.len() * 8);
    out.extend_from_slice(&(sids.len() as u32).to_le_bytes());
    for sid in sids {
        out.extend_from_slice(&sid.to_le_bytes());
    }
    out
}

/// Decodes a bare session-id list.
pub(crate) fn decode_session_ids(bytes: &[u8]) -> Result<Vec<u64>, String> {
    let mut cursor = Cursor { bytes, at: 0 };
    let count = cursor.u32()? as usize;
    if count > bytes.len() / 8 {
        return Err(format!("id count {count} exceeds the payload"));
    }
    let mut sids = Vec::with_capacity(count);
    for _ in 0..count {
        sids.push(cursor.u64()?);
    }
    if cursor.remaining() != 0 {
        return Err(String::from("trailing bytes after id list"));
    }
    Ok(sids)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn u32(&mut self) -> Result<u32, String> {
        let end = self.at.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else { return Err(String::from("truncated session set")) };
        let v = u32::from_le_bytes(self.bytes[self.at..end].try_into().expect("4 bytes"));
        self.at = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.at.checked_add(8).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else { return Err(String::from("truncated session set")) };
        let v = u64::from_le_bytes(self.bytes[self.at..end].try_into().expect("8 bytes"));
        self.at = end;
        Ok(v)
    }
}

/// The router side of the control protocol: one keep-alive connection to a
/// node's control socket.
pub struct ControlClient {
    stream: TcpStream,
}

impl ControlClient {
    /// Connects with a bounded dial + I/O timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    fn call(&mut self, opcode: u8, payload: &[u8]) -> std::io::Result<(u8, Vec<u8>)> {
        let mut frame = Vec::with_capacity(9 + payload.len());
        frame.extend_from_slice(CTRL_MAGIC);
        frame.push(opcode);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        self.stream.write_all(&frame)?;
        let corrupt =
            || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad control response");
        let mut head = [0u8; 4 + 1 + 4];
        self.stream.read_exact(&mut head)?;
        if &head[..4] != CTRL_RESPONSE_MAGIC {
            return Err(corrupt());
        }
        let status = head[4];
        let len = u64::from(u32::from_le_bytes(head[5..9].try_into().expect("4 bytes")));
        if len > MAX_CTRL_FRAME_BYTES {
            return Err(corrupt());
        }
        let mut body = Vec::new();
        (&mut self.stream).take(len).read_to_end(&mut body)?;
        if body.len() as u64 != len {
            return Err(corrupt());
        }
        Ok((status, body))
    }

    fn expect_u64(response: (u8, Vec<u8>)) -> std::io::Result<u64> {
        let (status, body) = response;
        if status != 0 || body.len() != 8 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        Ok(u64::from_le_bytes(body[..8].try_into().expect("8 bytes")))
    }

    fn expect_u32(response: (u8, Vec<u8>)) -> std::io::Result<u32> {
        let (status, body) = response;
        if status != 0 || body.len() != 4 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        Ok(u32::from_le_bytes(body[..4].try_into().expect("4 bytes")))
    }

    /// Liveness probe; returns the node's serving index generation.
    pub fn ping(&mut self) -> std::io::Result<u64> {
        let response = self.call(op::PING, &[])?;
        Self::expect_u64(response)
    }

    /// Publishes an index artifact. `Ok(Ok(generation))` on success,
    /// `Ok(Err(reason))` when the node rejected the artifact (and keeps
    /// serving its old generation), `Err` on transport failure.
    pub fn load_index(&mut self, artifact: &[u8]) -> std::io::Result<Result<u64, String>> {
        let (status, body) = self.call(op::LOAD_INDEX, artifact)?;
        if status == 0 && body.len() == 8 {
            Ok(Ok(u64::from_le_bytes(body[..8].try_into().expect("8 bytes"))))
        } else {
            Ok(Err(String::from_utf8_lossy(&body).into_owned()))
        }
    }

    /// Exports up to `cap` live sessions from the node.
    pub fn export_sessions(&mut self, cap: u32) -> std::io::Result<Vec<(u64, Vec<ItemId>)>> {
        let (status, body) = self.call(op::EXPORT, &cap.to_le_bytes())?;
        if status != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        decode_sessions(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Imports a session set into the node; returns how many were applied.
    pub fn import_sessions(
        &mut self,
        sessions: &[(u64, Vec<ItemId>)],
    ) -> std::io::Result<u32> {
        let response = self.call(op::IMPORT, &encode_sessions(sessions))?;
        Self::expect_u32(response)
    }

    /// Physically erases sessions on the node; returns how many existed.
    pub fn forget_sessions(&mut self, sids: &[u64]) -> std::io::Result<u32> {
        let response = self.call(op::FORGET, &encode_session_ids(sids))?;
        Self::expect_u32(response)
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use serenade_core::Click;

    fn seed_index() -> Arc<SessionIndex> {
        let mut clicks = Vec::new();
        for s in 0..40u64 {
            let ts = 100 + s * 10;
            clicks.push(Click::new(s + 1, s % 6, ts));
            clicks.push(Click::new(s + 1, (s + 1) % 6, ts + 1));
        }
        Arc::new(SessionIndex::build(&clicks, 500).unwrap())
    }

    fn start_node() -> ServingNode {
        ServingNode::start(seed_index(), NodeConfig::default()).unwrap()
    }

    #[test]
    fn session_blob_roundtrips() {
        let sessions = vec![(7u64, vec![1u64, 2, 3]), (9, vec![]), (u64::MAX, vec![5])];
        let bytes = encode_sessions(&sessions);
        assert_eq!(decode_sessions(&bytes).unwrap(), sessions);
        let ids = vec![1u64, u64::MAX, 42];
        assert_eq!(decode_session_ids(&encode_session_ids(&ids)).unwrap(), ids);
    }

    #[test]
    fn hostile_session_blobs_are_rejected_cleanly() {
        // Declared counts far beyond the payload must fail before allocating.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_sessions(&huge).is_err());
        assert!(decode_session_ids(&huge).is_err());
        // Truncations of a valid blob never panic.
        let bytes = encode_sessions(&[(1, vec![2, 3]), (4, vec![5])]);
        for cut in 0..bytes.len() {
            let _ = decode_sessions(&bytes[..cut]);
        }
        // Trailing garbage is detected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_sessions(&padded).is_err());
    }

    #[test]
    fn ping_reports_the_index_generation() {
        let node = start_node();
        let mut ctrl =
            ControlClient::connect(node.ctrl_addr(), Duration::from_secs(2)).unwrap();
        assert_eq!(ctrl.ping().unwrap(), 1, "fresh node serves generation 1");
        node.shutdown();
    }

    #[test]
    fn load_index_publishes_a_valid_artifact_and_rejects_a_corrupt_one() {
        let node = start_node();
        let mut ctrl =
            ControlClient::connect(node.ctrl_addr(), Duration::from_secs(2)).unwrap();
        let mut artifact = Vec::new();
        binfmt::write_index(&seed_index(), &mut artifact).unwrap();

        let generation = ctrl.load_index(&artifact).unwrap().unwrap();
        assert_eq!(generation, 2, "publish bumps the generation");

        // Flip one payload byte: the node must reject it and keep serving.
        let mut corrupt = artifact.clone();
        let flip = corrupt.len() - 25;
        corrupt[flip] ^= 0x40;
        let rejection = ctrl.load_index(&corrupt).unwrap().unwrap_err();
        assert!(rejection.contains("rejected"), "{rejection}");
        assert_eq!(ctrl.ping().unwrap(), 2, "old generation keeps serving");
        node.shutdown();
    }

    #[test]
    fn export_import_forget_hand_sessions_across_nodes() {
        let a = start_node();
        let b = start_node();
        // Give node A some session state through its data plane.
        let mut http = crate::http::HttpClient::connect(a.data_addr()).unwrap();
        for item in [0u64, 1, 2] {
            let body =
                format!("{{\"session_id\": 77, \"item_id\": {item}, \"consent\": true}}");
            let (status, _) = http.post("/recommend", &body).unwrap();
            assert_eq!(status, 200);
        }
        let mut ctrl_a =
            ControlClient::connect(a.ctrl_addr(), Duration::from_secs(2)).unwrap();
        let mut ctrl_b =
            ControlClient::connect(b.ctrl_addr(), Duration::from_secs(2)).unwrap();
        let exported = ctrl_a.export_sessions(1_000).unwrap();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].0, 77);
        assert_eq!(exported[0].1.len(), 3);

        assert_eq!(ctrl_b.import_sessions(&exported).unwrap(), 1);
        assert_eq!(b.cluster().live_sessions(), 1);
        assert_eq!(ctrl_a.forget_sessions(&[77]).unwrap(), 1);
        assert_eq!(a.cluster().live_sessions(), 0);
        a.shutdown();
        b.shutdown();
    }
}
