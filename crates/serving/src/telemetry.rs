//! Cluster-wide observability: the metric registry, request-id source and
//! slow-request trace ring behind `GET /metrics` and `GET /debug/slow`.
//!
//! One [`ClusterTelemetry`] exists per [`crate::cluster::ServingCluster`].
//! It owns the `serenade-telemetry` [`Registry`] every pod's counters and
//! stage histograms are registered into (see
//! [`crate::stats::ServingStats::register_into`]), the cluster-level
//! metrics (index generation, uptime, rollover duration), and the
//! [`TraceRing`] that keeps the N slowest recent requests with their
//! per-stage breakdown.
//!
//! Request ids are assigned by the HTTP layer at ingress (so one id spans
//! the whole `http → cluster → engine` path) from the monotonically
//! increasing source here; in-process callers that skip HTTP get an id
//! assigned at trace-record time instead.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serenade_telemetry::{Gauge, Histogram, HistogramConfig, Registry, TraceConfig, TraceRing};

/// Atomic request-id source. Plain `std` atomics: the id source is not part
/// of any loom model (the telemetry crate's own primitives are the
/// model-checked ones).
use std::sync::atomic::{AtomicU64, Ordering};

/// Observability state shared by every pod of a serving cluster.
#[derive(Debug)]
pub struct ClusterTelemetry {
    registry: Registry,
    traces: TraceRing,
    next_request_id: AtomicU64,
    started: Instant,
    generation: Arc<Gauge>,
    rollover_seconds: Arc<Histogram>,
}

impl ClusterTelemetry {
    /// Creates the telemetry hub and registers the cluster-level metrics:
    /// `serenade_index_generation`, `serenade_uptime_seconds` and
    /// `serenade_index_rollover_duration_seconds`.
    pub fn new(trace: TraceConfig) -> Self {
        let registry = Registry::new();
        let started = Instant::now();
        let generation = registry.gauge(
            "serenade_index_generation",
            "Monotone index version; bumps on every successful rollover.",
            &[],
        );
        generation.set(1);
        registry.polled_gauge(
            "serenade_uptime_seconds",
            "Seconds since the cluster was constructed.",
            &[],
            move || started.elapsed().as_secs(),
        );
        let rollover_seconds = registry.histogram(
            "serenade_index_rollover_duration_seconds",
            "Duration of index rollovers (build + atomic swap).",
            &[],
            HistogramConfig { shards: 1, ..HistogramConfig::default() },
        );
        Self {
            registry,
            traces: TraceRing::new(trace),
            next_request_id: AtomicU64::new(0),
            started,
            generation,
            rollover_seconds,
        }
    }

    /// The metric registry rendered at `GET /metrics`.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-request trace ring served at `GET /debug/slow`.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Allocates the next request id (monotone, starting at 1; 0 means
    /// "unassigned" throughout the pipeline).
    pub fn next_request_id(&self) -> u64 {
        // ORDERING: id allocator with no partner; ids must be unique, not
        // ordered with any other memory.
        self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Seconds since cluster construction.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The currently published index generation (starts at 1).
    pub fn index_generation(&self) -> u64 {
        self.generation.get()
    }

    /// Records one successful rollover: bumps the generation gauge and
    /// feeds the rollover-duration histogram. Rollovers are externally
    /// serialised (one publisher), so read-modify-write on the gauge is
    /// race-free by contract.
    pub fn record_rollover(&self, took: Duration) {
        self.generation.set(self.generation.get() + 1);
        self.rollover_seconds.record(took);
    }
}

impl Default for ClusterTelemetry {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let t = ClusterTelemetry::default();
        let a = t.next_request_id();
        let b = t.next_request_id();
        assert!(a > 0);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn rollovers_bump_generation_and_histogram() {
        let t = ClusterTelemetry::default();
        assert_eq!(t.index_generation(), 1);
        t.record_rollover(Duration::from_millis(120));
        t.record_rollover(Duration::from_millis(80));
        assert_eq!(t.index_generation(), 3);
        let text = t.registry().render();
        assert!(text.contains("serenade_index_generation 3"), "{text}");
        assert!(
            text.contains("serenade_index_rollover_duration_seconds_count 2"),
            "{text}"
        );
    }

    #[test]
    fn cluster_metrics_render_uptime() {
        let t = ClusterTelemetry::default();
        let text = t.registry().render();
        assert!(text.contains("# TYPE serenade_uptime_seconds gauge"), "{text}");
    }
}
