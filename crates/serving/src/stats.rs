//! Serving-side observability: per-engine request counters and latency.
//!
//! The paper's operational story (Sections 5.2.2–5.2.3, 7) rests on being
//! able to watch request rate, latency percentiles and core usage per pod.
//! This module provides the in-process equivalent: a lock-striped stats
//! collector every [`crate::engine::Engine`] feeds, exposed over HTTP as
//! `GET /stats` and queryable in-process for the dashboards the benchmarks
//! print. Latency is recorded per pipeline stage (session / predict /
//! policy), so the breakdown of where a request's time went is first-class.
//!
//! Recording takes one stripe lock chosen per thread: concurrent workers
//! land on different stripes, so the collector never serialises the request
//! path the way a single recorder mutex would.

use std::time::Duration;

use serenade_metrics::{LatencyRecorder, LatencySummary};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{self, Mutex};

use crate::context::StageTimings;

/// Number of independently locked recorder stripes.
const STRIPES: usize = 8;

/// Keeps each stripe's mutex on its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(Mutex<StageRecorders>);

/// One stripe's latency recorders: total plus the three pipeline stages.
#[derive(Debug, Default)]
struct StageRecorders {
    total: LatencyRecorder,
    session: LatencyRecorder,
    predict: LatencyRecorder,
    policy: LatencyRecorder,
}

/// Thread-safe request statistics for one engine/pod.
#[derive(Debug)]
pub struct ServingStats {
    requests: AtomicU64,
    depersonalised: AtomicU64,
    empty_responses: AtomicU64,
    errors: AtomicU64,
    busy_ns: AtomicU64,
    stripes: Box<[Stripe]>,
}

impl Default for ServingStats {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            depersonalised: AtomicU64::new(0),
            empty_responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            stripes: (0..STRIPES).map(|_| Stripe::default()).collect(),
        }
    }
}

/// A point-in-time snapshot of [`ServingStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests handled since startup.
    pub requests: u64,
    /// Requests served in depersonalised (no-consent) mode.
    pub depersonalised: u64,
    /// Requests that produced an empty recommendation list.
    pub empty_responses: u64,
    /// Requests that failed with a serving error (HTTP 5xx).
    pub errors: u64,
    /// Total busy time spent inside request handling.
    pub busy: Duration,
    /// End-to-end latency percentiles, if any requests were recorded.
    pub latency: Option<LatencySummary>,
    /// Session-stage latency (evolving-session update + view).
    pub session_latency: Option<LatencySummary>,
    /// Prediction-stage latency (VMIS-kNN).
    pub predict_latency: Option<LatencySummary>,
    /// Policy-stage latency (business rules + truncation).
    pub policy_latency: Option<LatencySummary>,
}

impl ServingStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn stripe(&self) -> &Mutex<StageRecorders> {
        // Per-thread stripe choice lives in the sync facade so the model
        // checker can replay it deterministically.
        &self.stripes[sync::stripe_slot(STRIPES)].0
    }

    /// Records one failed request (the engine returned a serving error).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one handled request with its per-stage timing breakdown.
    pub fn record(&self, timings: StageTimings, depersonalised: bool, response_len: usize) {
        let total = timings.total();
        self.requests.fetch_add(1, Ordering::Relaxed);
        if depersonalised {
            self.depersonalised.fetch_add(1, Ordering::Relaxed);
        }
        if response_len == 0 {
            self.empty_responses.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_ns.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        let mut recorders = self.stripe().lock();
        recorders.total.record(total);
        recorders.session.record(timings.session);
        recorders.predict.record(timings.predict);
        recorders.policy.record(timings.policy);
    }

    /// Takes a snapshot (percentiles computed on the samples so far, merged
    /// across all stripes).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut merged = StageRecorders::default();
        for stripe in self.stripes.iter() {
            let recorders = stripe.0.lock();
            merged.total.merge(&recorders.total);
            merged.session.merge(&recorders.session);
            merged.predict.merge(&recorders.predict);
            merged.policy.merge(&recorders.policy);
        }
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            depersonalised: self.depersonalised.load(Ordering::Relaxed),
            empty_responses: self.empty_responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            latency: merged.total.summary(),
            session_latency: merged.session.summary(),
            predict_latency: merged.predict.summary(),
            policy_latency: merged.policy.summary(),
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    fn timings(session_us: u64, predict_us: u64, policy_us: u64) -> StageTimings {
        StageTimings {
            session: Duration::from_micros(session_us),
            predict: Duration::from_micros(predict_us),
            policy: Duration::from_micros(policy_us),
        }
    }

    #[test]
    fn counters_accumulate() {
        let s = ServingStats::new();
        s.record(timings(20, 70, 10), false, 21);
        s.record(timings(50, 200, 50), true, 0);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.depersonalised, 1);
        assert_eq!(snap.empty_responses, 1);
        assert_eq!(snap.busy, Duration::from_micros(400));
        let lat = snap.latency.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max_us, 300);
    }

    #[test]
    fn per_stage_breakdowns_are_recorded() {
        let s = ServingStats::new();
        s.record(timings(10, 100, 1), false, 5);
        s.record(timings(30, 300, 3), false, 5);
        let snap = s.snapshot();
        assert_eq!(snap.session_latency.unwrap().max_us, 30);
        assert_eq!(snap.predict_latency.unwrap().max_us, 300);
        assert_eq!(snap.policy_latency.unwrap().max_us, 3);
        assert_eq!(snap.latency.unwrap().max_us, 333);
    }

    #[test]
    fn empty_stats_have_no_latency() {
        let snap = ServingStats::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert!(snap.latency.is_none());
        assert!(snap.session_latency.is_none());
        assert!(snap.predict_latency.is_none());
        assert!(snap.policy_latency.is_none());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = std::sync::Arc::new(ServingStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.record(timings(2, 7, 1), false, 5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4_000);
        assert_eq!(snap.latency.unwrap().count, 4_000);
        assert_eq!(snap.predict_latency.unwrap().count, 4_000);
    }
}
