//! Serving-side observability: per-engine request counters and latency.
//!
//! The paper's operational story (Sections 5.2.2–5.2.3, 7) rests on being
//! able to watch request rate, latency percentiles and core usage per pod.
//! This module provides the in-process equivalent: a stats collector every
//! [`crate::engine::Engine`] feeds, exposed over HTTP as `GET /stats` and
//! queryable in-process for the dashboards the benchmarks print. Latency is
//! recorded per pipeline stage (session / predict / policy), so the
//! breakdown of where a request's time went is first-class.
//!
//! Recording is lock-free: counters are relaxed atomics and latency goes
//! into `serenade-telemetry`'s sharded log-linear histograms, so memory is
//! bounded at O(buckets × shards) per stage regardless of how many requests
//! the pod has served (the previous design kept every raw sample in striped
//! `LatencyRecorder`s, growing without bound). Percentiles reported in
//! [`StatsSnapshot`] are therefore estimates within
//! [`serenade_telemetry::REL_ERROR_BOUND`] of the exact order statistics;
//! `count`, `mean_us`, `min_us` and `max_us` stay exact.
//!
//! The same counter/histogram handles can be registered into a
//! [`Registry`] (see [`ServingStats::register_into`]) so `GET /metrics`
//! exposes them in Prometheus text format without double bookkeeping.

use std::sync::Arc;
use std::time::Duration;

use serenade_metrics::LatencySummary;
use serenade_telemetry::{Counter, Histogram, HistogramConfig, HistogramSnapshot, Registry};

use crate::context::StageTimings;

/// Latency histogram sizing. Production tracks up to an hour at ≤2%
/// relative error; the loom build shrinks the value range so a model
/// schedule's step budget is spent on interleavings, not bucket loads.
fn latency_config() -> HistogramConfig {
    #[cfg(feature = "loom")]
    {
        HistogramConfig { max_value_us: 63, shards: 2 }
    }
    #[cfg(not(feature = "loom"))]
    {
        HistogramConfig::default()
    }
}

/// Thread-safe request statistics for one engine/pod.
#[derive(Debug)]
pub struct ServingStats {
    requests: Arc<Counter>,
    depersonalised: Arc<Counter>,
    degraded: Arc<Counter>,
    empty_responses: Arc<Counter>,
    errors: Arc<Counter>,
    busy_ns: Arc<Counter>,
    total: Arc<Histogram>,
    session: Arc<Histogram>,
    predict: Arc<Histogram>,
    policy: Arc<Histogram>,
}

impl Default for ServingStats {
    fn default() -> Self {
        Self {
            requests: Arc::new(Counter::new()),
            depersonalised: Arc::new(Counter::new()),
            degraded: Arc::new(Counter::new()),
            empty_responses: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
            busy_ns: Arc::new(Counter::new()),
            total: Arc::new(Histogram::new(latency_config())),
            session: Arc::new(Histogram::new(latency_config())),
            predict: Arc::new(Histogram::new(latency_config())),
            policy: Arc::new(Histogram::new(latency_config())),
        }
    }
}

/// A point-in-time snapshot of [`ServingStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests handled since startup.
    pub requests: u64,
    /// Requests served in depersonalised (no-consent) mode.
    pub depersonalised: u64,
    /// Requests degraded to the depersonalised fallback because their
    /// deadline budget expired mid-pipeline.
    pub degraded: u64,
    /// Requests that produced an empty recommendation list.
    pub empty_responses: u64,
    /// Requests that failed with a serving error (HTTP 5xx).
    pub errors: u64,
    /// Total busy time spent inside request handling.
    pub busy: Duration,
    /// End-to-end latency percentiles, if any requests were recorded.
    pub latency: Option<LatencySummary>,
    /// Session-stage latency (evolving-session update + view).
    pub session_latency: Option<LatencySummary>,
    /// Prediction-stage latency (VMIS-kNN).
    pub predict_latency: Option<LatencySummary>,
    /// Policy-stage latency (business rules + truncation).
    pub policy_latency: Option<LatencySummary>,
}

/// Converts a histogram snapshot into the `LatencySummary` shape the
/// `/stats` JSON and the benchmark dashboards already consume.
fn summary(snap: &HistogramSnapshot) -> Option<LatencySummary> {
    if snap.is_empty() {
        return None;
    }
    Some(LatencySummary {
        count: snap.count as usize,
        mean_us: snap.mean_us(),
        min_us: snap.min_us,
        p50_us: snap.quantile_us(0.50),
        p75_us: snap.quantile_us(0.75),
        p90_us: snap.quantile_us(0.90),
        p99_us: snap.quantile_us(0.99),
        p995_us: snap.quantile_us(0.995),
        max_us: snap.max_us,
    })
}

impl ServingStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one failed request (the engine returned a serving error).
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Records one request that fell back to the degraded (depersonalised)
    /// path because its deadline budget expired mid-pipeline.
    pub fn record_degraded(&self) {
        self.degraded.inc();
    }

    /// Records one handled request with its per-stage timing breakdown.
    pub fn record(&self, timings: StageTimings, depersonalised: bool, response_len: usize) {
        let total = timings.total();
        self.requests.inc();
        if depersonalised {
            self.depersonalised.inc();
        }
        if response_len == 0 {
            self.empty_responses.inc();
        }
        self.busy_ns.add(total.as_nanos() as u64);
        self.total.record(total);
        self.session.record(timings.session);
        self.predict.record(timings.predict);
        self.policy.record(timings.policy);
    }

    /// Takes a snapshot (quantiles estimated from the bounded histograms,
    /// merged across recording shards; counts and extremes exact).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.get(),
            depersonalised: self.depersonalised.get(),
            degraded: self.degraded.get(),
            empty_responses: self.empty_responses.get(),
            errors: self.errors.get(),
            busy: Duration::from_nanos(self.busy_ns.get()),
            latency: summary(&self.total.snapshot()),
            session_latency: summary(&self.session.snapshot()),
            predict_latency: summary(&self.predict.snapshot()),
            policy_latency: summary(&self.policy.snapshot()),
        }
    }

    /// Registers this pod's counters and stage histograms into `registry`
    /// under the serenade metric names, labelled `pod=<pod>`. The registry
    /// shares the live handles — no copying, no separate bookkeeping.
    pub fn register_into(&self, registry: &Registry, pod: &str) {
        let pod_label = [("pod", pod)];
        registry.counter_shared(
            "serenade_requests_total",
            "Requests handled since startup.",
            &pod_label,
            Arc::clone(&self.requests),
        );
        registry.counter_shared(
            "serenade_depersonalised_total",
            "Requests served in depersonalised (no-consent) mode.",
            &pod_label,
            Arc::clone(&self.depersonalised),
        );
        registry.counter_shared(
            "serenade_deadline_degraded_total",
            "Requests degraded to the depersonalised fallback on deadline expiry.",
            &pod_label,
            Arc::clone(&self.degraded),
        );
        registry.counter_shared(
            "serenade_empty_responses_total",
            "Requests that produced an empty recommendation list.",
            &pod_label,
            Arc::clone(&self.empty_responses),
        );
        registry.counter_shared(
            "serenade_errors_total",
            "Requests that failed with a serving error.",
            &pod_label,
            Arc::clone(&self.errors),
        );
        registry.counter_shared(
            "serenade_handler_busy_nanoseconds_total",
            "Cumulative busy time spent inside request handling.",
            &pod_label,
            Arc::clone(&self.busy_ns),
        );
        for (stage, histogram) in [
            ("total", &self.total),
            ("session", &self.session),
            ("predict", &self.predict),
            ("policy", &self.policy),
        ] {
            registry.histogram_shared(
                "serenade_request_duration_seconds",
                "Request latency by pipeline stage.",
                &[("pod", pod), ("stage", stage)],
                Arc::clone(histogram),
            );
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    fn timings(session_us: u64, predict_us: u64, policy_us: u64) -> StageTimings {
        StageTimings {
            session: Duration::from_micros(session_us),
            predict: Duration::from_micros(predict_us),
            policy: Duration::from_micros(policy_us),
        }
    }

    #[test]
    fn counters_accumulate() {
        let s = ServingStats::new();
        s.record(timings(20, 70, 10), false, 21);
        s.record(timings(50, 200, 50), true, 0);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.depersonalised, 1);
        assert_eq!(snap.empty_responses, 1);
        assert_eq!(snap.busy, Duration::from_micros(400));
        let lat = snap.latency.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max_us, 300);
    }

    #[test]
    fn per_stage_breakdowns_are_recorded() {
        let s = ServingStats::new();
        s.record(timings(10, 100, 1), false, 5);
        s.record(timings(30, 300, 3), false, 5);
        let snap = s.snapshot();
        assert_eq!(snap.session_latency.unwrap().max_us, 30);
        assert_eq!(snap.predict_latency.unwrap().max_us, 300);
        assert_eq!(snap.policy_latency.unwrap().max_us, 3);
        assert_eq!(snap.latency.unwrap().max_us, 333);
    }

    #[test]
    fn degraded_requests_are_counted_and_exported() {
        let registry = Registry::new();
        let s = ServingStats::new();
        s.register_into(&registry, "0");
        s.record_degraded();
        s.record_degraded();
        assert_eq!(s.snapshot().degraded, 2);
        assert!(
            registry.render().contains("serenade_deadline_degraded_total{pod=\"0\"} 2"),
            "{}",
            registry.render()
        );
    }

    #[test]
    fn empty_stats_have_no_latency() {
        let snap = ServingStats::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert!(snap.latency.is_none());
        assert!(snap.session_latency.is_none());
        assert!(snap.predict_latency.is_none());
        assert!(snap.policy_latency.is_none());
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let s = ServingStats::new();
        for us in 1..=1_000u64 {
            s.record(timings(0, us, 0), false, 5);
        }
        let lat = s.snapshot().predict_latency.unwrap();
        let tolerance = |exact: u64| (exact as f64 * serenade_telemetry::REL_ERROR_BOUND) as u64 + 1;
        assert!(lat.p50_us.abs_diff(500) <= tolerance(500), "p50 {}", lat.p50_us);
        assert!(lat.p90_us.abs_diff(900) <= tolerance(900), "p90 {}", lat.p90_us);
        assert!(lat.p995_us.abs_diff(995) <= tolerance(995), "p995 {}", lat.p995_us);
        assert_eq!(lat.min_us, 1);
        assert_eq!(lat.max_us, 1_000);
    }

    #[test]
    fn register_into_exposes_the_live_handles() {
        let registry = Registry::new();
        let s = ServingStats::new();
        s.register_into(&registry, "0");
        s.record(timings(10, 100, 1), true, 0);
        s.record_error();
        let text = registry.render();
        assert!(text.contains("serenade_requests_total{pod=\"0\"} 1"), "{text}");
        assert!(text.contains("serenade_depersonalised_total{pod=\"0\"} 1"), "{text}");
        assert!(text.contains("serenade_empty_responses_total{pod=\"0\"} 1"), "{text}");
        assert!(text.contains("serenade_errors_total{pod=\"0\"} 1"), "{text}");
        assert!(
            text.contains("serenade_request_duration_seconds_count{pod=\"0\",stage=\"total\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serenade_request_duration_seconds_count{pod=\"0\",stage=\"predict\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = std::sync::Arc::new(ServingStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.record(timings(2, 7, 1), false, 5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4_000);
        assert_eq!(snap.latency.unwrap().count, 4_000);
        assert_eq!(snap.predict_latency.unwrap().count, 4_000);
    }
}
