//! Serving-side observability: per-engine request counters and latency.
//!
//! The paper's operational story (Sections 5.2.2–5.2.3, 7) rests on being
//! able to watch request rate, latency percentiles and core usage per pod.
//! This module provides the in-process equivalent: a lock-striped stats
//! collector every [`crate::engine::Engine`] feeds, exposed over HTTP as
//! `GET /stats` and queryable in-process for the dashboards the benchmarks
//! print.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use serenade_metrics::{LatencyRecorder, LatencySummary};

/// Thread-safe request statistics for one engine/pod.
#[derive(Debug, Default)]
pub struct ServingStats {
    requests: AtomicU64,
    depersonalised: AtomicU64,
    empty_responses: AtomicU64,
    busy_ns: AtomicU64,
    latency: Mutex<LatencyRecorder>,
}

/// A point-in-time snapshot of [`ServingStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests handled since startup.
    pub requests: u64,
    /// Requests served in depersonalised (no-consent) mode.
    pub depersonalised: u64,
    /// Requests that produced an empty recommendation list.
    pub empty_responses: u64,
    /// Total busy time spent inside request handling.
    pub busy: Duration,
    /// Latency percentiles, if any requests were recorded.
    pub latency: Option<LatencySummary>,
}

impl ServingStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request.
    pub fn record(&self, elapsed: Duration, depersonalised: bool, response_len: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if depersonalised {
            self.depersonalised.fetch_add(1, Ordering::Relaxed);
        }
        if response_len == 0 {
            self.empty_responses.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency.lock().record(elapsed);
    }

    /// Takes a snapshot (percentiles computed on the samples so far).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            depersonalised: self.depersonalised.load(Ordering::Relaxed),
            empty_responses: self.empty_responses.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            latency: self.latency.lock().summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServingStats::new();
        s.record(Duration::from_micros(100), false, 21);
        s.record(Duration::from_micros(300), true, 0);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.depersonalised, 1);
        assert_eq!(snap.empty_responses, 1);
        assert_eq!(snap.busy, Duration::from_micros(400));
        let lat = snap.latency.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max_us, 300);
    }

    #[test]
    fn empty_stats_have_no_latency() {
        let snap = ServingStats::new().snapshot();
        assert_eq!(snap.requests, 0);
        assert!(snap.latency.is_none());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = std::sync::Arc::new(ServingStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.record(Duration::from_micros(10), false, 5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4_000);
        assert_eq!(snap.latency.unwrap().count, 4_000);
    }
}
