//! Per-worker request state threaded through `http → cluster → engine`.
//!
//! Each HTTP worker (and each load-generator or simulator thread) owns one
//! [`RequestContext`]: the VMIS-kNN scratch buffers, the session-view
//! buffer, and the per-stage timings of the last handled request. Because
//! the context is exclusively borrowed for the duration of a request, the
//! hot path shares no mutable state between workers — the seed's global
//! scratch-pool mutex is gone.

use std::time::{Duration, Instant};

use serenade_core::{BatchScratch, ItemId, Scratch};

/// Wall-clock time spent in each stage of the serving pipeline for one
/// request (see `crate::engine::Engine::handle_with` for the stages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Session layer: evolving-session update and view extraction.
    pub session: Duration,
    /// Prediction layer: VMIS-kNN over the session view.
    pub predict: Duration,
    /// Policy layer: business rules, truncation, bookkeeping.
    pub policy: Duration,
}

impl StageTimings {
    /// Total time across the three stages.
    pub fn total(&self) -> Duration {
        self.session + self.predict + self.policy
    }
}

/// Reusable per-worker state for request handling. Create one per worker
/// thread and pass it to every `handle_with` call; steady-state requests
/// then allocate nothing.
#[derive(Debug, Default)]
pub struct RequestContext {
    /// VMIS-kNN scratch buffers (grow to a high-water mark, then stabilise).
    pub(crate) scratch: Scratch,
    /// The session view handed from the session stage to the prediction
    /// stage.
    pub(crate) view: Vec<ItemId>,
    /// Per-stage timings of the most recent request.
    timings: StageTimings,
    /// Request id assigned at HTTP ingress for the in-flight request
    /// (0 = unassigned; consumed by the trace recorder).
    request_id: u64,
    /// Stored session length after the session stage of the most recent
    /// request.
    session_len: usize,
    /// Absolute deadline for the in-flight request, set at HTTP ingress
    /// from the first byte of the request frame. `None` = no budget.
    deadline: Option<Instant>,
    /// Whether the in-flight request was answered in degraded
    /// (depersonalised-fallback) mode because its deadline expired.
    degraded: bool,
}

impl RequestContext {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-stage timings of the most recently handled request.
    pub fn last_timings(&self) -> StageTimings {
        self.timings
    }

    pub(crate) fn set_timings(&mut self, timings: StageTimings) {
        self.timings = timings;
    }

    /// Tags the in-flight request with an id (assigned at HTTP ingress so
    /// one id spans the whole `http → cluster → engine` path).
    pub fn set_request_id(&mut self, id: u64) {
        self.request_id = id;
    }

    /// Takes the in-flight request id, resetting it to 0 (unassigned) so a
    /// stale id never leaks into the next request on this worker.
    pub fn take_request_id(&mut self) -> u64 {
        std::mem::take(&mut self.request_id)
    }

    /// Stored session length after the most recent request's session stage.
    pub fn session_len(&self) -> usize {
        self.session_len
    }

    pub(crate) fn set_session_len(&mut self, len: usize) {
        self.session_len = len;
    }

    /// Sets (or clears) the deadline budget for the in-flight request.
    /// Assigned at HTTP ingress; stages downstream observe it through
    /// [`Self::remaining_budget`] and degrade rather than blow the SLA.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.degraded = false;
    }

    /// The absolute deadline of the in-flight request, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Budget left before the deadline (`None` = no deadline configured;
    /// `Some(ZERO)` = already expired).
    pub fn remaining_budget(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline had already passed at `now`. Takes the probe
    /// instant as a parameter so stages reuse the `Instant` they already
    /// captured for timings instead of another clock read.
    pub fn deadline_expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Whether the in-flight request was served in degraded mode.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    pub(crate) fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }
}

/// Reusable per-worker state for handling a coalesced batch of requests:
/// one [`RequestContext`] per batch member (so every member keeps its own
/// view, timings, request id and deadline, exactly as if handled alone)
/// plus the shared batch-kernel scratch. Member contexts grow to the
/// high-water batch size and are then reused; steady-state batches allocate
/// only their response lists.
#[derive(Debug, Default)]
pub struct BatchContext {
    members: Vec<RequestContext>,
    pub(crate) batch_scratch: BatchScratch,
}

impl BatchContext {
    /// Creates a fresh batch context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the member-context pool to at least `n` entries.
    pub(crate) fn ensure(&mut self, n: usize) {
        while self.members.len() < n {
            self.members.push(RequestContext::new());
        }
    }

    /// The context of batch member `i` (grows the pool as needed — the
    /// HTTP worker tags ids/deadlines before handing the batch over).
    pub fn member_mut(&mut self, i: usize) -> &mut RequestContext {
        self.ensure(i + 1);
        &mut self.members[i]
    }

    /// The context of batch member `i`, if it exists.
    pub fn member(&self, i: usize) -> Option<&RequestContext> {
        self.members.get(i)
    }

    /// Splits into per-member contexts and the shared kernel scratch, so
    /// the engine can borrow member views and the scratch simultaneously.
    pub(crate) fn split(&mut self, n: usize) -> (&mut [RequestContext], &mut BatchScratch) {
        self.ensure(n);
        (&mut self.members[..n], &mut self.batch_scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_context_members_are_independent() {
        let mut bctx = BatchContext::new();
        bctx.member_mut(1).set_request_id(11);
        bctx.member_mut(0).set_request_id(7);
        assert_eq!(bctx.member_mut(0).take_request_id(), 7);
        assert_eq!(bctx.member_mut(1).take_request_id(), 11);
        let (members, _scratch) = bctx.split(4);
        assert_eq!(members.len(), 4, "split grows the pool to the batch size");
    }

    #[test]
    fn timings_total_sums_stages() {
        let t = StageTimings {
            session: Duration::from_micros(10),
            predict: Duration::from_micros(200),
            policy: Duration::from_micros(5),
        };
        assert_eq!(t.total(), Duration::from_micros(215));
    }

    #[test]
    fn fresh_context_reports_zero_timings() {
        let ctx = RequestContext::new();
        assert_eq!(ctx.last_timings(), StageTimings::default());
    }

    #[test]
    fn deadline_budget_and_expiry() {
        let mut ctx = RequestContext::new();
        assert!(ctx.remaining_budget().is_none());
        let now = Instant::now();
        ctx.set_deadline(Some(now + Duration::from_secs(3600)));
        assert!(ctx.remaining_budget().is_some_and(|b| b > Duration::from_secs(3000)));
        assert!(!ctx.deadline_expired_at(now));
        assert!(ctx.deadline_expired_at(now + Duration::from_secs(3601)));
        ctx.set_degraded(true);
        assert!(ctx.degraded());
        ctx.set_deadline(None);
        assert!(!ctx.degraded(), "set_deadline resets degraded for the next request");
    }
}
