//! Typed request-path errors.
//!
//! The serving pipeline never panics on a request: invariant violations
//! surface as a [`ServingError`] that the HTTP layer turns into a `500`
//! response on a connection that stays usable. (A panic would unwind the
//! worker's keep-alive loop and kill every in-flight request multiplexed
//! on that connection.) The `xtask` lint enforces the no-panic rule
//! statically; this type is what the fallible paths return instead.

use std::fmt;

/// A request that could not be served. Always maps to an HTTP 5xx; the
/// request itself was well-formed (malformed requests are rejected with
/// 4xx before reaching the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// An internal pipeline invariant failed (a bug, not an input error).
    Internal(&'static str),
    /// A panic crossed the worker's unwind barrier while handling the
    /// request; the payload is the panic message when extractable.
    Panicked(String),
    /// A remote pod could not serve the request (connection refused, reset
    /// mid-response, or a malformed upstream reply). The router tier treats
    /// this as a node-liveness signal and fails over instead of surfacing
    /// it to the client.
    Upstream(String),
}

impl ServingError {
    /// HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServingError::Upstream(_) => 502,
            _ => 500,
        }
    }
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Internal(what) => write!(f, "internal serving error: {what}"),
            ServingError::Panicked(msg) => write!(f, "request handler panicked: {msg}"),
            ServingError::Upstream(msg) => write!(f, "upstream pod failed: {msg}"),
        }
    }
}

impl std::error::Error for ServingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_are_server_errors() {
        assert_eq!(ServingError::Internal("x").status(), 500);
        assert_eq!(ServingError::Panicked(String::from("boom")).status(), 500);
        assert_eq!(ServingError::Upstream(String::from("refused")).status(), 502);
    }

    #[test]
    fn display_is_informative() {
        let e = ServingError::Internal("session view empty after update");
        assert!(e.to_string().contains("session view empty"));
        let p = ServingError::Panicked(String::from("index out of bounds"));
        assert!(p.to_string().contains("index out of bounds"));
    }
}
