//! Discrete-event A/B-test simulator (Figure 3c, Section 5.2.3).
//!
//! The paper ran a three-week live experiment: user sessions were randomly
//! assigned to `serenade-hist`, `serenade-recent` or the `legacy`
//! item-to-item recommender, and a conversion-related engagement metric was
//! measured for the "other customers also viewed" slot on the product detail
//! page, alongside a site-wide check that caught `serenade-recent`
//! cannibalising the neighbouring "often bought together" slot.
//!
//! The simulator replays held-out test sessions as simulated users over a
//! configurable number of days with a diurnal traffic curve. Engagement is
//! modelled from ground truth: a slot scores when it shows the item the
//! user actually clicks next. The *other* slot is driven by item-to-item
//! similarities on the current item; when both slots show the winning item,
//! the session-based slot takes the credit (first-position-takes-credit),
//! which reproduces the cannibalisation mechanism — the more a variant's
//! list resembles the item-conditioned list, the more it starves the other
//! slot.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use serenade_core::{ItemId, Recommender, Scratch};
use serenade_dataset::Session;
use serenade_metrics::{LatencyRecorder, LatencySummary};

/// How a variant views the evolving session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionView {
    /// Predict from the last `n` items (serenade-hist: 2, serenade-recent: 1).
    LastN(usize),
    /// Predict from the full session.
    Full,
}

impl SessionView {
    fn apply<'a>(&self, prefix: &'a [ItemId]) -> &'a [ItemId] {
        match *self {
            SessionView::LastN(n) => &prefix[prefix.len().saturating_sub(n)..],
            SessionView::Full => prefix,
        }
    }
}

/// One experiment arm.
pub struct AbVariant {
    /// Arm name (e.g. `serenade-hist`).
    pub name: String,
    /// The recommender serving this arm's slot.
    pub recommender: Arc<dyn Recommender + Send + Sync>,
    /// Session view fed to the recommender.
    pub view: SessionView,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct AbConfig {
    /// Days the experiment runs (the paper: 21).
    pub days: u32,
    /// Sessions simulated at the diurnal peak hour, per day.
    pub peak_sessions_per_hour: usize,
    /// Recommendation-list length (the UI slot: 21).
    pub how_many: usize,
    /// RNG seed for assignment and session sampling.
    pub seed: u64,
}

impl Default for AbConfig {
    fn default() -> Self {
        Self { days: 21, peak_sessions_per_hour: 60, how_many: 21, seed: 42 }
    }
}

/// Hourly traffic/latency point (one per simulated hour, all arms pooled).
#[derive(Debug, Clone)]
pub struct HourlyStats {
    /// Day index (0-based).
    pub day: u32,
    /// Hour of day (0–23).
    pub hour: u32,
    /// Requests simulated in this hour.
    pub requests: usize,
    /// Latency percentiles of the serving computation in this hour.
    pub latency: Option<LatencySummary>,
}

/// Aggregated outcome of one arm.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Arm name.
    pub name: String,
    /// Sessions assigned.
    pub sessions: usize,
    /// Prediction events (clicks with a next item).
    pub events: usize,
    /// Events where this arm's slot showed the true next item.
    pub slot_hits: usize,
    /// Events where the *other* slot showed it (and this slot did not).
    pub other_slot_hits: usize,
}

impl VariantReport {
    /// Engagement rate of the arm's slot.
    pub fn slot_rate(&self) -> f64 {
        self.slot_hits as f64 / self.events.max(1) as f64
    }

    /// Engagement rate of the neighbouring slot under this arm.
    pub fn other_slot_rate(&self) -> f64 {
        self.other_slot_hits as f64 / self.events.max(1) as f64
    }

    /// Site-wide engagement (either slot shows the next item).
    pub fn site_rate(&self) -> f64 {
        (self.slot_hits + self.other_slot_hits) as f64 / self.events.max(1) as f64
    }
}

/// Full experiment outcome.
#[derive(Debug, Clone)]
pub struct AbReport {
    /// Per-arm aggregates, in the order the variants were passed.
    pub variants: Vec<VariantReport>,
    /// Hour-by-hour traffic and latency (Figure 3c's x-axis).
    pub hourly: Vec<HourlyStats>,
}

impl AbReport {
    /// Relative lift of `arm`'s slot engagement over `baseline`'s, in percent.
    pub fn slot_lift_pct(&self, arm: &str, baseline: &str) -> Option<f64> {
        let a = self.variants.iter().find(|v| v.name == arm)?.slot_rate();
        let b = self.variants.iter().find(|v| v.name == baseline)?.slot_rate();
        (b > 0.0).then(|| (a / b - 1.0) * 100.0)
    }
}

/// Diurnal shape: late-night trough, evening peak — the 200→600 rps swing of
/// Figure 3c. Returns a weight in `[0.3, 1.0]`.
pub fn diurnal_weight(hour: u32) -> f64 {
    debug_assert!(hour < 24);
    // Peak at 20:00, trough at 04:00.
    let phase = (hour as f64 - 20.0) / 24.0 * std::f64::consts::TAU;
    0.65 + 0.35 * phase.cos()
}

/// Runs the simulated A/B test.
///
/// `other_slot` drives the neighbouring "often bought together" slot and is
/// conditioned on the current item only, like the production system it
/// models. `test_sessions` is the pool of ground-truth user sessions.
pub fn run_ab_test(
    variants: &[AbVariant],
    other_slot: &(dyn Recommender + Send + Sync),
    test_sessions: &[Session],
    config: AbConfig,
) -> AbReport {
    assert!(!variants.is_empty() && !test_sessions.is_empty());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut reports: Vec<VariantReport> = variants
        .iter()
        .map(|v| VariantReport {
            name: v.name.clone(),
            sessions: 0,
            events: 0,
            slot_hits: 0,
            other_slot_hits: 0,
        })
        .collect();
    let mut hourly = Vec::with_capacity(config.days as usize * 24);
    // The simulation is single-threaded, so one scratch serves every
    // recommendation call; VMIS-kNN variants skip per-call allocation.
    let mut scratch = Scratch::new();

    for day in 0..config.days {
        for hour in 0..24u32 {
            let sessions_this_hour = ((config.peak_sessions_per_hour as f64
                * diurnal_weight(hour))
                .round() as usize)
                .max(1);
            let mut recorder = LatencyRecorder::new();
            let mut requests = 0usize;
            for _ in 0..sessions_this_hour {
                // Random user session, random arm.
                let session = &test_sessions[rng.gen_range(0..test_sessions.len())];
                let arm = rng.gen_range(0..variants.len());
                let variant = &variants[arm];
                reports[arm].sessions += 1;

                for t in 1..session.items.len() {
                    let prefix = &session.items[..t];
                    let next = session.items[t];
                    let view = variant.view.apply(prefix);

                    let t0 = Instant::now();
                    let slot =
                        variant.recommender.recommend_with(view, config.how_many, &mut scratch);
                    recorder.record(t0.elapsed());
                    requests += 1;

                    let other = other_slot.recommend_with(
                        &prefix[prefix.len() - 1..],
                        config.how_many,
                        &mut scratch,
                    );

                    reports[arm].events += 1;
                    let slot_hit = slot.iter().any(|r| r.item == next);
                    if slot_hit {
                        reports[arm].slot_hits += 1;
                    } else if other.iter().any(|r| r.item == next) {
                        // First-position-takes-credit: the other slot only
                        // scores when the session-based slot missed.
                        reports[arm].other_slot_hits += 1;
                    }
                }
            }
            hourly.push(HourlyStats { day, hour, requests, latency: recorder.summary() });
        }
    }
    AbReport { variants: reports, hourly }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::ItemScore;

    /// Oracle that knows the ground truth (always hits).
    struct Oracle(Vec<Session>);
    impl Recommender for Oracle {
        fn recommend(&self, session: &[ItemId], _how_many: usize) -> Vec<ItemScore> {
            // Finds any session containing the suffix and returns what
            // followed it; sufficient for the deterministic test pool.
            for s in &self.0 {
                for t in 1..s.items.len() {
                    if s.items[..t].ends_with(session) {
                        return vec![ItemScore::new(s.items[t], 1.0)];
                    }
                }
            }
            Vec::new()
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    /// Always recommends a fixed junk list (never hits).
    struct Junk;
    impl Recommender for Junk {
        fn recommend(&self, _session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
            (0..how_many as u64).map(|i| ItemScore::new(90_000 + i, 1.0)).collect()
        }
        fn name(&self) -> &str {
            "junk"
        }
    }

    fn pool() -> Vec<Session> {
        (0..8u64)
            .map(|i| Session {
                id: i,
                items: vec![i % 4, (i + 1) % 4, (i + 2) % 4],
                start: 0,
                end: 2,
            })
            .collect()
    }

    fn tiny_config() -> AbConfig {
        AbConfig { days: 2, peak_sessions_per_hour: 3, how_many: 5, seed: 7 }
    }

    #[test]
    fn oracle_beats_junk() {
        let sessions = pool();
        let variants = vec![
            AbVariant {
                name: "oracle".into(),
                recommender: Arc::new(Oracle(sessions.clone())),
                view: SessionView::Full,
            },
            AbVariant {
                name: "junk".into(),
                recommender: Arc::new(Junk),
                view: SessionView::Full,
            },
        ];
        let report = run_ab_test(&variants, &Junk, &sessions, tiny_config());
        let oracle = &report.variants[0];
        let junk = &report.variants[1];
        assert!(oracle.events > 0 && junk.events > 0);
        assert!((oracle.slot_rate() - 1.0).abs() < 1e-12);
        assert_eq!(junk.slot_hits, 0);
        let lift = report.slot_lift_pct("oracle", "junk");
        assert!(lift.is_none(), "baseline rate 0 has no lift");
    }

    #[test]
    fn credit_goes_to_slot_first() {
        let sessions = pool();
        let oracle = Arc::new(Oracle(sessions.clone()));
        let variants = vec![AbVariant {
            name: "both-hit".into(),
            recommender: Arc::clone(&oracle) as Arc<dyn Recommender + Send + Sync>,
            view: SessionView::Full,
        }];
        // The other slot is also the oracle — but the slot takes the credit.
        let report = run_ab_test(&variants, oracle.as_ref(), &sessions, tiny_config());
        assert_eq!(report.variants[0].other_slot_hits, 0);
        assert!(report.variants[0].slot_hits > 0);
    }

    #[test]
    fn other_slot_scores_when_slot_misses() {
        let sessions = pool();
        let oracle = Oracle(sessions.clone());
        let variants = vec![AbVariant {
            name: "junk-slot".into(),
            recommender: Arc::new(Junk),
            view: SessionView::Full,
        }];
        let report = run_ab_test(&variants, &oracle, &sessions, tiny_config());
        assert_eq!(report.variants[0].slot_hits, 0);
        assert!(report.variants[0].other_slot_hits > 0);
        assert!(report.variants[0].site_rate() > 0.0);
    }

    #[test]
    fn hourly_series_covers_every_hour() {
        let sessions = pool();
        let variants = vec![AbVariant {
            name: "junk".into(),
            recommender: Arc::new(Junk),
            view: SessionView::LastN(1),
        }];
        let cfg = tiny_config();
        let report = run_ab_test(&variants, &Junk, &sessions, cfg);
        assert_eq!(report.hourly.len(), cfg.days as usize * 24);
        assert!(report.hourly.iter().all(|h| h.requests > 0));
        // Diurnal: the 20:00 hour must carry more traffic than 04:00.
        let at = |hour: u32| -> usize {
            report.hourly.iter().filter(|h| h.hour == hour).map(|h| h.requests).sum()
        };
        assert!(at(20) > at(4), "peak {} vs trough {}", at(20), at(4));
    }

    #[test]
    fn diurnal_weight_shape() {
        assert!(diurnal_weight(20) > diurnal_weight(4));
        assert!((diurnal_weight(20) - 1.0).abs() < 1e-9);
        for h in 0..24 {
            let w = diurnal_weight(h);
            assert!((0.29..=1.01).contains(&w), "hour {h}: {w}");
        }
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let sessions = pool();
        let make = || {
            vec![AbVariant {
                name: "junk".into(),
                recommender: Arc::new(Junk) as Arc<dyn Recommender + Send + Sync>,
                view: SessionView::Full,
            }]
        };
        let a = run_ab_test(&make(), &Junk, &sessions, tiny_config());
        let b = run_ab_test(&make(), &Junk, &sessions, tiny_config());
        assert_eq!(a.variants[0].events, b.variants[0].events);
        assert_eq!(a.variants[0].slot_hits, b.variants[0].slot_hits);
    }
}
