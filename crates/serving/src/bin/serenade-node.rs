//! Serving-node daemon: one pod of a multi-process cluster.
//!
//! Binds the data plane (HTTP) and control plane (framed binary), prints
//! one machine-readable line with the bound addresses, then runs until
//! stdin reaches EOF — the parent (an operator script or the cluster
//! integration test) owns the lifecycle by holding the pipe open.
//!
//! ```text
//! serenade-node [--id N] [--addr HOST:PORT] [--ctrl HOST:PORT]
//!               [--seed-sessions N] [--index PATH]
//! ```
//!
//! The node starts on a small deterministic synthetic index (or the
//! `binfmt` artifact at `--index`); production indices arrive from the
//! router over the control plane.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use serenade_core::{Click, SessionIndex};
use serenade_index::binfmt;
use serenade_serving::node::{NodeConfig, ServingNode};

fn usage() -> ! {
    eprintln!(
        "usage: serenade-node [--id N] [--addr HOST:PORT] [--ctrl HOST:PORT] \
         [--seed-sessions N] [--index PATH]"
    );
    std::process::exit(2);
}

/// A deterministic synthetic index so a fresh node can serve immediately.
fn synthetic_index(sessions: u64) -> SessionIndex {
    let mut clicks = Vec::new();
    for s in 0..sessions.max(2) {
        let ts = 100 + s * 10;
        clicks.push(Click::new(s + 1, s % 16, ts));
        clicks.push(Click::new(s + 1, (s + 3) % 16, ts + 1));
        clicks.push(Click::new(s + 1, (s + 7) % 16, ts + 2));
    }
    SessionIndex::build(&clicks, 500).expect("synthetic index builds")
}

fn main() -> ExitCode {
    let mut config = NodeConfig::default();
    let mut seed_sessions = 64u64;
    let mut index_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => config.node_id = value().parse().unwrap_or_else(|_| usage()),
            "--addr" => config.server.addr = value(),
            "--ctrl" => config.ctrl_addr = value(),
            "--seed-sessions" => {
                seed_sessions = value().parse().unwrap_or_else(|_| usage())
            }
            "--index" => index_path = Some(value()),
            _ => usage(),
        }
    }

    let index = match &index_path {
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    eprintln!("serenade-node: unreadable index {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match binfmt::read_index(bytes.as_slice()) {
                Ok(index) => index,
                Err(e) => {
                    eprintln!("serenade-node: rejected index {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => synthetic_index(seed_sessions),
    };

    let node = match ServingNode::start(Arc::new(index), config) {
        Ok(node) => node,
        Err(e) => {
            eprintln!("serenade-node: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    // One parseable line; the parent reads it to learn the ephemeral ports.
    println!(
        "node id={} data={} ctrl={}",
        node.id(),
        node.data_addr(),
        node.ctrl_addr()
    );

    // Serve until the parent closes our stdin (or exits, which closes it).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    node.shutdown();
    ExitCode::SUCCESS
}
