//! Router daemon: the HTTP front end of a multi-node serving cluster.
//!
//! Routes by rendezvous hashing over the member list, fails requests over
//! to surviving nodes (depersonalised, never a 5xx), distributes index
//! artifacts, and rebalances session ownership on membership changes.
//! Members can be given up front with repeated `--node` flags or added
//! later via `POST /cluster/join`.
//!
//! ```text
//! serenade-routerd [--addr HOST:PORT]
//!                  [--node ID,DATA_ADDR,CTRL_ADDR]...
//!                  [--probe-interval-ms N] [--handoff-cap N]
//! ```
//!
//! Prints one machine-readable line with the bound address, then runs
//! until stdin reaches EOF.

use std::io::Read;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use serenade_serving::routerd::{RouterConfig, RouterDaemon};

fn usage() -> ! {
    eprintln!(
        "usage: serenade-routerd [--addr HOST:PORT] [--node ID,DATA,CTRL]... \
         [--probe-interval-ms N] [--handoff-cap N]"
    );
    std::process::exit(2);
}

fn parse_member(spec: &str) -> Option<(u64, SocketAddr, SocketAddr)> {
    let mut parts = spec.splitn(3, ',');
    let id = parts.next()?.parse().ok()?;
    let data = parts.next()?.parse().ok()?;
    let ctrl = parts.next()?.parse().ok()?;
    Some((id, data, ctrl))
}

fn main() -> ExitCode {
    let mut config = RouterConfig::default();
    let mut members = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.server.addr = value(),
            "--node" => {
                members.push(parse_member(&value()).unwrap_or_else(|| usage()))
            }
            "--probe-interval-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.probe_interval = Duration::from_millis(ms);
            }
            "--handoff-cap" => {
                config.handoff_cap = value().parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    let daemon = match RouterDaemon::start(&members, config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("serenade-routerd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("router data={}", daemon.addr());

    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    daemon.shutdown();
    ExitCode::SUCCESS
}
