//! Pod transports: how the cluster reaches a serving pod.
//!
//! [`ServingCluster`](crate::ServingCluster) used to be a loop over
//! `Arc<Engine>` — pods were always threads in the same process. The paper's
//! deployment (§4) is N serving *machines* behind a sticky router, so the
//! cluster is now written against [`PodTransport`]:
//!
//! * [`InProcessPod`] wraps an [`Engine`] directly — today's behaviour,
//!   zero added cost on the request path;
//! * [`RemotePod`] speaks the serving HTTP protocol to a node process over
//!   a bounded pool of keep-alive connections.
//!
//! The two are semantically interchangeable: a remote `POST /recommend`
//! runs the same three-stage pipeline on the node that an in-process call
//! runs here, and the socket conformance suite checks the responses are
//! byte-identical (`tests/cluster_failover.rs`).
//!
//! # Pool discipline
//!
//! [`RemotePod`]'s connection pool follows the checkout/checkin pattern:
//! the mutex guards only the idle-connection vector — a connection is
//! *popped* under the guard, the guard is dropped, and all socket I/O
//! happens on the checked-out connection outside any lock. The concurrency
//! analyzer's reactor-blocking rule depends on this: a guard held across
//! an upstream write would serialise every proxied request behind one
//! socket's flow control.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use serenade_core::ItemScore;

use crate::context::{BatchContext, RequestContext, StageTimings};
use crate::engine::{Engine, RecommendRequest};
use crate::error::ServingError;
use crate::http::HttpClient;
use crate::json::{self, JsonValue};

/// How a cluster reaches one serving pod. Implementations must be
/// semantically interchangeable: the response to a request sequence may
/// not depend on the transport carrying it.
pub trait PodTransport: Send + Sync {
    /// Handles one request on the pod, pipeline semantics per
    /// [`Engine::handle_with`].
    fn handle_with(
        &self,
        req: RecommendRequest,
        ctx: &mut RequestContext,
    ) -> Result<Vec<ItemScore>, ServingError>;

    /// Handles a coalesced same-pod batch, semantics per
    /// [`Engine::handle_batch`]: member-for-member identical to sequential
    /// handling in slice order.
    fn handle_batch(
        &self,
        reqs: &[RecommendRequest],
        bctx: &mut BatchContext,
    ) -> Vec<Result<Vec<ItemScore>, ServingError>>;

    /// Erases a session's evolving state on the pod (unlearning hook).
    fn forget_session(&self, session_id: u64) -> bool;

    /// Live sessions stored on the pod.
    fn live_sessions(&self) -> usize;

    /// Runs the TTL sweep on the pod; returns evictions.
    fn evict_expired_sessions(&self) -> usize;

    /// The in-process engine behind this transport, if there is one.
    /// `None` for remote pods — callers needing engine internals (stats
    /// endpoints, telemetry gauges) must degrade gracefully.
    fn engine(&self) -> Option<&Arc<Engine>> {
        None
    }
}

/// The in-process transport: a pod that is an [`Engine`] in this process.
pub struct InProcessPod {
    engine: Arc<Engine>,
}

impl InProcessPod {
    /// Wraps an engine.
    pub fn new(engine: Arc<Engine>) -> Self {
        Self { engine }
    }
}

impl PodTransport for InProcessPod {
    fn handle_with(
        &self,
        req: RecommendRequest,
        ctx: &mut RequestContext,
    ) -> Result<Vec<ItemScore>, ServingError> {
        self.engine.handle_with(req, ctx)
    }

    fn handle_batch(
        &self,
        reqs: &[RecommendRequest],
        bctx: &mut BatchContext,
    ) -> Vec<Result<Vec<ItemScore>, ServingError>> {
        self.engine.handle_batch(reqs, bctx)
    }

    fn forget_session(&self, session_id: u64) -> bool {
        self.engine.forget_session(session_id)
    }

    fn live_sessions(&self) -> usize {
        self.engine.live_sessions()
    }

    fn evict_expired_sessions(&self) -> usize {
        self.engine.evict_expired_sessions()
    }

    fn engine(&self) -> Option<&Arc<Engine>> {
        Some(&self.engine)
    }
}

/// Idle keep-alive connections retained per remote pod. Connections beyond
/// the bound are dropped on checkin instead of pooled — the pool can never
/// hold more sockets than `MAX_IDLE` while any number may be checked out
/// concurrently (each request that finds the pool empty dials its own).
const MAX_IDLE_CONNECTIONS: usize = 8;

/// The socket transport: a pod that is a node process reached over HTTP.
pub struct RemotePod {
    addr: SocketAddr,
    /// Idle keep-alive connections. LIFO so the hottest (most recently
    /// used, least likely to have been idle-reaped by the node) connection
    /// is reused first.
    idle: Mutex<Vec<HttpClient>>,
}

impl RemotePod {
    /// Creates a transport for the node at `addr`. No connection is opened
    /// until the first request — a cluster may be constructed before its
    /// nodes finish binding.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, idle: Mutex::new(Vec::new()) }
    }

    /// The node's data-plane address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Checks a connection out of the pool, dialing a fresh one when the
    /// pool is empty. The pool guard is dropped before any socket I/O.
    fn checkout(&self) -> std::io::Result<HttpClient> {
        let pooled = self.idle.lock().pop();
        match pooled {
            Some(client) => Ok(client),
            None => HttpClient::connect(self.addr),
        }
    }

    /// Returns a healthy connection to the pool; drops it when the pool is
    /// at its bound.
    fn checkin(&self, client: HttpClient) {
        let mut idle = self.idle.lock();
        if idle.len() < MAX_IDLE_CONNECTIONS {
            idle.push(client);
        }
    }

    /// Idle connections currently pooled (observability/tests).
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().len()
    }

    /// One proxied POST over a pooled connection. A connection that errors
    /// mid-exchange is dropped, never pooled again — its stream state is
    /// unknowable.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let mut client = self.checkout()?;
        match client.post(path, body) {
            Ok(response) => {
                self.checkin(client);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// One proxied GET over a pooled connection.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, String)> {
        let mut client = self.checkout()?;
        match client.get(path) {
            Ok(response) => {
                self.checkin(client);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// One proxied DELETE over a pooled connection.
    pub fn delete(&self, path: &str) -> std::io::Result<(u16, String)> {
        let mut client = self.checkout()?;
        match client.delete(path) {
            Ok(response) => {
                self.checkin(client);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    fn recommend(&self, req: RecommendRequest) -> Result<Vec<ItemScore>, ServingError> {
        let body = render_recommend_request(&req);
        let (status, response) = self
            .post("/recommend", &body)
            .map_err(|e| ServingError::Upstream(format!("{}: {e}", self.addr)))?;
        if status != 200 {
            return Err(ServingError::Upstream(format!(
                "{}: status {status}: {response}",
                self.addr
            )));
        }
        parse_recommendations(&response)
            .map_err(|e| ServingError::Upstream(format!("{}: {e}", self.addr)))
    }

    /// One `/recommend` exchange on a connection *held by the caller* in
    /// `conn`, checking out only when the slot is empty. A healthy exchange
    /// puts the connection back into the slot (not the pool), so a batch
    /// pays one pool checkout/checkin total instead of two lock operations
    /// per member. An I/O error drops the connection — its stream state is
    /// unknowable — and leaves the slot empty for the next member to re-dial;
    /// a non-200 or unparsable response keeps the (healthy) connection held.
    fn recommend_on(
        &self,
        conn: &mut Option<HttpClient>,
        req: RecommendRequest,
    ) -> Result<Vec<ItemScore>, ServingError> {
        let body = render_recommend_request(&req);
        let mut client = match conn.take() {
            Some(client) => client,
            None => self
                .checkout()
                .map_err(|e| ServingError::Upstream(format!("{}: {e}", self.addr)))?,
        };
        match client.post("/recommend", &body) {
            Ok((status, response)) => {
                *conn = Some(client);
                if status != 200 {
                    return Err(ServingError::Upstream(format!(
                        "{}: status {status}: {response}",
                        self.addr
                    )));
                }
                parse_recommendations(&response)
                    .map_err(|e| ServingError::Upstream(format!("{}: {e}", self.addr)))
            }
            Err(e) => Err(ServingError::Upstream(format!("{}: {e}", self.addr))),
        }
    }
}

impl PodTransport for RemotePod {
    fn handle_with(
        &self,
        req: RecommendRequest,
        ctx: &mut RequestContext,
    ) -> Result<Vec<ItemScore>, ServingError> {
        let started = Instant::now();
        let result = self.recommend(req);
        // The node kept the per-stage breakdown; over the wire only the
        // round-trip total is observable, accounted as predict time.
        ctx.set_timings(StageTimings {
            session: Duration::ZERO,
            predict: started.elapsed(),
            policy: Duration::ZERO,
        });
        ctx.set_session_len(1);
        result
    }

    fn handle_batch(
        &self,
        reqs: &[RecommendRequest],
        bctx: &mut BatchContext,
    ) -> Vec<Result<Vec<ItemScore>, ServingError>> {
        // Sequential proxying over one connection held across the whole
        // batch preserves the batch contract exactly — the node sees the
        // members back to back in slice order on one keep-alive stream —
        // and touches the pool mutex once per batch, not per member.
        bctx.ensure(reqs.len());
        let mut conn: Option<HttpClient> = None;
        let results = reqs
            .iter()
            .enumerate()
            .map(|(i, &req)| {
                let started = Instant::now();
                let result = self.recommend_on(&mut conn, req);
                let member = bctx.member_mut(i);
                member.set_timings(StageTimings {
                    session: Duration::ZERO,
                    predict: started.elapsed(),
                    policy: Duration::ZERO,
                });
                member.set_session_len(1);
                result
            })
            .collect();
        if let Some(client) = conn {
            self.checkin(client);
        }
        results
    }

    fn forget_session(&self, session_id: u64) -> bool {
        // Forgetting on a remote pod goes through the node's control plane
        // (see `crate::node`), which owns erase semantics; the data-plane
        // transport reports "nothing dropped" rather than guessing.
        let _ = session_id;
        false
    }

    fn live_sessions(&self) -> usize {
        0
    }

    fn evict_expired_sessions(&self) -> usize {
        0
    }
}

/// Renders one [`RecommendRequest`] as the `POST /recommend` body.
pub(crate) fn render_recommend_request(req: &RecommendRequest) -> String {
    JsonValue::object([
        ("session_id", JsonValue::Number(req.session_id as f64)),
        ("item_id", JsonValue::Number(req.item as f64)),
        ("consent", JsonValue::Bool(req.consent)),
        ("filter_adult", JsonValue::Bool(req.filter_adult)),
    ])
    .to_json()
}

/// Parses a `POST /recommend` success body back into scores — the inverse
/// of the server's response rendering. `f32 → f64 → json → f64 → f32` is
/// lossless, so proxied scores compare equal to locally computed ones.
pub(crate) fn parse_recommendations(body: &str) -> Result<Vec<ItemScore>, String> {
    let v = json::parse(body).map_err(|e| format!("invalid json: {e}"))?;
    let recs = v
        .get("recommendations")
        .and_then(JsonValue::as_array)
        .ok_or("missing recommendations array")?;
    recs.iter()
        .map(|r| {
            let item = r
                .get("item_id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| String::from("missing item_id"))?;
            let score = r
                .get("score")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| String::from("missing score"))?;
            Ok(ItemScore { item, score: score as f32 })
        })
        .collect()
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn recommend_request_roundtrips_through_the_wire_format() {
        let req = RecommendRequest {
            session_id: 71,
            item: 123,
            consent: false,
            filter_adult: true,
        };
        let body = render_recommend_request(&req);
        let parsed = crate::server::conn::parse_recommend_request(&body).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn recommendations_roundtrip_through_the_wire_format() {
        let recs = vec![
            ItemScore { item: 5, score: 0.125 },
            ItemScore { item: 9, score: 1.0 / 3.0 },
        ];
        let body = crate::server::conn::render_recommendations(&recs);
        assert_eq!(parse_recommendations(&body).unwrap(), recs);
        assert!(parse_recommendations("not json").is_err());
        assert!(parse_recommendations("{}").is_err());
    }

    #[test]
    fn pool_checkin_is_bounded() {
        // No live server needed: the pool logic is independent of whether
        // connections work. Dial nothing, exercise the bound directly.
        let pod = RemotePod::new("127.0.0.1:1".parse().unwrap());
        assert_eq!(pod.idle_connections(), 0);
        assert!(pod.post("/recommend", "{}").is_err(), "nothing listens on port 1");
        assert_eq!(pod.idle_connections(), 0, "failed connections are never pooled");
    }
}
