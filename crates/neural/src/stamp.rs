//! A compact STAMP-style attention model (Liu et al., KDD 2018) — the second
//! neural comparator of the paper's §5.1.1 study.
//!
//! STAMP ("Short-Term Attention/Memory Priority") replaces the recurrence of
//! GRU4Rec with attention over the session's item embeddings:
//!
//! ```text
//! m_s = mean(x_1 … x_n)                     (general interest)
//! a_i = w₀ · σ(W₁ x_i + W₂ x_n + W₃ m_s + b)   (attention, unnormalised)
//! m_a = Σ a_i x_i                           (attended memory)
//! h_s = tanh(W_s m_a + b_s),  h_t = tanh(W_t x_n + b_t)
//! score(v) = (h_s ⊙ h_t) · x_v              (tied item embeddings)
//! ```
//!
//! Trained with sampled-softmax cross-entropy and Adagrad, like the GRU
//! model. Each prefix is an independent prediction problem (no recurrent
//! state), so backpropagation is per-step; a full finite-difference gradient
//! check pins the analytic gradients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use serenade_core::{Click, FxHashMap, ItemId, ItemScore, Recommender};
use serenade_dataset::sessionize;

use crate::linalg::{dot, sigmoid, Matrix};

/// Hyperparameters of [`Stamp`].
#[derive(Debug, Clone, Copy)]
pub struct StampConfig {
    /// Item-embedding dimension (also the hidden dimension).
    pub embed_dim: usize,
    /// Attention dimension.
    pub attention_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adagrad learning rate.
    pub learning_rate: f64,
    /// Negative samples per prediction step.
    pub negatives: usize,
    /// Cap on the session prefix length.
    pub max_session_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StampConfig {
    fn default() -> Self {
        Self {
            embed_dim: 32,
            attention_dim: 32,
            epochs: 5,
            learning_rate: 0.08,
            negatives: 64,
            max_session_len: 19,
            seed: 42,
        }
    }
}

/// Parameters of the attention network and the two projection MLPs.
#[derive(Debug, Clone)]
struct Params {
    w1: Matrix, // da × d
    w2: Matrix, // da × d
    w3: Matrix, // da × d
    ba: Vec<f64>,
    w0: Vec<f64>, // da
    ws: Matrix,   // d × d
    bs: Vec<f64>,
    wt: Matrix, // d × d
    bt: Vec<f64>,
}

impl Params {
    fn new(d: usize, da: usize, rng: &mut StdRng) -> Self {
        let s1 = (6.0 / (d + da) as f64).sqrt();
        let s2 = (6.0 / (2 * d) as f64).sqrt();
        Self {
            w1: Matrix::random(da, d, s1, rng),
            w2: Matrix::random(da, d, s1, rng),
            w3: Matrix::random(da, d, s1, rng),
            ba: vec![0.0; da],
            w0: (0..da).map(|_| rng.gen_range(-s1..s1)).collect(),
            ws: Matrix::random(d, d, s2, rng),
            bs: vec![0.0; d],
            wt: Matrix::random(d, d, s2, rng),
            bt: vec![0.0; d],
        }
    }

    fn zeros_like(&self) -> Self {
        Self {
            w1: Matrix::zeros(self.w1.rows(), self.w1.cols()),
            w2: Matrix::zeros(self.w2.rows(), self.w2.cols()),
            w3: Matrix::zeros(self.w3.rows(), self.w3.cols()),
            ba: vec![0.0; self.ba.len()],
            w0: vec![0.0; self.w0.len()],
            ws: Matrix::zeros(self.ws.rows(), self.ws.cols()),
            bs: vec![0.0; self.bs.len()],
            wt: Matrix::zeros(self.wt.rows(), self.wt.cols()),
            bt: vec![0.0; self.bt.len()],
        }
    }

    fn zero(&mut self) {
        self.w1.fill_zero();
        self.w2.fill_zero();
        self.w3.fill_zero();
        self.ba.fill(0.0);
        self.w0.fill(0.0);
        self.ws.fill_zero();
        self.bs.fill(0.0);
        self.wt.fill_zero();
        self.bt.fill(0.0);
    }
}

/// Forward-pass intermediates for one prefix.
struct Forward {
    /// Attention pre-activations per position (da each).
    sig: Vec<Vec<f64>>,
    /// Attention weights per position.
    a: Vec<f64>,
    m_s: Vec<f64>,
    m_a: Vec<f64>,
    h_s: Vec<f64>,
    h_t: Vec<f64>,
    /// Session representation z = h_s ⊙ h_t.
    z: Vec<f64>,
}

/// The trained STAMP model.
#[derive(Debug, Clone)]
pub struct Stamp {
    items: Vec<ItemId>,
    item_index: FxHashMap<ItemId, usize>,
    embedding: Matrix,
    params: Params,
    config: StampConfig,
    loss_history: Vec<f64>,
}

impl Stamp {
    /// Trains STAMP on a click log.
    pub fn fit(clicks: &[Click], config: StampConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sessions = sessionize(clicks);

        let mut items: Vec<ItemId> = Vec::new();
        let mut item_index: FxHashMap<ItemId, usize> = FxHashMap::default();
        let mut counts: Vec<f64> = Vec::new();
        for s in &sessions {
            for &it in &s.items {
                match item_index.get(&it) {
                    Some(&idx) => counts[idx] += 1.0,
                    None => {
                        item_index.insert(it, items.len());
                        items.push(it);
                        counts.push(1.0);
                    }
                }
            }
        }
        let n_items = items.len().max(1);

        let mut cumulative = Vec::with_capacity(n_items);
        let mut acc = 0.0;
        for idx in 0..n_items {
            acc += counts.get(idx).copied().unwrap_or(1.0).powf(0.75);
            cumulative.push(acc);
        }
        let sample_negative = |rng: &mut StdRng| -> usize {
            let u = rng.gen::<f64>() * acc;
            cumulative.partition_point(|&c| c < u).min(n_items - 1)
        };

        let d = config.embed_dim;
        let scale_e = (6.0 / (n_items + d) as f64).sqrt().min(0.1);
        let mut model = Self {
            embedding: Matrix::random(n_items, d, scale_e, &mut rng),
            params: Params::new(d, config.attention_dim, &mut rng),
            items,
            item_index,
            config,
            loss_history: Vec::new(),
        };

        let mut grads = model.params.zeros_like();
        let mut accum = model.params.zeros_like();
        let mut emb_accum = Matrix::zeros(n_items, d);

        for _epoch in 0..config.epochs {
            let mut epoch_loss = 0.0;
            let mut steps = 0usize;
            for session in &sessions {
                let seq: Vec<usize> = session
                    .items
                    .iter()
                    .take(config.max_session_len)
                    .filter_map(|it| model.item_index.get(it).copied())
                    .collect();
                if seq.len() < 2 {
                    continue;
                }
                grads.zero();
                let mut emb_grads: FxHashMap<usize, Vec<f64>> = FxHashMap::default();

                for t in 1..seq.len() {
                    let prefix = &seq[..t];
                    let fwd = model.forward(prefix);
                    let target = seq[t];
                    let mut cand = Vec::with_capacity(config.negatives + 1);
                    cand.push(target);
                    for _ in 0..config.negatives {
                        let neg = sample_negative(&mut rng);
                        if neg != target {
                            cand.push(neg);
                        }
                    }
                    let scores: Vec<f64> =
                        cand.iter().map(|&v| dot(&fwd.z, model.embedding.row(v))).collect();
                    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
                    let sum: f64 = exps.iter().sum();
                    epoch_loss -= (exps[0] / sum).max(1e-12).ln();
                    steps += 1;

                    let mut dz = vec![0.0; d];
                    for (p, &v) in cand.iter().enumerate() {
                        let ds = exps[p] / sum - if p == 0 { 1.0 } else { 0.0 };
                        for (dzj, &e) in dz.iter_mut().zip(model.embedding.row(v)) {
                            *dzj += ds * e;
                        }
                        let g = emb_grads.entry(v).or_insert_with(|| vec![0.0; d]);
                        for (gj, &zj) in g.iter_mut().zip(&fwd.z) {
                            *gj += ds * zj;
                        }
                    }
                    model.backward(prefix, &fwd, &dz, &mut grads, &mut emb_grads);
                }

                // Adagrad updates.
                let lr = config.learning_rate;
                model.params.apply_adagrad(&grads, &mut accum, lr);
                for (idx, g) in emb_grads {
                    crate::model_adagrad_row(
                        model.embedding.row_mut(idx),
                        emb_accum.row_mut(idx),
                        &g,
                        lr,
                    );
                }
            }
            model
                .loss_history
                .push(if steps > 0 { epoch_loss / steps as f64 } else { 0.0 });
        }
        model
    }

    /// Mean sampled-softmax loss per epoch.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// Vocabulary size.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    fn forward(&self, prefix: &[usize]) -> Forward {
        let d = self.config.embed_dim;
        let da = self.config.attention_dim;
        let n = prefix.len();
        let x_t = self.embedding.row(*prefix.last().expect("non-empty prefix"));

        let mut m_s = vec![0.0; d];
        for &idx in prefix {
            for (m, &x) in m_s.iter_mut().zip(self.embedding.row(idx)) {
                *m += x;
            }
        }
        for m in &mut m_s {
            *m /= n as f64;
        }

        // Shared per-prefix terms of the attention pre-activation.
        let mut t2 = vec![0.0; da];
        self.params.w2.matvec(x_t, &mut t2);
        let mut t3 = vec![0.0; da];
        self.params.w3.matvec(&m_s, &mut t3);

        let mut sig = Vec::with_capacity(n);
        let mut a = Vec::with_capacity(n);
        let mut m_a = vec![0.0; d];
        let mut t1 = vec![0.0; da];
        for &idx in prefix {
            let x_i = self.embedding.row(idx);
            self.params.w1.matvec(x_i, &mut t1);
            let s: Vec<f64> = (0..da)
                .map(|j| sigmoid(t1[j] + t2[j] + t3[j] + self.params.ba[j]))
                .collect();
            let ai = dot(&self.params.w0, &s);
            for (m, &x) in m_a.iter_mut().zip(x_i) {
                *m += ai * x;
            }
            sig.push(s);
            a.push(ai);
        }

        let mut hs_pre = vec![0.0; d];
        self.params.ws.matvec(&m_a, &mut hs_pre);
        let h_s: Vec<f64> =
            hs_pre.iter().zip(&self.params.bs).map(|(v, b)| (v + b).tanh()).collect();
        let mut ht_pre = vec![0.0; d];
        self.params.wt.matvec(x_t, &mut ht_pre);
        let h_t: Vec<f64> =
            ht_pre.iter().zip(&self.params.bt).map(|(v, b)| (v + b).tanh()).collect();
        let z: Vec<f64> = h_s.iter().zip(&h_t).map(|(a, b)| a * b).collect();
        Forward { sig, a, m_s, m_a, h_s, h_t, z }
    }

    /// Backpropagates `dL/dz` into parameter and embedding gradients.
    fn backward(
        &self,
        prefix: &[usize],
        fwd: &Forward,
        dz: &[f64],
        grads: &mut Params,
        emb_grads: &mut FxHashMap<usize, Vec<f64>>,
    ) {
        let d = self.config.embed_dim;
        let n = prefix.len();
        let last = *prefix.last().expect("non-empty");
        let x_t = self.embedding.row(last);

        // Through z = h_s ⊙ h_t and the two tanh projections.
        let dhs_pre: Vec<f64> = (0..d)
            .map(|j| dz[j] * fwd.h_t[j] * (1.0 - fwd.h_s[j] * fwd.h_s[j]))
            .collect();
        let dht_pre: Vec<f64> = (0..d)
            .map(|j| dz[j] * fwd.h_s[j] * (1.0 - fwd.h_t[j] * fwd.h_t[j]))
            .collect();
        grads.ws.add_outer(&dhs_pre, &fwd.m_a, 1.0);
        grads.wt.add_outer(&dht_pre, x_t, 1.0);
        for j in 0..d {
            grads.bs[j] += dhs_pre[j];
            grads.bt[j] += dht_pre[j];
        }
        let mut dm_a = vec![0.0; d];
        self.params.ws.matvec_t_acc(&dhs_pre, &mut dm_a);
        let mut dx_t = vec![0.0; d];
        self.params.wt.matvec_t_acc(&dht_pre, &mut dx_t);

        // Through m_a = Σ a_i x_i and the attention network.
        let mut dm_s = vec![0.0; d];
        for (pos, &idx) in prefix.iter().enumerate() {
            let x_i = self.embedding.row(idx);
            let da_i = dot(&dm_a, x_i);
            // dx_i += a_i · dm_a
            let g = emb_grads.entry(idx).or_insert_with(|| vec![0.0; d]);
            for (gj, &dmj) in g.iter_mut().zip(&dm_a) {
                *gj += fwd.a[pos] * dmj;
            }
            // Attention scalar a_i = w0 · σ(e_i).
            let s = &fwd.sig[pos];
            let de: Vec<f64> = (0..self.config.attention_dim)
                .map(|j| da_i * self.params.w0[j] * s[j] * (1.0 - s[j]))
                .collect();
            for j in 0..self.config.attention_dim {
                grads.w0[j] += da_i * s[j];
                grads.ba[j] += de[j];
            }
            grads.w1.add_outer(&de, x_i, 1.0);
            grads.w2.add_outer(&de, x_t, 1.0);
            grads.w3.add_outer(&de, &fwd.m_s, 1.0);
            // dx_i += W1ᵀ de (reborrow the entry).
            let mut dx_i = vec![0.0; d];
            self.params.w1.matvec_t_acc(&de, &mut dx_i);
            let g = emb_grads.entry(idx).or_insert_with(|| vec![0.0; d]);
            for (gj, &v) in g.iter_mut().zip(&dx_i) {
                *gj += v;
            }
            self.params.w2.matvec_t_acc(&de, &mut dx_t);
            self.params.w3.matvec_t_acc(&de, &mut dm_s);
        }

        // Through m_s = mean(x_i).
        for &idx in prefix {
            let g = emb_grads.entry(idx).or_insert_with(|| vec![0.0; d]);
            for (gj, &v) in g.iter_mut().zip(&dm_s) {
                *gj += v / n as f64;
            }
        }
        // x_t gradient accumulated along the way.
        let g = emb_grads.entry(last).or_insert_with(|| vec![0.0; d]);
        for (gj, &v) in g.iter_mut().zip(&dx_t) {
            *gj += v;
        }
    }

    #[cfg(test)]
    fn loss_for(&self, prefix: &[usize], cand: &[usize]) -> f64 {
        let fwd = self.forward(prefix);
        let scores: Vec<f64> = cand.iter().map(|&v| dot(&fwd.z, self.embedding.row(v))).collect();
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        -(exps[0] / sum).ln()
    }
}

impl Params {
    fn apply_adagrad(&mut self, grads: &Params, accum: &mut Params, lr: f64) {
        crate::model_adagrad_row(self.w1.data_mut(), accum.w1.data_mut(), grads.w1.data(), lr);
        crate::model_adagrad_row(self.w2.data_mut(), accum.w2.data_mut(), grads.w2.data(), lr);
        crate::model_adagrad_row(self.w3.data_mut(), accum.w3.data_mut(), grads.w3.data(), lr);
        crate::model_adagrad_row(&mut self.ba, &mut accum.ba, &grads.ba, lr);
        crate::model_adagrad_row(&mut self.w0, &mut accum.w0, &grads.w0, lr);
        crate::model_adagrad_row(self.ws.data_mut(), accum.ws.data_mut(), grads.ws.data(), lr);
        crate::model_adagrad_row(&mut self.bs, &mut accum.bs, &grads.bs, lr);
        crate::model_adagrad_row(self.wt.data_mut(), accum.wt.data_mut(), grads.wt.data(), lr);
        crate::model_adagrad_row(&mut self.bt, &mut accum.bt, &grads.bt, lr);
    }
}

impl Recommender for Stamp {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let from = session.len().saturating_sub(self.config.max_session_len);
        let prefix: Vec<usize> = session[from..]
            .iter()
            .filter_map(|it| self.item_index.get(it).copied())
            .collect();
        if prefix.is_empty() {
            return Vec::new();
        }
        let fwd = self.forward(&prefix);
        let mut scored: Vec<(f64, usize)> = (0..self.items.len())
            .map(|v| (dot(&fwd.z, self.embedding.row(v)), v))
            .collect();
        scored.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite scores"));
        let mut out = Vec::with_capacity(how_many);
        for (score, v) in scored {
            let item = self.items[v];
            if session.contains(&item) {
                continue;
            }
            out.push(ItemScore { item, score: score as f32 });
            if out.len() == how_many {
                break;
            }
        }
        out
    }

    fn name(&self) -> &str {
        "stamp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> StampConfig {
        StampConfig {
            embed_dim: 8,
            attention_dim: 6,
            epochs: 15,
            learning_rate: 0.1,
            negatives: 4,
            max_session_len: 10,
            seed: 3,
        }
    }

    fn pattern_clicks() -> Vec<Click> {
        let mut out = Vec::new();
        for s in 0..120u64 {
            let ts = s * 10;
            if s % 2 == 0 {
                out.push(Click::new(s + 1, 1, ts));
                out.push(Click::new(s + 1, 2, ts + 1));
            } else {
                out.push(Click::new(s + 1, 3, ts));
                out.push(Click::new(s + 1, 4, ts + 1));
            }
        }
        out
    }

    /// Full finite-difference gradient check through attention, projections
    /// and embeddings.
    #[test]
    fn gradient_check() {
        let clicks = pattern_clicks();
        let mut config = tiny_config();
        config.epochs = 1;
        let mut model = Stamp::fit(&clicks, config);
        let prefix = vec![0usize, 1, 2]; // dense indices
        let cand = vec![3usize, 0, 2];

        // Analytic gradients.
        let fwd = model.forward(&prefix);
        let scores: Vec<f64> =
            cand.iter().map(|&v| dot(&fwd.z, model.embedding.row(v))).collect();
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let mut dz = vec![0.0; model.config.embed_dim];
        let mut emb_grads: FxHashMap<usize, Vec<f64>> = FxHashMap::default();
        for (p, &v) in cand.iter().enumerate() {
            let ds = exps[p] / sum - if p == 0 { 1.0 } else { 0.0 };
            for (dzj, &e) in dz.iter_mut().zip(model.embedding.row(v)) {
                *dzj += ds * e;
            }
            let g = emb_grads.entry(v).or_insert_with(|| vec![0.0; model.config.embed_dim]);
            for (gj, &zj) in g.iter_mut().zip(&fwd.z) {
                *gj += ds * zj;
            }
        }
        let mut grads = model.params.zeros_like();
        model.backward(&prefix, &fwd, &dz, &mut grads, &mut emb_grads);

        let eps = 1e-6;
        let tol = 1e-4;
        let check = |model: &mut Stamp,
                     get: &dyn Fn(&Stamp) -> f64,
                     set: &dyn Fn(&mut Stamp, f64),
                     analytic: f64,
                     name: &str| {
            let orig = get(model);
            set(model, orig + eps);
            let lp = model.loss_for(&prefix, &cand);
            set(model, orig - eps);
            let lm = model.loss_for(&prefix, &cand);
            set(model, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            // The denominator floor must sit above the central-difference
            // noise (~1e-10 absolute for eps = 1e-6 at f64), or gradients
            // smaller than the floor turn this into an absolute check at
            // the noise scale.
            let denom = numeric.abs().max(analytic.abs()).max(1e-5);
            assert!(
                (numeric - analytic).abs() / denom < tol,
                "{name}: numeric {numeric} vs analytic {analytic}"
            );
        };

        for (r, c) in [(0usize, 0usize), (2, 3), (5, 7)] {
            let g = grads.w1.get(r, c);
            check(&mut model, &|m| m.params.w1.get(r, c), &|m, v| m.params.w1.set(r, c, v), g, "w1");
            let g = grads.w2.get(r, c);
            check(&mut model, &|m| m.params.w2.get(r, c), &|m, v| m.params.w2.set(r, c, v), g, "w2");
            let g = grads.w3.get(r, c);
            check(&mut model, &|m| m.params.w3.get(r, c), &|m, v| m.params.w3.set(r, c, v), g, "w3");
            let g = grads.ws.get(r.min(7), c);
            check(&mut model, &|m| m.params.ws.get(r.min(7), c), &|m, v| m.params.ws.set(r.min(7), c, v), g, "ws");
            let g = grads.wt.get(r.min(7), c);
            check(&mut model, &|m| m.params.wt.get(r.min(7), c), &|m, v| m.params.wt.set(r.min(7), c, v), g, "wt");
        }
        for j in 0..6 {
            let g = grads.w0[j];
            check(&mut model, &|m| m.params.w0[j], &|m, v| m.params.w0[j] = v, g, "w0");
            let g = grads.ba[j];
            check(&mut model, &|m| m.params.ba[j], &|m, v| m.params.ba[j] = v, g, "ba");
        }
        for j in 0..8 {
            let g = grads.bs[j];
            check(&mut model, &|m| m.params.bs[j], &|m, v| m.params.bs[j] = v, g, "bs");
            let g = grads.bt[j];
            check(&mut model, &|m| m.params.bt[j], &|m, v| m.params.bt[j] = v, g, "bt");
        }
        // Embedding gradients (both output-side and attention-side paths).
        for &idx in &[0usize, 1, 2, 3] {
            if let Some(g) = emb_grads.get(&idx) {
                for c in [0usize, 4, 7] {
                    let analytic = g[c];
                    check(
                        &mut model,
                        &|m| m.embedding.get(idx, c),
                        &|m, v| m.embedding.set(idx, c, v),
                        analytic,
                        "embedding",
                    );
                }
            }
        }
    }

    #[test]
    fn learns_deterministic_transitions() {
        let model = Stamp::fit(&pattern_clicks(), tiny_config());
        assert_eq!(Recommender::recommend(&model, &[1], 1)[0].item, 2);
        assert_eq!(Recommender::recommend(&model, &[3], 1)[0].item, 4);
    }

    #[test]
    fn training_loss_decreases() {
        let model = Stamp::fit(&pattern_clicks(), tiny_config());
        let hist = model.loss_history();
        assert!(hist.last().unwrap() < &(hist[0] * 0.8), "{hist:?}");
        assert!(hist.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn unknown_and_empty_sessions() {
        let model = Stamp::fit(&pattern_clicks(), tiny_config());
        assert!(Recommender::recommend(&model, &[], 5).is_empty());
        assert!(Recommender::recommend(&model, &[999], 5).is_empty());
        assert_eq!(model.num_items(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Stamp::fit(&pattern_clicks(), tiny_config());
        let b = Stamp::fit(&pattern_clicks(), tiny_config());
        assert_eq!(a.loss_history(), b.loss_history());
    }
}
