//! Minimal dense linear algebra for the GRU model.
//!
//! Row-major `f64` matrices with exactly the operations the model needs:
//! matrix-vector products (plain and transposed), rank-1 accumulation for
//! gradients, and element access. No BLAS, no generics — small, obvious,
//! testable.

use rand::rngs::StdRng;
use rand::Rng;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Uniform random matrix in `[-scale, scale]` (Xavier-style init when
    /// `scale = sqrt(6 / (rows + cols))`).
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..scale)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self · x` (matrix-vector). `x.len() == cols`, `out.len() == rows`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
    }

    /// `out += selfᵀ · x` (transposed matrix-vector, accumulating).
    /// `x.len() == rows`, `out.len() == cols`.
    pub fn matvec_t_acc(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (o, &w) in out.iter_mut().zip(self.row(r)) {
                *o += xr * w;
            }
        }
    }

    /// Rank-1 update `self += scale · (u · vᵀ)` — the gradient of a
    /// matrix-vector product. `u.len() == rows`, `v.len() == cols`.
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], scale: f64) {
        debug_assert_eq!(u.len(), self.rows);
        debug_assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let f = ur * scale;
            for (w, &vc) in self.row_mut(r).iter_mut().zip(v) {
                *w += f * vc;
            }
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `a · b` for slices of equal length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut out);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_acc_is_transpose() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let mut out = vec![10.0, 0.0, 0.0];
        m.matvec_t_acc(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![15.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_accumulates_rank_one() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        m.fill_zero();
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999_999);
        assert!(sigmoid(-50.0) < 1e-6);
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
        // No NaN at extremes.
        assert!(sigmoid(-1e9).is_finite());
        assert!(sigmoid(1e9).is_finite());
    }

    #[test]
    fn random_matrix_respects_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random(10, 10, 0.25, &mut rng);
        assert!(m.data().iter().all(|&v| v.abs() <= 0.25));
        assert!(m.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, -1.0]), 1.0);
    }
}
