//! # serenade-neural — a compact GRU4Rec-style neural comparator
//!
//! The paper's quality study (Section 5.1.1) compares VMIS-kNN against three
//! neural session-based recommenders: GRU4Rec, NARM and STAMP. Its finding —
//! replicated from the session-rec studies — is that the nearest-neighbour
//! method *outperforms* the neural ones on e-commerce clickstreams.
//!
//! This crate provides the neural side of that comparison as a from-scratch
//! Rust implementation of the GRU4Rec architecture: an item embedding, a
//! single GRU layer, and a tied output layer trained with sampled-softmax
//! cross-entropy and Adagrad — the same recipe as the original paper
//! (Hidasi et al., 2015). NARM and STAMP add attention mechanisms on top of
//! the same recurrent backbone; since the published result is that the kNN
//! method wins regardless of which neural variant loses, one representative
//! comparator suffices (see DESIGN.md, substitution table).
//!
//! Numerics are `f64` end-to-end: the model is small, and exact
//! finite-difference gradient checks (see `gru::tests`) are worth more here
//! than SIMD throughput.

#![warn(missing_docs)]

pub mod gru;
pub mod linalg;
pub mod model;
pub mod stamp;

pub use gru::GruCell;
pub use linalg::Matrix;
pub use model::{Gru4Rec, Gru4RecConfig};
pub use stamp::{Stamp, StampConfig};

pub(crate) use model::adagrad_row as model_adagrad_row;
