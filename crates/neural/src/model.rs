//! The GRU4Rec-style session model: embedding → GRU → output layer, trained
//! with sampled-softmax cross-entropy and Adagrad (the original recipe of
//! Hidasi et al.). One training "mini-batch" is one session, backpropagated
//! through time over its (capped) click sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use serenade_core::{Click, FxHashMap, ItemId, ItemScore, Recommender};
use serenade_dataset::sessionize;

use crate::gru::{GruCell, GruGrads};
use crate::linalg::{dot, Matrix};

/// Hyperparameters of [`Gru4Rec`].
#[derive(Debug, Clone, Copy)]
pub struct Gru4RecConfig {
    /// Item-embedding dimension.
    pub embed_dim: usize,
    /// GRU hidden dimension.
    pub hidden_dim: usize,
    /// Training epochs over all sessions.
    pub epochs: usize,
    /// Adagrad learning rate.
    pub learning_rate: f64,
    /// Negative samples per prediction step (popularity-based, as in
    /// GRU4Rec's "mini-batch + sampled" output).
    pub negatives: usize,
    /// Cap on the session length used for BPTT.
    pub max_session_len: usize,
    /// RNG seed (initialisation and negative sampling).
    pub seed: u64,
}

impl Default for Gru4RecConfig {
    fn default() -> Self {
        Self {
            embed_dim: 32,
            hidden_dim: 48,
            epochs: 5,
            learning_rate: 0.08,
            negatives: 64,
            max_session_len: 19,
            seed: 42,
        }
    }
}

/// The trained model.
#[derive(Debug, Clone)]
pub struct Gru4Rec {
    /// Dense index → external item id.
    items: Vec<ItemId>,
    item_index: FxHashMap<ItemId, usize>,
    embedding: Matrix,
    cell: GruCell,
    /// Output layer: one row `v_j` per item.
    output: Matrix,
    output_bias: Vec<f64>,
    config: Gru4RecConfig,
    /// Mean sampled-softmax loss per epoch (observability / tests).
    loss_history: Vec<f64>,
}

/// Adagrad accumulators for the sparse (row-addressed) parameters; the dense
/// GRU parameters reuse the [`GruGrads`] shape as their accumulator.
struct Adagrad {
    embedding: Matrix,
    output: Matrix,
    output_bias: Vec<f64>,
}

const ADAGRAD_EPS: f64 = 1e-8;

pub(crate) fn adagrad_row(weights: &mut [f64], accum: &mut [f64], grad: &[f64], lr: f64) {
    for ((w, a), &g) in weights.iter_mut().zip(accum).zip(grad) {
        *a += g * g;
        *w -= lr * g / (a.sqrt() + ADAGRAD_EPS);
    }
}

impl Gru4Rec {
    /// Trains the model on a click log.
    ///
    /// Sessions with fewer than two clicks carry no training signal and are
    /// skipped. Items are indexed densely; unseen items at inference time
    /// are ignored.
    pub fn fit(clicks: &[Click], config: Gru4RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sessions = sessionize(clicks);

        // Vocabulary, ordered by first appearance for determinism.
        let mut items: Vec<ItemId> = Vec::new();
        let mut item_index: FxHashMap<ItemId, usize> = FxHashMap::default();
        let mut counts: Vec<f64> = Vec::new();
        for s in &sessions {
            for &it in &s.items {
                match item_index.get(&it) {
                    Some(&idx) => counts[idx] += 1.0,
                    None => {
                        item_index.insert(it, items.len());
                        items.push(it);
                        counts.push(1.0);
                    }
                }
            }
        }
        let n_items = items.len().max(1);

        // Popularity-proportional negative sampling table (¾ power, as is
        // customary to flatten the head).
        let mut cumulative = Vec::with_capacity(n_items);
        let mut acc = 0.0;
        for idx in 0..n_items {
            acc += counts.get(idx).copied().unwrap_or(1.0).powf(0.75);
            cumulative.push(acc);
        }

        let scale_e = (6.0 / (n_items + config.embed_dim) as f64).sqrt().min(0.1);
        let scale_o = (6.0 / (n_items + config.hidden_dim) as f64).sqrt().min(0.1);
        let mut model = Self {
            embedding: Matrix::random(n_items, config.embed_dim, scale_e, &mut rng),
            cell: GruCell::new(config.embed_dim, config.hidden_dim, &mut rng),
            output: Matrix::random(n_items, config.hidden_dim, scale_o, &mut rng),
            output_bias: vec![0.0; n_items],
            items,
            item_index,
            config,
            loss_history: Vec::new(),
        };

        let mut state = Adagrad {
            embedding: Matrix::zeros(n_items, config.embed_dim),
            output: Matrix::zeros(n_items, config.hidden_dim),
            output_bias: vec![0.0; n_items],
        };
        // Dense-parameter Adagrad accumulators reuse the GruGrads shape.
        let mut cell_accum = GruGrads::zeros_like(&model.cell);
        let mut grads = GruGrads::zeros_like(&model.cell);

        let sample_negative = |rng: &mut StdRng| -> usize {
            let u = rng.gen::<f64>() * acc;
            cumulative.partition_point(|&c| c < u).min(n_items - 1)
        };

        for _epoch in 0..config.epochs {
            let mut epoch_loss = 0.0;
            let mut steps = 0usize;
            for session in &sessions {
                let seq: Vec<usize> = session
                    .items
                    .iter()
                    .take(config.max_session_len)
                    .filter_map(|it| model.item_index.get(it).copied())
                    .collect();
                if seq.len() < 2 {
                    continue;
                }

                // ---- Forward over the session. --------------------------
                let mut h = vec![0.0; config.hidden_dim];
                let mut caches = Vec::with_capacity(seq.len() - 1);
                let mut hiddens = Vec::with_capacity(seq.len() - 1);
                for &idx in &seq[..seq.len() - 1] {
                    let x = model.embedding.row(idx).to_vec();
                    let (h_new, cache) = model.cell.forward(&x, &h);
                    caches.push(cache);
                    h = h_new;
                    hiddens.push(h.clone());
                }

                // ---- Per-step sampled-softmax loss and dh. ---------------
                grads.zero();
                let mut dhs: Vec<Vec<f64>> = vec![vec![0.0; config.hidden_dim]; hiddens.len()];
                let mut emb_grads: FxHashMap<usize, Vec<f64>> = FxHashMap::default();
                let mut out_grads: FxHashMap<usize, Vec<f64>> = FxHashMap::default();
                let mut bias_grads: FxHashMap<usize, f64> = FxHashMap::default();

                for (t, ht) in hiddens.iter().enumerate() {
                    let target = seq[t + 1];
                    let mut cand = Vec::with_capacity(config.negatives + 1);
                    cand.push(target);
                    for _ in 0..config.negatives {
                        let neg = sample_negative(&mut rng);
                        if neg != target {
                            cand.push(neg);
                        }
                    }
                    // Stable softmax over the candidate scores.
                    let scores: Vec<f64> = cand
                        .iter()
                        .map(|&j| dot(model.output.row(j), ht) + model.output_bias[j])
                        .collect();
                    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
                    let sum: f64 = exps.iter().sum();
                    epoch_loss -= (exps[0] / sum).max(1e-12).ln();
                    steps += 1;

                    for (pos, &j) in cand.iter().enumerate() {
                        let p = exps[pos] / sum;
                        let ds = p - if pos == 0 { 1.0 } else { 0.0 };
                        // dh += ds · v_j
                        for (dh, &v) in dhs[t].iter_mut().zip(model.output.row(j)) {
                            *dh += ds * v;
                        }
                        // dv_j += ds · h, db_j += ds
                        let g = out_grads
                            .entry(j)
                            .or_insert_with(|| vec![0.0; config.hidden_dim]);
                        for (gv, &hv) in g.iter_mut().zip(ht.iter()) {
                            *gv += ds * hv;
                        }
                        *bias_grads.entry(j).or_insert(0.0) += ds;
                    }
                }

                // ---- BPTT. ----------------------------------------------
                let mut dh_carry = vec![0.0; config.hidden_dim];
                for t in (0..caches.len()).rev() {
                    let dh: Vec<f64> =
                        dh_carry.iter().zip(&dhs[t]).map(|(a, b)| a + b).collect();
                    let (dh_prev, dx) = model.cell.backward(&caches[t], &dh, &mut grads);
                    dh_carry = dh_prev;
                    let eg = emb_grads
                        .entry(seq[t])
                        .or_insert_with(|| vec![0.0; config.embed_dim]);
                    for (a, b) in eg.iter_mut().zip(&dx) {
                        *a += b;
                    }
                }

                // ---- Adagrad updates. -----------------------------------
                let lr = config.learning_rate;
                macro_rules! dense_update {
                    ($w:expr, $a:expr, $g:expr) => {
                        adagrad_row($w.data_mut(), $a.data_mut(), $g.data(), lr)
                    };
                }
                dense_update!(model.cell.wz, cell_accum.wz, grads.wz);
                dense_update!(model.cell.wr, cell_accum.wr, grads.wr);
                dense_update!(model.cell.wh, cell_accum.wh, grads.wh);
                dense_update!(model.cell.uz, cell_accum.uz, grads.uz);
                dense_update!(model.cell.ur, cell_accum.ur, grads.ur);
                dense_update!(model.cell.uh, cell_accum.uh, grads.uh);
                adagrad_row(&mut model.cell.bz, &mut cell_accum.bz, &grads.bz, lr);
                adagrad_row(&mut model.cell.br, &mut cell_accum.br, &grads.br, lr);
                adagrad_row(&mut model.cell.bh, &mut cell_accum.bh, &grads.bh, lr);
                for (idx, g) in emb_grads {
                    adagrad_row(
                        model.embedding.row_mut(idx),
                        state.embedding.row_mut(idx),
                        &g,
                        lr,
                    );
                }
                for (idx, g) in out_grads {
                    adagrad_row(model.output.row_mut(idx), state.output.row_mut(idx), &g, lr);
                }
                for (idx, g) in bias_grads {
                    let a = &mut state.output_bias[idx];
                    *a += g * g;
                    model.output_bias[idx] -= lr * g / (a.sqrt() + ADAGRAD_EPS);
                }
            }
            model.loss_history.push(if steps > 0 { epoch_loss / steps as f64 } else { 0.0 });
        }
        model
    }

    /// Mean sampled-softmax loss per epoch.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// Vocabulary size.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Hidden state after consuming the (known items of the) session.
    fn encode(&self, session: &[ItemId]) -> Option<Vec<f64>> {
        let from = session.len().saturating_sub(self.config.max_session_len);
        let mut h = vec![0.0; self.config.hidden_dim];
        let mut any = false;
        for it in &session[from..] {
            if let Some(&idx) = self.item_index.get(it) {
                let x = self.embedding.row(idx).to_vec();
                h = self.cell.forward(&x, &h).0;
                any = true;
            }
        }
        any.then_some(h)
    }
}

impl Recommender for Gru4Rec {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let Some(h) = self.encode(session) else {
            return Vec::new();
        };
        let mut scored: Vec<(f64, usize)> = (0..self.items.len())
            .map(|j| (dot(self.output.row(j), &h) + self.output_bias[j], j))
            .collect();
        scored.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite scores"));
        let mut out = Vec::with_capacity(how_many);
        for (score, j) in scored {
            let item = self.items[j];
            if session.contains(&item) {
                continue;
            }
            out.push(ItemScore { item, score: score as f32 });
            if out.len() == how_many {
                break;
            }
        }
        out
    }

    fn name(&self) -> &str {
        "gru4rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Gru4RecConfig {
        Gru4RecConfig {
            embed_dim: 8,
            hidden_dim: 8,
            epochs: 12,
            learning_rate: 0.1,
            negatives: 4,
            max_session_len: 10,
            seed: 1,
        }
    }

    /// Deterministic transitions: 1→2, 3→4 (many observations each).
    fn pattern_clicks() -> Vec<Click> {
        let mut out = Vec::new();
        for s in 0..120u64 {
            let ts = s * 10;
            if s % 2 == 0 {
                out.push(Click::new(s + 1, 1, ts));
                out.push(Click::new(s + 1, 2, ts + 1));
            } else {
                out.push(Click::new(s + 1, 3, ts));
                out.push(Click::new(s + 1, 4, ts + 1));
            }
        }
        out
    }

    #[test]
    fn learns_deterministic_transitions() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        let after_1 = Recommender::recommend(&model, &[1], 1);
        assert_eq!(after_1[0].item, 2, "after item 1 the model must predict 2");
        let after_3 = Recommender::recommend(&model, &[3], 1);
        assert_eq!(after_3[0].item, 4, "after item 3 the model must predict 4");
    }

    #[test]
    fn training_loss_decreases() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        let hist = model.loss_history();
        assert_eq!(hist.len(), 12);
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.8),
            "loss should drop ≥20%: {hist:?}"
        );
        assert!(hist.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn fitting_is_deterministic() {
        let a = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        let b = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        assert_eq!(a.loss_history(), b.loss_history());
        assert_eq!(
            Recommender::recommend(&a, &[1], 3),
            Recommender::recommend(&b, &[1], 3)
        );
    }

    #[test]
    fn unknown_items_are_ignored() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        assert!(Recommender::recommend(&model, &[999], 5).is_empty());
        // A mixed session still works off the known item.
        let recs = Recommender::recommend(&model, &[999, 1], 1);
        assert_eq!(recs[0].item, 2);
    }

    #[test]
    fn empty_session_yields_nothing() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        assert!(Recommender::recommend(&model, &[], 5).is_empty());
    }

    #[test]
    fn session_items_are_excluded_from_output() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        let recs = Recommender::recommend(&model, &[1, 2], 10);
        assert!(recs.iter().all(|r| r.item != 1 && r.item != 2));
    }

    #[test]
    fn respects_how_many() {
        let model = Gru4Rec::fit(&pattern_clicks(), tiny_config());
        assert!(Recommender::recommend(&model, &[1], 2).len() <= 2);
        assert_eq!(model.num_items(), 4);
    }
}
