//! A single GRU cell with manual backpropagation-through-time support.
//!
//! Standard gated recurrent unit (Cho et al., the formulation used by
//! GRU4Rec):
//!
//! ```text
//! z_t = σ(W_z x_t + U_z h_{t−1} + b_z)        (update gate)
//! r_t = σ(W_r x_t + U_r h_{t−1} + b_r)        (reset gate)
//! c_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t−1}) + b_h)
//! h_t = (1 − z_t) ⊙ h_{t−1} + z_t ⊙ c_t
//! ```
//!
//! The forward pass returns a [`StepCache`] holding every intermediate the
//! backward pass needs; [`GruCell::backward`] consumes a cache plus `∂L/∂h_t`
//! and accumulates parameter gradients into a [`GruGrads`], returning
//! `∂L/∂h_{t−1}` and `∂L/∂x_t`. Correctness is pinned by a full
//! finite-difference gradient check in the tests.

use rand::rngs::StdRng;

use crate::linalg::{sigmoid, Matrix};

/// GRU parameters for input dimension `d` and hidden dimension `h`.
#[derive(Debug, Clone)]
pub struct GruCell {
    /// Input weights, each `h × d`.
    pub wz: Matrix,
    /// Reset-gate input weights.
    pub wr: Matrix,
    /// Candidate input weights.
    pub wh: Matrix,
    /// Recurrent weights, each `h × h`.
    pub uz: Matrix,
    /// Reset-gate recurrent weights.
    pub ur: Matrix,
    /// Candidate recurrent weights.
    pub uh: Matrix,
    /// Gate biases, each of length `h`.
    pub bz: Vec<f64>,
    /// Reset-gate bias.
    pub br: Vec<f64>,
    /// Candidate bias.
    pub bh: Vec<f64>,
}

/// Gradients with the same shapes as [`GruCell`].
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// ∂L/∂W_z.
    pub wz: Matrix,
    /// ∂L/∂W_r.
    pub wr: Matrix,
    /// ∂L/∂W_h.
    pub wh: Matrix,
    /// ∂L/∂U_z.
    pub uz: Matrix,
    /// ∂L/∂U_r.
    pub ur: Matrix,
    /// ∂L/∂U_h.
    pub uh: Matrix,
    /// ∂L/∂b_z.
    pub bz: Vec<f64>,
    /// ∂L/∂b_r.
    pub br: Vec<f64>,
    /// ∂L/∂b_h.
    pub bh: Vec<f64>,
}

/// Intermediates of one forward step, kept for the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    /// Input vector `x_t`.
    pub x: Vec<f64>,
    /// Previous hidden state `h_{t−1}`.
    pub h_prev: Vec<f64>,
    /// Update gate `z_t`.
    pub z: Vec<f64>,
    /// Reset gate `r_t`.
    pub r: Vec<f64>,
    /// Candidate `c_t`.
    pub c: Vec<f64>,
}

impl GruCell {
    /// Xavier-initialised cell.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut StdRng) -> Self {
        let sw = (6.0 / (input_dim + hidden_dim) as f64).sqrt();
        let su = (6.0 / (2 * hidden_dim) as f64).sqrt();
        Self {
            wz: Matrix::random(hidden_dim, input_dim, sw, rng),
            wr: Matrix::random(hidden_dim, input_dim, sw, rng),
            wh: Matrix::random(hidden_dim, input_dim, sw, rng),
            uz: Matrix::random(hidden_dim, hidden_dim, su, rng),
            ur: Matrix::random(hidden_dim, hidden_dim, su, rng),
            uh: Matrix::random(hidden_dim, hidden_dim, su, rng),
            bz: vec![0.0; hidden_dim],
            br: vec![0.0; hidden_dim],
            bh: vec![0.0; hidden_dim],
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.bz.len()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.wz.cols()
    }

    /// One forward step; returns `(h_t, cache)`.
    pub fn forward(&self, x: &[f64], h_prev: &[f64]) -> (Vec<f64>, StepCache) {
        let h = self.hidden_dim();
        let mut az = vec![0.0; h];
        let mut ar = vec![0.0; h];
        let mut ah = vec![0.0; h];
        self.wz.matvec(x, &mut az);
        self.wr.matvec(x, &mut ar);
        self.wh.matvec(x, &mut ah);
        let mut tz = vec![0.0; h];
        let mut tr = vec![0.0; h];
        self.uz.matvec(h_prev, &mut tz);
        self.ur.matvec(h_prev, &mut tr);
        let z: Vec<f64> = (0..h).map(|i| sigmoid(az[i] + tz[i] + self.bz[i])).collect();
        let r: Vec<f64> = (0..h).map(|i| sigmoid(ar[i] + tr[i] + self.br[i])).collect();
        let rh: Vec<f64> = (0..h).map(|i| r[i] * h_prev[i]).collect();
        let mut th = vec![0.0; h];
        self.uh.matvec(&rh, &mut th);
        let c: Vec<f64> = (0..h).map(|i| (ah[i] + th[i] + self.bh[i]).tanh()).collect();
        let h_new: Vec<f64> = (0..h).map(|i| (1.0 - z[i]) * h_prev[i] + z[i] * c[i]).collect();
        let cache = StepCache { x: x.to_vec(), h_prev: h_prev.to_vec(), z, r, c };
        (h_new, cache)
    }

    /// Backward step: given `∂L/∂h_t`, accumulates parameter gradients into
    /// `grads` and returns `(∂L/∂h_{t−1}, ∂L/∂x_t)`.
    pub fn backward(
        &self,
        cache: &StepCache,
        dh: &[f64],
        grads: &mut GruGrads,
    ) -> (Vec<f64>, Vec<f64>) {
        let h = self.hidden_dim();
        let d = self.input_dim();
        let StepCache { x, h_prev, z, r, c } = cache;

        // Pre-activation gradients.
        let dz_pre: Vec<f64> =
            (0..h).map(|i| dh[i] * (c[i] - h_prev[i]) * z[i] * (1.0 - z[i])).collect();
        let dc_pre: Vec<f64> = (0..h).map(|i| dh[i] * z[i] * (1.0 - c[i] * c[i])).collect();

        // Through U_h (r ⊙ h_prev).
        let mut drh = vec![0.0; h];
        self.uh.matvec_t_acc(&dc_pre, &mut drh);
        let dr_pre: Vec<f64> =
            (0..h).map(|i| drh[i] * h_prev[i] * r[i] * (1.0 - r[i])).collect();

        // ∂L/∂h_{t−1}.
        let mut dh_prev: Vec<f64> = (0..h).map(|i| dh[i] * (1.0 - z[i]) + drh[i] * r[i]).collect();
        self.uz.matvec_t_acc(&dz_pre, &mut dh_prev);
        self.ur.matvec_t_acc(&dr_pre, &mut dh_prev);

        // ∂L/∂x_t.
        let mut dx = vec![0.0; d];
        self.wz.matvec_t_acc(&dz_pre, &mut dx);
        self.wr.matvec_t_acc(&dr_pre, &mut dx);
        self.wh.matvec_t_acc(&dc_pre, &mut dx);

        // Parameter gradients.
        let rh: Vec<f64> = (0..h).map(|i| r[i] * h_prev[i]).collect();
        grads.wz.add_outer(&dz_pre, x, 1.0);
        grads.wr.add_outer(&dr_pre, x, 1.0);
        grads.wh.add_outer(&dc_pre, x, 1.0);
        grads.uz.add_outer(&dz_pre, h_prev, 1.0);
        grads.ur.add_outer(&dr_pre, h_prev, 1.0);
        grads.uh.add_outer(&dc_pre, &rh, 1.0);
        for i in 0..h {
            grads.bz[i] += dz_pre[i];
            grads.br[i] += dr_pre[i];
            grads.bh[i] += dc_pre[i];
        }

        (dh_prev, dx)
    }
}

impl GruGrads {
    /// Zero gradients matching `cell`'s shapes.
    pub fn zeros_like(cell: &GruCell) -> Self {
        let (h, d) = (cell.hidden_dim(), cell.input_dim());
        Self {
            wz: Matrix::zeros(h, d),
            wr: Matrix::zeros(h, d),
            wh: Matrix::zeros(h, d),
            uz: Matrix::zeros(h, h),
            ur: Matrix::zeros(h, h),
            uh: Matrix::zeros(h, h),
            bz: vec![0.0; h],
            br: vec![0.0; h],
            bh: vec![0.0; h],
        }
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        self.wz.fill_zero();
        self.wr.fill_zero();
        self.wh.fill_zero();
        self.uz.fill_zero();
        self.ur.fill_zero();
        self.uh.fill_zero();
        self.bz.fill(0.0);
        self.br.fill(0.0);
        self.bh.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dot;
    use rand::SeedableRng;

    /// Loss used by the gradient check: L = Σ w_i · h_T,i over a 3-step
    /// unrolled sequence — exercises BPTT through every gate.
    fn sequence_loss(cell: &GruCell, xs: &[Vec<f64>], w: &[f64]) -> f64 {
        let mut h = vec![0.0; cell.hidden_dim()];
        for x in xs {
            h = cell.forward(x, &h).0;
        }
        dot(w, &h)
    }

    fn analytic_grads(cell: &GruCell, xs: &[Vec<f64>], w: &[f64]) -> (GruGrads, Vec<Vec<f64>>) {
        let mut h = vec![0.0; cell.hidden_dim()];
        let mut caches = Vec::new();
        for x in xs {
            let (h_new, cache) = cell.forward(x, &h);
            caches.push(cache);
            h = h_new;
        }
        let mut grads = GruGrads::zeros_like(cell);
        let mut dh = w.to_vec();
        let mut dxs = vec![Vec::new(); xs.len()];
        for (t, cache) in caches.iter().enumerate().rev() {
            let (dh_prev, dx) = cell.backward(cache, &dh, &mut grads);
            dxs[t] = dx;
            dh = dh_prev;
        }
        (grads, dxs)
    }

    /// Central finite differences on every parameter, compared against the
    /// analytic gradients. This is the correctness anchor of the crate.
    #[test]
    fn gradient_check_all_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let (d, h) = (3, 4);
        let mut cell = GruCell::new(d, h, &mut rng);
        let xs: Vec<Vec<f64>> = vec![
            vec![0.5, -0.3, 0.8],
            vec![-0.2, 0.9, 0.1],
            vec![0.7, 0.2, -0.6],
        ];
        let w: Vec<f64> = vec![0.3, -0.7, 0.5, 0.9];
        let (grads, _) = analytic_grads(&cell, &xs, &w);

        let eps = 1e-6;
        let mut check = |get: &dyn Fn(&GruCell) -> f64,
                         set: &dyn Fn(&mut GruCell, f64),
                         analytic: f64,
                         name: &str| {
            let orig = get(&cell);
            set(&mut cell, orig + eps);
            let lp = sequence_loss(&cell, &xs, &w);
            set(&mut cell, orig - eps);
            let lm = sequence_loss(&cell, &xs, &w);
            set(&mut cell, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(analytic.abs()).max(1e-8);
            assert!(
                (numeric - analytic).abs() / denom < 1e-5,
                "{name}: numeric {numeric} vs analytic {analytic}"
            );
        };

        // Spot-check a grid of coordinates in every parameter tensor.
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 1)] {
            check(&|m| m.wz.get(r, c), &|m, v| m.wz.set(r, c, v), grads.wz.get(r, c), "wz");
            check(&|m| m.wr.get(r, c), &|m, v| m.wr.set(r, c, v), grads.wr.get(r, c), "wr");
            check(&|m| m.wh.get(r, c), &|m, v| m.wh.set(r, c, v), grads.wh.get(r, c), "wh");
        }
        for (r, c) in [(0usize, 0usize), (2, 3), (3, 3)] {
            check(&|m| m.uz.get(r, c), &|m, v| m.uz.set(r, c, v), grads.uz.get(r, c), "uz");
            check(&|m| m.ur.get(r, c), &|m, v| m.ur.set(r, c, v), grads.ur.get(r, c), "ur");
            check(&|m| m.uh.get(r, c), &|m, v| m.uh.set(r, c, v), grads.uh.get(r, c), "uh");
        }
        for i in 0..h {
            check(&|m| m.bz[i], &|m, v| m.bz[i] = v, grads.bz[i], "bz");
            check(&|m| m.br[i], &|m, v| m.br[i] = v, grads.br[i], "br");
            check(&|m| m.bh[i], &|m, v| m.bh[i] = v, grads.bh[i], "bh");
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let cell = GruCell::new(3, 4, &mut rng);
        let w = vec![0.4, 0.1, -0.8, 0.6];
        let xs = vec![vec![0.2, -0.5, 0.7], vec![0.9, 0.0, -0.1]];
        let (_, dxs) = analytic_grads(&cell, &xs, &w);

        let eps = 1e-6;
        for t in 0..xs.len() {
            for i in 0..3 {
                let mut xp = xs.clone();
                xp[t][i] += eps;
                let lp = sequence_loss(&cell, &xp, &w);
                let mut xm = xs.clone();
                xm[t][i] -= eps;
                let lm = sequence_loss(&cell, &xm, &w);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = dxs[t][i];
                let denom = numeric.abs().max(analytic.abs()).max(1e-8);
                assert!(
                    (numeric - analytic).abs() / denom < 1e-5,
                    "dx[{t}][{i}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn hidden_state_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        let cell = GruCell::new(2, 8, &mut rng);
        let mut h = vec![0.0; 8];
        for step in 0..200 {
            let x = vec![(step as f64).sin(), (step as f64).cos()];
            h = cell.forward(&x, &h).0;
        }
        // GRU hidden states are convex mixes of tanh outputs: |h| ≤ 1.
        assert!(h.iter().all(|v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn zero_update_gate_keeps_previous_state() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cell = GruCell::new(2, 3, &mut rng);
        // Forcing z ≈ 0 via a very negative bias: h_t ≈ h_{t−1}.
        cell.bz = vec![-100.0; 3];
        let h_prev = vec![0.3, -0.2, 0.5];
        let (h, _) = cell.forward(&[1.0, -1.0], &h_prev);
        for (a, b) in h.iter().zip(&h_prev) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
