//! Model checks for the telemetry hot paths.
//!
//! Run with `cargo test -p serenade-telemetry --features loom`. The checker
//! (the in-tree `shims/loom`) explores thread interleavings up to a
//! preemption bound; under `--features loom` the crate's `sync` facade
//! routes every atomic through the shim, so each load/store/RMW below is a
//! scheduling point.
//!
//! The histograms here are deliberately tiny (`max_value_us` in the tens):
//! the model's step budget is per schedule, and a production-sized bucket
//! table would spend it on snapshot loads instead of interesting
//! interleavings.

#![cfg(feature = "loom")]

use std::sync::Arc;

use serenade_telemetry::{Histogram, HistogramConfig, TraceConfig, TraceRing, TraceSample};

/// Relaxed per-shard counters must be lossless under merge: whatever the
/// interleaving of two recorders, the post-join snapshot accounts for every
/// observation exactly once, with exact sum/min/max.
#[test]
fn sharded_histogram_record_is_lossless_under_merge() {
    loom::model(|| {
        let h = Arc::new(Histogram::new(HistogramConfig { max_value_us: 31, shards: 2 }));
        let t1 = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || {
                h.record_us(3);
                h.record_us(70); // clamped to 31
            })
        };
        let t2 = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || h.record_us(5))
        };
        t1.join().unwrap();
        t2.join().unwrap();

        let s = h.snapshot();
        assert_eq!(s.count, 3, "a relaxed increment was lost in the merge");
        assert_eq!(s.sum_us, 3 + 31 + 5);
        assert_eq!(s.min_us, 3);
        assert_eq!(s.max_us, 31);
        assert_eq!(s.quantile_us(0.0), 3);
        assert_eq!(s.quantile_us(1.0), 31);
    });
}

/// A snapshot racing a recorder is a consistent subset: it may cut between
/// the recorder's bucket increments, but per-bucket counts never exceed
/// what was recorded and the post-race totals are bounded.
#[test]
fn concurrent_snapshot_is_a_subset() {
    loom::model(|| {
        let h = Arc::new(Histogram::new(HistogramConfig { max_value_us: 15, shards: 1 }));
        let writer = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || {
                h.record_us(2);
                h.record_us(9);
            })
        };
        let observed = h.snapshot();
        assert!(observed.count <= 2, "snapshot observed more than was recorded");
        writer.join().unwrap();
        assert_eq!(h.snapshot().count, 2);
    });
}

/// Two writers racing the same trace slot: the busy stripe must serialise
/// them (one drops its sample), and a post-join snapshot must hold exactly
/// one internally consistent sample — no field mixing between writers.
#[test]
fn trace_ring_writers_never_mix_fields() {
    fn sample(id: u64) -> TraceSample {
        TraceSample {
            request_id: id,
            total_us: id,
            session_us: id,
            predict_us: id,
            policy_us: id,
            session_len: id,
            depersonalised: false,
        }
    }

    loom::model(|| {
        let ring = Arc::new(TraceRing::new(TraceConfig {
            slots: 1,
            sample_every: 1,
            slow_threshold_us: 0,
        }));
        let writers: Vec<_> = [7u64, 9]
            .into_iter()
            .map(|id| {
                let ring = Arc::clone(&ring);
                loom::thread::spawn(move || ring.record(&sample(id)))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1, "one slot cannot publish two samples");
        let s = snap[0];
        assert!(s.request_id == 7 || s.request_id == 9);
        assert_eq!(s, sample(s.request_id), "fields mixed across writers");
    });
}
