//! Property tests for the bounded log-linear histogram.
//!
//! Two claims the serving stack relies on are checked against randomly
//! generated workloads:
//!
//! 1. **Bounded error** — every quantile the histogram reports is within
//!    the documented relative-error bound of the *exact* order statistic,
//!    as computed by `serenade-metrics`' raw-sample `LatencyRecorder`
//!    (which shares the histogram's rank convention).
//! 2. **Merge fidelity** — recording across shards and merging at snapshot
//!    time yields byte-for-byte the distribution a single shard records:
//!    sharding is an implementation detail, never a semantic one.

#![cfg(not(feature = "loom"))]

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_metrics::LatencyRecorder;
use serenade_telemetry::{Histogram, HistogramConfig, REL_ERROR_BOUND};

/// Exact quantile via the raw-sample recorder's rank convention.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

proptest! {
    #[test]
    fn quantiles_stay_within_documented_bound_of_exact(
        samples in vec(0u64..20_000_000, 1..300),
    ) {
        let histogram = Histogram::default();
        let mut exact = LatencyRecorder::with_capacity(samples.len());
        for &v in &samples {
            histogram.record_us(v);
            exact.record_us(v);
        }
        let snap = histogram.snapshot();
        let summary = exact.summary().ok_or("no samples")?;
        prop_assert_eq!(snap.count as usize, summary.count);
        prop_assert_eq!(snap.min_us, summary.min_us);
        prop_assert_eq!(snap.max_us, summary.max_us);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.995, 1.0] {
            let est = snap.quantile_us(q);
            let exact = exact_quantile(&sorted, q);
            let tolerance = (exact as f64 * REL_ERROR_BOUND).ceil() as u64 + 1;
            prop_assert!(
                est.abs_diff(exact) <= tolerance,
                "q={}: estimate {} vs exact {} (tolerance {})",
                q, est, exact, tolerance
            );
        }

        // The recorder's named percentiles agree the same way.
        for (q, exact) in [
            (0.50, summary.p50_us),
            (0.75, summary.p75_us),
            (0.90, summary.p90_us),
            (0.995, summary.p995_us),
        ] {
            let est = snap.quantile_us(q);
            let tolerance = (exact as f64 * REL_ERROR_BOUND).ceil() as u64 + 1;
            prop_assert!(est.abs_diff(exact) <= tolerance);
        }
    }

    #[test]
    fn merged_shards_equal_single_shard_recording(
        samples in vec(0u64..20_000_000, 1..300),
    ) {
        let sharded = Histogram::new(HistogramConfig { shards: 4, ..HistogramConfig::default() });
        let single = Histogram::new(HistogramConfig { shards: 1, ..HistogramConfig::default() });
        for (i, &v) in samples.iter().enumerate() {
            sharded.record_us_in_shard(i, v);
            single.record_us(v);
        }
        let merged = sharded.snapshot();
        let reference = single.snapshot();
        prop_assert_eq!(merged.count, reference.count);
        prop_assert_eq!(merged.sum_us, reference.sum_us);
        prop_assert_eq!(merged.min_us, reference.min_us);
        prop_assert_eq!(merged.max_us, reference.max_us);
        prop_assert_eq!(merged.cumulative_buckets(), reference.cumulative_buckets());
        for q in [0.0, 0.5, 0.9, 0.995, 1.0] {
            prop_assert_eq!(merged.quantile_us(q), reference.quantile_us(q));
        }
    }

    #[test]
    fn snapshot_merge_equals_combined_recording(
        left in vec(0u64..20_000_000, 1..150),
        right in vec(0u64..20_000_000, 1..150),
    ) {
        let a = Histogram::default();
        let b = Histogram::default();
        let combined = Histogram::default();
        for &v in &left {
            a.record_us(v);
            combined.record_us(v);
        }
        for &v in &right {
            b.record_us(v);
            combined.record_us(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = combined.snapshot();
        prop_assert_eq!(merged.count, reference.count);
        prop_assert_eq!(merged.sum_us, reference.sum_us);
        prop_assert_eq!(merged.cumulative_buckets(), reference.cumulative_buckets());
    }
}
