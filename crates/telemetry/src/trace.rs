//! Per-request tracing: a lock-striped ring of recent slow requests.
//!
//! Every request that clears the sampling and slow-threshold knobs deposits
//! a [`TraceSample`] — request id, per-stage timings, session length,
//! depersonalised flag — into a fixed ring of [`TraceRing`] slots. The
//! `GET /debug/slow` endpoint snapshots the ring and returns the samples
//! sorted slowest-first, answering the question the aggregate histograms
//! cannot: *which* requests were slow, and in which stage.
//!
//! The ring is striped per slot rather than guarded by one lock: a writer
//! claims a slot with a single atomic `swap` on the slot's `busy` flag and
//! simply drops the trace if another writer holds it (telemetry may shed
//! load; it must never add a lock-wait to the request path). Field writes
//! are bracketed by a version counter (odd = mid-write) so readers discard
//! samples they raced with. Every field is an atomic, so even a
//! theoretically torn read is a benign mixed sample, never undefined
//! behavior.
//!
//! Both knobs are runtime-adjustable atomics: `sample_every` (0 disables
//! tracing entirely) and `slow_threshold_us` (0 traces every sampled
//! request).

use crate::sync::atomic::{AtomicU64, Ordering};

/// Trace-ring configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Ring capacity: how many recent traces are retained.
    pub slots: usize,
    /// Trace every Nth sampled request; 0 disables tracing.
    pub sample_every: u64,
    /// Only trace requests at least this slow end-to-end (microseconds);
    /// 0 traces every sampled request.
    pub slow_threshold_us: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { slots: 64, sample_every: 1, slow_threshold_us: 0 }
    }
}

/// One traced request, as recorded into and read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSample {
    /// Request id assigned at the HTTP layer.
    pub request_id: u64,
    /// End-to-end handler latency in microseconds.
    pub total_us: u64,
    /// Session-store stage latency in microseconds.
    pub session_us: u64,
    /// Prediction stage latency in microseconds.
    pub predict_us: u64,
    /// Business-policy stage latency in microseconds.
    pub policy_us: u64,
    /// Session length (events) at prediction time.
    pub session_len: u64,
    /// Whether the depersonalised fallback produced the response.
    pub depersonalised: bool,
}

const FLAG_DEPERSONALISED: u64 = 1;

/// One ring slot. `busy` is the per-slot stripe lock (try-acquire only);
/// `version` brackets writes so readers can reject racing samples.
struct Slot {
    busy: AtomicU64,
    version: AtomicU64,
    request_id: AtomicU64,
    total_us: AtomicU64,
    session_us: AtomicU64,
    predict_us: AtomicU64,
    policy_us: AtomicU64,
    session_len: AtomicU64,
    flags: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            busy: AtomicU64::new(0),
            version: AtomicU64::new(0),
            request_id: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            session_us: AtomicU64::new(0),
            predict_us: AtomicU64::new(0),
            policy_us: AtomicU64::new(0),
            session_len: AtomicU64::new(0),
            flags: AtomicU64::new(0),
        }
    }
}

/// Lock-striped ring buffer of recent slow-request traces.
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Requests offered so far; drives sampling and slot rotation.
    seq: AtomicU64,
    sample_every: AtomicU64,
    slow_threshold_us: AtomicU64,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl TraceRing {
    /// Creates an empty ring per `config`.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            slots: (0..config.slots.max(1)).map(|_| Slot::new()).collect(),
            seq: AtomicU64::new(0),
            sample_every: AtomicU64::new(config.sample_every),
            slow_threshold_us: AtomicU64::new(config.slow_threshold_us),
        }
    }

    /// Adjusts the sampling knob at runtime (0 disables tracing).
    pub fn set_sample_every(&self, n: u64) {
        // ORDERING: standalone knob with no partner; `record` tolerates a
        // stale value (it only skews the sample rate for a few requests).
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Adjusts the slow threshold (microseconds) at runtime.
    pub fn set_slow_threshold_us(&self, us: u64) {
        // ORDERING: standalone knob with no partner; a stale threshold only
        // mis-filters a few samples.
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current `(sample_every, slow_threshold_us)` knob values.
    pub fn knobs(&self) -> (u64, u64) {
        // ORDERING: standalone knob reads, partnered with nothing; the
        // setters publish no data under these values.
        (
            self.sample_every.load(Ordering::Relaxed),
            self.slow_threshold_us.load(Ordering::Relaxed), // ORDERING: standalone knob read, partner: none
        )
    }

    /// Offers a finished request's trace to the ring. Lock-free and
    /// allocation-free: the sample is dropped (never waited for) when it
    /// loses the sampling dice roll, is under the slow threshold, or races
    /// another writer on its slot.
    #[inline]
    pub fn record(&self, sample: &TraceSample) {
        // ORDERING: standalone knob read (partner: none); staleness only
        // skews the sampling rate.
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return;
        }
        // ORDERING: ticket counter only (partner: none); slot data is
        // published by the version seqlock below, never by this counter.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if seq % every != 0 {
            return;
        }
        // ORDERING: standalone knob read (partner: none).
        if sample.total_us < self.slow_threshold_us.load(Ordering::Relaxed) {
            return;
        }
        let slot = &self.slots[(seq / every) as usize % self.slots.len()];
        // ORDERING: pairs with the `busy.store(0, Release)` below; winning
        // the slot happens-after the previous owner's writes, so two
        // writers can never interleave stores into one slot.
        if slot.busy.swap(1, Ordering::Acquire) == 1 {
            return;
        }
        slot.version.fetch_add(1, Ordering::SeqCst); // now odd: mid-write
        slot.request_id.store(sample.request_id, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.total_us.store(sample.total_us, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.session_us.store(sample.session_us, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.predict_us.store(sample.predict_us, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.policy_us.store(sample.policy_us, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.session_len.store(sample.session_len, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        let flags = if sample.depersonalised { FLAG_DEPERSONALISED } else { 0 };
        slot.flags.store(flags, Ordering::Release); // ORDERING: pairs with snapshot's Acquire load
        slot.version.fetch_add(1, Ordering::SeqCst); // even again: published
        // ORDERING: pairs with the next writer's `busy.swap(1, Acquire)`
        // above, handing the slot over with all our stores visible.
        slot.busy.store(0, Ordering::Release);
    }

    /// Snapshots the ring: all published samples, sorted slowest-first.
    /// Slots mid-write (odd version, or version changed while reading) are
    /// skipped rather than waited for.
    pub fn snapshot(&self) -> Vec<TraceSample> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let v1 = slot.version.load(Ordering::SeqCst);
            if v1 == 0 || v1 % 2 == 1 {
                continue;
            }
            let sample = TraceSample {
                // ORDERING: Acquire data loads pair with `record`'s Release
                // stores and keep the closing `version` re-check below from
                // being hoisted above them — the seqlock's read bracket.
                request_id: slot.request_id.load(Ordering::Acquire),
                total_us: slot.total_us.load(Ordering::Acquire), // ORDERING: see request_id above
                session_us: slot.session_us.load(Ordering::Acquire), // ORDERING: see request_id above
                predict_us: slot.predict_us.load(Ordering::Acquire), // ORDERING: see request_id above
                policy_us: slot.policy_us.load(Ordering::Acquire), // ORDERING: see request_id above
                session_len: slot.session_len.load(Ordering::Acquire), // ORDERING: see request_id above
                depersonalised: slot.flags.load(Ordering::Acquire) & FLAG_DEPERSONALISED != 0, // ORDERING: see request_id above
            };
            if slot.version.load(Ordering::SeqCst) == v1 {
                out.push(sample);
            }
        }
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us));
        out
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("slots", &self.slots.len())
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed)) // ORDERING: debug knob read, partner: none
            .field("slow_threshold_us", &self.slow_threshold_us.load(Ordering::Relaxed)) // ORDERING: debug knob read, partner: none
            .finish()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    fn sample(id: u64, total: u64) -> TraceSample {
        TraceSample {
            request_id: id,
            total_us: total,
            session_us: total / 4,
            predict_us: total / 2,
            policy_us: total / 8,
            session_len: 3,
            depersonalised: id % 2 == 0,
        }
    }

    #[test]
    fn snapshot_returns_samples_slowest_first() {
        let ring = TraceRing::new(TraceConfig { slots: 8, ..TraceConfig::default() });
        for (id, total) in [(1, 500), (2, 9_000), (3, 40)] {
            ring.record(&sample(id, total));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], sample(2, 9_000));
        assert_eq!(snap[1], sample(1, 500));
        assert_eq!(snap[2], sample(3, 40));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = TraceRing::new(TraceConfig { slots: 2, ..TraceConfig::default() });
        for id in 1..=5u64 {
            ring.record(&sample(id, id * 100));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        let ids: Vec<u64> = snap.iter().map(|s| s.request_id).collect();
        assert!(ids.contains(&4) && ids.contains(&5), "{ids:?}");
    }

    #[test]
    fn slow_threshold_filters_fast_requests() {
        let ring = TraceRing::new(TraceConfig {
            slots: 8,
            sample_every: 1,
            slow_threshold_us: 1_000,
        });
        ring.record(&sample(1, 999));
        ring.record(&sample(2, 1_000));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].request_id, 2);
    }

    #[test]
    fn sampling_knob_thins_and_zero_disables() {
        let ring = TraceRing::new(TraceConfig { slots: 64, sample_every: 4, ..TraceConfig::default() });
        for id in 0..16u64 {
            ring.record(&sample(id, 100));
        }
        assert_eq!(ring.snapshot().len(), 4);

        ring.set_sample_every(0);
        ring.record(&sample(99, 100));
        assert!(ring.snapshot().iter().all(|s| s.request_id != 99));
    }

    #[test]
    fn knobs_are_runtime_adjustable() {
        let ring = TraceRing::default();
        ring.set_sample_every(7);
        ring.set_slow_threshold_us(2_500);
        assert_eq!(ring.knobs(), (7, 2_500));
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear() {
        let ring = std::sync::Arc::new(TraceRing::new(TraceConfig {
            slots: 4,
            ..TraceConfig::default()
        }));
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // total == request_id so readers can detect mixing.
                    let id = t * 1_000_000 + i;
                    ring.record(&TraceSample {
                        request_id: id,
                        total_us: id,
                        session_us: id,
                        predict_us: id,
                        policy_us: id,
                        session_len: id,
                        depersonalised: false,
                    });
                }
            }));
        }
        for _ in 0..2 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    for s in ring.snapshot() {
                        assert_eq!(s.request_id, s.total_us, "torn sample: {s:?}");
                        assert_eq!(s.request_id, s.session_len);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
