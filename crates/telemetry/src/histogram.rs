//! Bounded log-linear latency histograms (HDR-style).
//!
//! The serving path needs latency percentiles that stay cheap forever: the
//! paper's Figure 3(b)/3(c) claims are 21-day, >1,000 rps operational
//! numbers, and a recorder that stores every raw sample grows without bound
//! under exactly that traffic. This histogram stores **counts per bucket**
//! instead: each power-of-two octave of the value range is subdivided into
//! `2^SUB_BITS = 32` linear sub-buckets, so memory is fixed
//! (`O(buckets × shards)`, independent of the number of observations) and
//! the relative error of any reported quantile is bounded by half a bucket
//! width — at most `2^-6 ≈ 1.6%`, documented as [`REL_ERROR_BOUND`] = 2%.
//! Values below `2^(SUB_BITS+1) = 64` are recorded exactly.
//!
//! Recording is wait-free and allocation-free: one relaxed `fetch_add` on
//! the bucket counter plus relaxed sum/min/max updates, on a per-worker
//! **shard** chosen thread-locally so concurrent recorders do not bounce a
//! shared cache line. Snapshots merge the shards; because every mutation is
//! an atomic read-modify-write, the merge is lossless — a property the loom
//! model in `tests/loom_telemetry.rs` checks over all interleavings.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::shard_slot;

/// Linear sub-buckets per power-of-two octave, as a bit count.
const SUB_BITS: u32 = 5;

/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

/// Documented bound on the relative error of quantile estimates: bucket
/// midpoints are within `2^-(SUB_BITS+1)` of any value in the bucket, i.e.
/// ~1.6%; we document (and property-test against) 2%.
pub const REL_ERROR_BOUND: f64 = 0.02;

/// Bucket index of `value` (values must already be clamped by the caller).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        // `value >= 32` has at most 58 leading zeros, so `octave >= 5`.
        let octave = 63 - value.leading_zeros();
        let sub = ((value >> (octave - SUB_BITS)) & (SUB - 1)) as usize;
        ((((octave - SUB_BITS) as usize) + 1) << SUB_BITS) + sub
    }
}

/// Inclusive lower bound of bucket `index`.
#[inline]
fn bucket_lower(index: usize) -> u64 {
    let block = (index >> SUB_BITS) as u32;
    let sub = (index as u64) & (SUB - 1);
    if block == 0 {
        sub
    } else {
        let octave = block - 1 + SUB_BITS;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

/// Exclusive upper bound of bucket `index`.
#[inline]
fn bucket_upper(index: usize) -> u64 {
    let block = (index >> SUB_BITS) as u32;
    if block == 0 {
        bucket_lower(index) + 1
    } else {
        bucket_lower(index) + (1u64 << (block - 1))
    }
}

/// Midpoint of bucket `index` — the value quantile estimates report.
#[inline]
fn bucket_mid(index: usize) -> u64 {
    let lower = bucket_lower(index);
    lower + (bucket_upper(index) - lower) / 2
}

/// Histogram configuration.
#[derive(Debug, Clone, Copy)]
pub struct HistogramConfig {
    /// Largest representable value in microseconds; larger observations are
    /// clamped into the top bucket. Memory scales with `log2(max_value_us)`.
    pub max_value_us: u64,
    /// Per-worker shards (rounded up to at least 1). More shards, less
    /// record-path cache-line sharing, proportionally more snapshot work.
    pub shards: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        // One hour in microseconds: far beyond any serving latency, and the
        // bucket table stays under 1,000 entries (~7.5 KiB per shard).
        Self { max_value_us: 3_600_000_000, shards: 8 }
    }
}

/// One shard: a bucket-count table plus sum/min/max, padded so two shards
/// never share a cache line.
#[repr(align(128))]
struct Shard {
    buckets: Box<[AtomicU64]>,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Shard {
    fn new(buckets: usize) -> Self {
        Self {
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A sharded, fixed-memory, mergeable log-linear histogram over `u64`
/// microsecond values. See the module docs for the design.
pub struct Histogram {
    shards: Box<[Shard]>,
    clamp: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(HistogramConfig::default())
    }
}

impl Histogram {
    /// Creates an empty histogram per `config`.
    pub fn new(config: HistogramConfig) -> Self {
        let clamp = config.max_value_us.max(1);
        let buckets = bucket_index(clamp) + 1;
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards).map(|_| Shard::new(buckets)).collect(),
            clamp,
        }
    }

    /// Records one observation in microseconds. Wait-free: four relaxed
    /// atomic RMWs on this worker's shard, no lock, no allocation.
    #[inline]
    pub fn record_us(&self, value_us: u64) {
        let v = value_us.min(self.clamp);
        let shard = &self.shards[shard_slot(self.shards.len())];
        // ORDERING: statistical counters with no partner; `snapshot` merges
        // racy per-shard reads and tolerates torn cross-field views (a
        // count/sum skew of a few in-flight observations).
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum_us.fetch_add(v, Ordering::Relaxed); // ORDERING: see buckets above
        shard.min_us.fetch_min(v, Ordering::Relaxed); // ORDERING: see buckets above
        shard.max_us.fetch_max(v, Ordering::Relaxed); // ORDERING: see buckets above
    }

    /// Records one observation given as a [`std::time::Duration`].
    #[inline]
    pub fn record(&self, value: std::time::Duration) {
        self.record_us(value.as_micros() as u64);
    }

    /// Records into an explicit shard — test hook for exercising the merge
    /// without spawning threads.
    #[doc(hidden)]
    pub fn record_us_in_shard(&self, shard: usize, value_us: u64) {
        let v = value_us.min(self.clamp);
        let shard = &self.shards[shard % self.shards.len()];
        // ORDERING: statistical counters with no partner; `snapshot` merges
        // racy per-shard reads and tolerates torn cross-field views (a
        // count/sum skew of a few in-flight observations).
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum_us.fetch_add(v, Ordering::Relaxed); // ORDERING: see buckets above
        shard.min_us.fetch_min(v, Ordering::Relaxed); // ORDERING: see buckets above
        shard.max_us.fetch_max(v, Ordering::Relaxed); // ORDERING: see buckets above
    }

    /// Number of shards (for tests and capacity accounting).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of buckets per shard (memory is `buckets × shards × 8` bytes
    /// plus three words per shard, independent of the observation count).
    pub fn buckets(&self) -> usize {
        self.shards[0].buckets.len()
    }

    /// Merges all shards into a point-in-time [`HistogramSnapshot`].
    ///
    /// Taken concurrently with recorders, the snapshot is a consistent
    /// *subset*: every counted observation was recorded, none is counted
    /// twice. After the recording threads are joined the snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.shards[0].buckets.len();
        let mut counts = vec![0u64; buckets].into_boxed_slice();
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (i, c) in shard.buckets.iter().enumerate() {
                // ORDERING: racy statistical read (partner: none); the
                // snapshot is advisory and tolerates in-flight updates.
                counts[i] += c.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum_us.load(Ordering::Relaxed)); // ORDERING: racy statistical read, partner: none
            min = min.min(shard.min_us.load(Ordering::Relaxed)); // ORDERING: racy statistical read, partner: none
            max = max.max(shard.max_us.load(Ordering::Relaxed)); // ORDERING: racy statistical read, partner: none
        }
        let count: u64 = counts.iter().sum();
        HistogramSnapshot { counts, count, sum_us: sum, min_us: min, max_us: max }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("shards", &self.shards.len())
            .field("buckets", &self.buckets())
            .field("clamp_us", &self.clamp)
            .finish()
    }
}

/// A merged point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Box<[u64]>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values in microseconds (wrapping beyond `u64`).
    pub sum_us: u64,
    /// Exact smallest observation (`u64::MAX` when empty).
    pub min_us: u64,
    /// Exact largest observation (0 when empty).
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_us / self.count
        }
    }

    /// Quantile estimate in microseconds, within [`REL_ERROR_BOUND`] of the
    /// exact order statistic (clamped to the observed `[min, max]` range).
    /// Uses the same rank convention as `serenade-metrics`'
    /// `LatencyRecorder`: the order statistic at `round(q × (n − 1))`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_mid(i).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Non-empty buckets as `(lower_us, upper_us, cumulative_count)` in
    /// ascending value order — the exposition renderer's input. Cumulative
    /// counts only change at these upper bounds, so a scraper interpolating
    /// between rendered bounds reconstructs the distribution exactly at
    /// bucket granularity.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cumulative += c;
                out.push((bucket_lower(i), bucket_upper(i), cumulative));
            }
        }
        out
    }

    /// Merges another snapshot (same bucket geometry) into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.wrapping_add(other.sum_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..64u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v, "value {v}");
            assert_eq!(bucket_upper(i), v + 1);
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_contain_their_values() {
        let mut prev_upper = 0;
        for i in 0..bucket_index(1 << 40) {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert_eq!(lo, prev_upper, "bucket {i} not contiguous");
            assert!(lo < hi);
            prev_upper = hi;
            // Round-trip: every bound maps back into its own bucket.
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn midpoint_relative_error_is_bounded() {
        let mut v = 1u64;
        while v < 1 << 40 {
            for probe in [v, v + v / 3, v + v / 2] {
                let mid = bucket_mid(bucket_index(probe));
                let err = (mid as f64 - probe as f64).abs() / probe as f64;
                assert!(
                    err <= REL_ERROR_BOUND,
                    "value {probe}: midpoint {mid} err {err:.4}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn snapshot_counts_and_extremes_are_exact() {
        let h = Histogram::new(HistogramConfig { max_value_us: 1 << 30, shards: 4 });
        for (i, v) in [3u64, 100, 7_500, 100, 1_000_000].into_iter().enumerate() {
            h.record_us_in_shard(i, v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_us, 3);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.sum_us, 3 + 100 + 7_500 + 100 + 1_000_000);
    }

    #[test]
    fn values_above_the_clamp_land_in_the_top_bucket() {
        let h = Histogram::new(HistogramConfig { max_value_us: 1_000, shards: 1 });
        h.record_us(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max_us <= 1_000);
        assert!(s.quantile_us(1.0) <= 1_000);
    }

    #[test]
    fn quantiles_track_a_uniform_ramp() {
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record_us(v);
        }
        let s = h.snapshot();
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.995, 9_950.0)] {
            let est = s.quantile_us(q) as f64;
            assert!(
                (est - exact).abs() <= exact * REL_ERROR_BOUND + 1.0,
                "q={q}: est {est} exact {exact}"
            );
        }
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::default();
        for v in [5u64, 5, 70, 70, 70, 9_000] {
            h.record_us(v);
        }
        let s = h.snapshot();
        let buckets = s.cumulative_buckets();
        assert_eq!(buckets.len(), 3);
        let mut prev = 0;
        for &(lo, hi, c) in &buckets {
            assert!(lo < hi);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(prev, s.count);
    }

    #[test]
    fn snapshot_merge_adds_distributions() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record_us(10);
        b.record_us(1_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.min_us, 10);
        assert_eq!(s.max_us, 1_000);
    }

    #[test]
    fn empty_snapshot_is_well_behaved() {
        let s = Histogram::default().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean_us(), 0);
        assert_eq!(s.quantile_us(0.9), 0);
        assert!(s.cumulative_buckets().is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::default());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_us(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
    }
}
