//! Facade over the concurrency primitives used on the telemetry hot path.
//!
//! [`crate::histogram`] and [`crate::trace`] take their atomics from here
//! instead of `std::sync::atomic` directly (enforced by the `xtask` lint):
//! normal builds re-export the real types at zero cost, `--features loom`
//! builds re-export the deterministic model-checker shims so record/snapshot
//! interleavings can be explored schedule-by-schedule inside `loom::model`.

/// Model-checked mode: every primitive routes through the `loom` shim.
#[cfg(feature = "loom")]
mod imp {
    /// Atomic types whose every operation is a model scheduling point.
    pub mod atomic {
        pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    }

    /// Deterministic shard choice for [`crate::histogram::Histogram`] and
    /// [`crate::trace::TraceRing`]: the model thread index.
    pub fn shard_slot(shards: usize) -> usize {
        loom::thread::current_index() % shards
    }
}

/// Production mode: zero-cost re-exports of the real primitives.
#[cfg(not(feature = "loom"))]
mod imp {
    /// Atomic types (the real ones).
    pub mod atomic {
        pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    }

    /// Shard choice for the sharded recorders: round-robin assignment at
    /// first use per thread, so workers spread evenly across shards
    /// regardless of how the OS hashes thread ids.
    pub fn shard_slot(shards: usize) -> usize {
        thread_local! {
            static SLOT: std::cell::OnceCell<usize> =
                const { std::cell::OnceCell::new() };
        }
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        SLOT.with(|c| {
            // ORDERING: round-robin ticket counter with no partner; shard
            // choice needs uniqueness, not ordering.
            *c.get_or_init(|| NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
        }) % shards
    }
}

pub use imp::*;
