//! Parser for the Prometheus text exposition format (version 0.0.4).
//!
//! Two consumers: the `/metrics` HTTP conformance test, which parses the
//! server's output and [`Exposition::validate`]s it (typed families, unique
//! series, monotone cumulative buckets, `+Inf` == `_count`); and
//! `loadgen`/`bench`, which scrape `/metrics` before and after a run and
//! reconstruct **server-side** latency percentiles from the cumulative
//! bucket counts to print next to the client-observed ones.
//!
//! Reconstruction is exact at the histogram's native bucket granularity:
//! the renderer emits both edges of every non-empty bucket, so a scraped
//! cumulative count only changes at rendered bounds and step interpolation
//! between them loses nothing (see `registry.rs`).

/// One parsed sample line: full sample name (`foo`, `foo_bucket`, …),
/// labels in appearance order, value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Full sample name as it appears on the line.
    pub name: String,
    /// Label pairs, including `le` for bucket samples.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ParsedSample {
    /// `true` if this sample carries every `(key, value)` pair in `subset`.
    pub fn labels_match(&self, subset: &[(&str, &str)]) -> bool {
        subset
            .iter()
            .all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }

    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: family types plus the flat sample list.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `(family name, kind)` pairs from `# TYPE` lines, in order.
    pub types: Vec<(String, String)>,
    /// All sample lines, in order.
    pub samples: Vec<ParsedSample>,
}

/// Parses exposition text. Unknown comment lines are ignored (per the
/// format); malformed sample lines are errors.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            match (parts.next(), parts.next()) {
                (Some(name), Some(kind)) => {
                    out.types.push((name.to_string(), kind.trim().to_string()));
                }
                _ => return Err(format!("line {}: malformed TYPE line", lineno + 1)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        out.samples.push(parse_sample(line, lineno + 1)?);
    }
    Ok(out)
}

fn parse_sample(line: &str, lineno: usize) -> Result<ParsedSample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: {line:?}");
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label set"))?;
            if close < brace {
                return Err(err("unclosed label set"));
            }
            (&line[..brace], Some((&line[brace + 1..close], &line[close + 1..])))
        }
        None => (line, None),
    };
    let (labels, value_part) = match rest {
        Some((label_text, value_text)) => (parse_labels(label_text, lineno)?, value_text),
        None => {
            let space = name_part.find(' ').ok_or_else(|| err("missing value"))?;
            return Ok(ParsedSample {
                name: name_part[..space].to_string(),
                labels: Vec::new(),
                value: parse_value(&name_part[space..], lineno)?,
            });
        }
    };
    Ok(ParsedSample {
        name: name_part.trim().to_string(),
        labels,
        value: parse_value(value_part, lineno)?,
    })
}

fn parse_value(text: &str, lineno: usize) -> Result<f64, String> {
    // A trailing timestamp (we never emit one) would be a second field.
    let mut fields = text.split_whitespace();
    let value = fields
        .next()
        .ok_or_else(|| format!("line {lineno}: missing value"))?;
    if value == "+Inf" {
        return Ok(f64::INFINITY);
    }
    value
        .parse::<f64>()
        .map_err(|e| format!("line {lineno}: bad value {value:?}: {e}"))
}

fn parse_labels(text: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for ch in chars.by_ref() {
            if ch == '=' {
                break;
            }
            key.push(ch);
        }
        if chars.next() != Some('"') {
            return Err(format!("line {lineno}: label value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => {
                        return Err(format!("line {lineno}: bad escape {other:?}"));
                    }
                },
                Some('"') => break,
                Some(ch) => value.push(ch),
                None => return Err(format!("line {lineno}: unterminated label value")),
            }
        }
        labels.push((key.trim().to_string(), value));
    }
}

impl Exposition {
    /// Declared kind of `family`, if a `# TYPE` line named it.
    pub fn kind(&self, family: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(n, _)| n == family)
            .map(|(_, k)| k.as_str())
    }

    /// First sample with this exact name whose labels include `subset`.
    pub fn value(&self, name: &str, subset: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels_match(subset))
            .map(|s| s.value)
    }

    /// Sum over all samples with this name whose labels include `subset`
    /// (e.g. a counter summed across pods).
    pub fn sum_values(&self, name: &str, subset: &[(&str, &str)]) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.labels_match(subset))
            .map(|s| s.value)
            .sum()
    }

    /// Reconstructs the histogram family `name` restricted to series whose
    /// labels include `subset`, merging matching series. Returns `None`
    /// when no `_bucket` samples match.
    pub fn histogram(&self, name: &str, subset: &[(&str, &str)]) -> Option<ScrapedHistogram> {
        let bucket_name = format!("{name}_bucket");
        // Group bucket samples into series by their non-`le` labels.
        let mut series: Vec<(Vec<(String, String)>, Vec<(f64, f64)>)> = Vec::new();
        for s in self
            .samples
            .iter()
            .filter(|s| s.name == bucket_name && s.labels_match(subset))
        {
            let le: f64 = match s.label("le") {
                Some("+Inf") => f64::INFINITY,
                Some(text) => text.parse().ok()?,
                None => return None,
            };
            let key: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            match series.iter_mut().find(|(k, _)| *k == key) {
                Some((_, bounds)) => bounds.push((le, s.value)),
                None => series.push((key, vec![(le, s.value)])),
            }
        }
        if series.is_empty() {
            return None;
        }
        for (_, bounds) in &mut series {
            bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        // Merge step functions: cumulative count of the union at bound `b`
        // is the sum over series of the cumulative at the largest `le <= b`.
        let mut all_bounds: Vec<f64> = series
            .iter()
            .flat_map(|(_, bounds)| bounds.iter().map(|&(le, _)| le))
            .collect();
        all_bounds.sort_by(|a, b| a.total_cmp(b));
        all_bounds.dedup();
        let bounds: Vec<(f64, f64)> = all_bounds
            .into_iter()
            .map(|b| {
                let cum: f64 = series
                    .iter()
                    .map(|(_, bounds)| {
                        bounds
                            .iter()
                            .rev()
                            .find(|&&(le, _)| le <= b)
                            .map(|&(_, c)| c)
                            .unwrap_or(0.0)
                    })
                    .sum();
                (b, cum)
            })
            .collect();
        let count = self.sum_values(&format!("{name}_count"), subset);
        let sum_seconds = self.sum_values(&format!("{name}_sum"), subset);
        Some(ScrapedHistogram { bounds, count, sum_seconds })
    }
}

/// A histogram reconstructed from scraped `_bucket`/`_sum`/`_count`
/// samples. Bounds are in seconds, as rendered.
#[derive(Debug, Clone)]
pub struct ScrapedHistogram {
    /// `(le_seconds, cumulative_count)` in ascending bound order, ending
    /// with the `+Inf` bound.
    pub bounds: Vec<(f64, f64)>,
    /// Total observations (`_count`).
    pub count: f64,
    /// Sum of observations in seconds (`_sum`).
    pub sum_seconds: f64,
}

impl ScrapedHistogram {
    /// Counts and sums minus `before`'s — the distribution observed
    /// *between* two scrapes. Bounds absent from one side contribute their
    /// step-interpolated cumulative value, which is exact for sparse
    /// renderings of the same underlying histogram.
    pub fn delta(&self, before: &ScrapedHistogram) -> ScrapedHistogram {
        let step = |bounds: &[(f64, f64)], b: f64| {
            bounds
                .iter()
                .rev()
                .find(|&&(le, _)| le <= b)
                .map(|&(_, c)| c)
                .unwrap_or(0.0)
        };
        let mut all: Vec<f64> = self
            .bounds
            .iter()
            .chain(before.bounds.iter())
            .map(|&(le, _)| le)
            .collect();
        all.sort_by(|a, b| a.total_cmp(b));
        all.dedup();
        let bounds = all
            .into_iter()
            .map(|b| {
                (b, (step(&self.bounds, b) - step(&before.bounds, b)).max(0.0))
            })
            .collect();
        ScrapedHistogram {
            bounds,
            count: (self.count - before.count).max(0.0),
            sum_seconds: self.sum_seconds - before.sum_seconds,
        }
    }

    /// Quantile estimate in microseconds, using the same rank convention as
    /// the server (`round(q × (n − 1))`) and the midpoint of the bracketing
    /// rendered bounds — the native bucket midpoint for sparse renderings.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count < 1.0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1.0)).round();
        let mut prev_bound = 0.0f64;
        for &(bound, cum) in &self.bounds {
            if cum > rank {
                let upper = if bound.is_finite() { bound } else { prev_bound };
                return (((prev_bound + upper) / 2.0) * 1e6).round() as u64;
            }
            prev_bound = if bound.is_finite() { bound } else { prev_bound };
        }
        (prev_bound * 1e6).round() as u64
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> u64 {
        if self.count < 1.0 {
            0
        } else {
            (self.sum_seconds / self.count * 1e6).round() as u64
        }
    }
}

impl Exposition {
    /// Conformance checks for the serving `/metrics` endpoint:
    /// every sample belongs to a `# TYPE`d family, every `(name, labels)`
    /// series is unique, histogram cumulative bucket counts are monotone
    /// non-decreasing in `le`, and the `+Inf` bucket equals `_count`.
    pub fn validate(&self) -> Result<(), String> {
        // Unique family names.
        for (i, (name, _)) in self.types.iter().enumerate() {
            if self.types[..i].iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate # TYPE for {name}"));
            }
        }
        // Every sample maps to a typed family.
        for s in &self.samples {
            if self.family_of(&s.name).is_none() {
                return Err(format!("sample {} has no # TYPE line", s.name));
            }
        }
        // Unique (name, labels) series.
        for (i, s) in self.samples.iter().enumerate() {
            let mut labels = s.labels.clone();
            labels.sort();
            if self.samples[..i].iter().any(|t| {
                let mut other = t.labels.clone();
                other.sort();
                t.name == s.name && other == labels
            }) {
                return Err(format!("duplicate series {} {:?}", s.name, s.labels));
            }
        }
        // Histogram bucket invariants, per series.
        for (family, kind) in &self.types {
            if kind != "histogram" {
                continue;
            }
            let mut seen_keys: Vec<Vec<(String, String)>> = Vec::new();
            let bucket_name = format!("{family}_bucket");
            for s in self.samples.iter().filter(|s| s.name == bucket_name) {
                let key: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                if seen_keys.contains(&key) {
                    continue;
                }
                seen_keys.push(key.clone());
                let subset: Vec<(&str, &str)> =
                    key.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let mut bounds: Vec<(f64, f64)> = Vec::new();
                for b in self
                    .samples
                    .iter()
                    .filter(|b| b.name == bucket_name && b.labels_match(&subset))
                {
                    let le = match b.label("le") {
                        Some("+Inf") => f64::INFINITY,
                        Some(text) => text
                            .parse()
                            .map_err(|e| format!("{family}: bad le bound: {e}"))?,
                        None => return Err(format!("{family}: bucket without le")),
                    };
                    bounds.push((le, b.value));
                }
                bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut prev = 0.0;
                for &(le, cum) in &bounds {
                    if cum < prev {
                        return Err(format!(
                            "{family}{subset:?}: cumulative count decreases at le={le}"
                        ));
                    }
                    prev = cum;
                }
                match bounds.last() {
                    Some(&(le, cum)) if le.is_infinite() => {
                        let count = self
                            .value(&format!("{family}_count"), &subset)
                            .ok_or_else(|| format!("{family}: missing _count"))?;
                        if cum != count {
                            return Err(format!(
                                "{family}{subset:?}: +Inf bucket {cum} != count {count}"
                            ));
                        }
                    }
                    _ => return Err(format!("{family}{subset:?}: missing +Inf bucket")),
                }
            }
        }
        Ok(())
    }

    /// The typed family a sample name belongs to, accounting for histogram
    /// `_bucket`/`_sum`/`_count` suffixes.
    fn family_of(&self, sample_name: &str) -> Option<&str> {
        if let Some((name, _)) = self.types.iter().find(|(n, _)| n == sample_name) {
            return Some(name);
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = sample_name.strip_suffix(suffix) {
                if let Some((name, kind)) = self.types.iter().find(|(n, _)| n == stem) {
                    if kind == "histogram" {
                        return Some(name);
                    }
                }
            }
        }
        None
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::histogram::{Histogram, HistogramConfig, REL_ERROR_BOUND};
    use crate::registry::Registry;

    #[test]
    fn parses_plain_and_labelled_samples() {
        let text = "\
# HELP up Whether up.
# TYPE up gauge
up 1
# TYPE req_total counter
req_total{pod=\"0\",route=\"/recommend\"} 42
";
        let exp = parse(text).unwrap();
        assert_eq!(exp.kind("up"), Some("gauge"));
        assert_eq!(exp.value("up", &[]), Some(1.0));
        assert_eq!(exp.value("req_total", &[("pod", "0")]), Some(42.0));
        assert_eq!(exp.value("req_total", &[("pod", "1")]), None);
        exp.validate().unwrap();
    }

    #[test]
    fn unescapes_label_values() {
        let text = "# TYPE c counter\nc{path=\"a\\\"b\\\\c\\nd\"} 1\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("# TYPE only_name\n").is_err());
        assert!(parse("# TYPE c counter\nc{broken 1\n").is_err());
        assert!(parse("# TYPE c counter\nc notanumber\n").is_err());
    }

    #[test]
    fn validate_catches_untyped_and_duplicate_series() {
        let untyped = parse("mystery 1\n").unwrap();
        assert!(untyped.validate().is_err());

        let dup = parse("# TYPE c counter\nc{a=\"1\"} 1\nc{a=\"1\"} 2\n").unwrap();
        assert!(dup.validate().is_err());
    }

    #[test]
    fn validate_catches_histogram_violations() {
        let nonmonotone = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"0.2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        assert!(parse(nonmonotone).unwrap().validate().is_err());

        let inf_mismatch = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 6
";
        assert!(parse(inf_mismatch).unwrap().validate().is_err());

        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_sum 1
h_count 5
";
        assert!(parse(no_inf).unwrap().validate().is_err());
    }

    /// End-to-end: render a histogram, scrape it back, and check the
    /// reconstructed quantiles agree with the server-side snapshot within
    /// the documented error bound.
    #[test]
    fn scraped_quantiles_match_native_snapshot() {
        let registry = Registry::new();
        let h = registry.histogram(
            "lat_seconds",
            "L.",
            &[("pod", "0")],
            HistogramConfig::default(),
        );
        for v in 1..=5_000u64 {
            h.record_us(v * 3);
        }
        let exp = parse(&registry.render()).unwrap();
        exp.validate().unwrap();
        let scraped = exp.histogram("lat_seconds", &[("pod", "0")]).unwrap();
        let native = h.snapshot();
        assert_eq!(scraped.count, native.count as f64);
        for q in [0.5, 0.75, 0.9, 0.995] {
            let s = scraped.quantile_us(q) as f64;
            let n = native.quantile_us(q) as f64;
            assert!(
                (s - n).abs() <= n * REL_ERROR_BOUND + 1.0,
                "q={q}: scraped {s} native {n}"
            );
        }
    }

    #[test]
    fn merged_series_and_deltas_reconstruct_quantiles() {
        let registry = Registry::new();
        let a = registry.histogram("lat_seconds", "L.", &[("pod", "0")], HistogramConfig::default());
        let b = registry.histogram("lat_seconds", "L.", &[("pod", "1")], HistogramConfig::default());
        for v in 1..=1_000u64 {
            a.record_us(v);
        }
        let before = parse(&registry.render()).unwrap().histogram("lat_seconds", &[]).unwrap();
        for v in 1_001..=2_000u64 {
            b.record_us(v);
        }
        let after = parse(&registry.render()).unwrap().histogram("lat_seconds", &[]).unwrap();
        assert_eq!(after.count, 2_000.0);
        // The delta isolates the second batch, recorded on the other pod.
        let delta = after.delta(&before);
        assert_eq!(delta.count, 1_000.0);
        let mid = delta.quantile_us(0.5) as f64;
        assert!((mid - 1_500.0).abs() <= 1_500.0 * REL_ERROR_BOUND + 1.0, "{mid}");
    }

    #[test]
    fn reference_histogram_parses() {
        let h = Histogram::default();
        h.record_us(125);
        let registry = Registry::new();
        registry.histogram_shared("h_seconds", "H.", &[], std::sync::Arc::new(h));
        let exp = parse(&registry.render()).unwrap();
        exp.validate().unwrap();
        assert_eq!(exp.value("h_seconds_count", &[]), Some(1.0));
    }
}
