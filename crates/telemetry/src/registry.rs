//! Named metric registry with Prometheus text exposition.
//!
//! A [`Registry`] owns the set of metric families the server exposes at
//! `GET /metrics`. Handles returned at registration time ([`Counter`],
//! [`Gauge`], [`crate::Histogram`]) are plain `Arc`s the hot path updates
//! with relaxed atomics — the registry's mutex is touched only at
//! registration and render time, never per request. Values that already
//! live elsewhere (index generation, live session counts, store eviction
//! counters) are registered as *polled* metrics: a closure sampled at
//! render time.
//!
//! [`Registry::render`] produces the Prometheus text exposition format
//! (version 0.0.4): one `# HELP`/`# TYPE` header per family followed by its
//! samples. Histograms are rendered **sparsely** — cumulative `le` bounds
//! are emitted only at the (lower, upper) edges of non-empty native
//! buckets, in seconds. The cumulative count is constant between rendered
//! bounds, so a scraper interpolating within the rendered grid recovers
//! quantiles at exactly the histogram's native resolution instead of being
//! limited by a fixed, coarse `le` schedule.

use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramConfig};
use crate::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        // ORDERING: monotonic counter with no partner; scrapes read a racy
        // snapshot and only need eventual visibility.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: monotonic counter with no partner (see `inc`).
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: racy counter read (partner: none); scrape-time skew of
        // in-flight increments is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // ORDERING: standalone gauge write with no partner; no data is
        // published under this value.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: racy gauge read, partner: none.
        self.0.load(Ordering::Relaxed)
    }
}

/// What a registered metric observes when the registry renders.
enum Observed {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Cumulative value sampled from elsewhere at render time.
    PolledCounter(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Instantaneous value sampled from elsewhere at render time.
    PolledGauge(Box<dyn Fn() -> u64 + Send + Sync>),
}

impl Observed {
    fn kind(&self) -> &'static str {
        match self {
            Observed::Counter(_) | Observed::PolledCounter(_) => "counter",
            Observed::Gauge(_) | Observed::PolledGauge(_) => "gauge",
            Observed::Histogram(_) => "histogram",
        }
    }
}

/// One labelled series within a family.
struct Metric {
    labels: Vec<(String, String)>,
    observed: Observed,
}

/// A metric family: one name/help/type, one or more labelled series.
struct Family {
    name: String,
    help: String,
    metrics: Vec<Metric>,
}

/// The server-wide metric registry. Cheap to share (`Arc<Registry>`);
/// registration and rendering lock a mutex, metric updates never do.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], observed: Observed) {
        let mut families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        let metric = Metric {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            observed,
        };
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            family.metrics.push(metric);
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                metrics: vec![metric],
            });
        }
    }

    /// Registers and returns a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, help, labels, Observed::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, help, labels, Observed::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a histogram series (values in microseconds,
    /// rendered in seconds).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        config: HistogramConfig,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(config));
        self.register(name, help, labels, Observed::Histogram(Arc::clone(&h)));
        h
    }

    /// Registers an already-shared counter under `name`.
    pub fn counter_shared(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) {
        self.register(name, help, labels, Observed::Counter(counter));
    }

    /// Registers an already-shared gauge under `name`.
    pub fn gauge_shared(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: Arc<Gauge>) {
        self.register(name, help, labels, Observed::Gauge(gauge));
    }

    /// Registers an already-shared histogram under `name`.
    pub fn histogram_shared(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.register(name, help, labels, Observed::Histogram(histogram));
    }

    /// Registers a counter whose value is sampled from `f` at render time.
    pub fn polled_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Observed::PolledCounter(Box::new(f)));
    }

    /// Registers a gauge whose value is sampled from `f` at render time.
    pub fn polled_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.register(name, help, labels, Observed::PolledGauge(Box::new(f)));
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        for family in families.iter() {
            let kind = match family.metrics.first() {
                Some(m) => m.observed.kind(),
                None => continue,
            };
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for metric in &family.metrics {
                render_metric(&mut out, &family.name, &metric.labels, &metric.observed);
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("Registry").field("families", &families.len()).finish()
    }
}

fn render_metric(out: &mut String, name: &str, labels: &[(String, String)], observed: &Observed) {
    match observed {
        Observed::Counter(c) => render_sample(out, name, labels, None, c.get() as f64),
        Observed::Gauge(g) => render_sample(out, name, labels, None, g.get() as f64),
        Observed::PolledCounter(f) | Observed::PolledGauge(f) => {
            render_sample(out, name, labels, None, f() as f64)
        }
        Observed::Histogram(h) => {
            let snap = h.snapshot();
            let bucket = format!("{name}_bucket");
            // Sparse cumulative bounds: both edges of every non-empty
            // native bucket. Adjacent non-empty buckets share an edge, so
            // duplicate (bound, cumulative) pairs are skipped.
            let mut prev_cum = 0u64;
            let mut prev_bound = u64::MAX;
            for (lower, upper, cum) in snap.cumulative_buckets() {
                if lower != prev_bound {
                    render_sample(out, &bucket, labels, Some(seconds(lower)), prev_cum as f64);
                }
                render_sample(out, &bucket, labels, Some(seconds(upper)), cum as f64);
                prev_cum = cum;
                prev_bound = upper;
            }
            render_sample(out, &bucket, labels, Some("+Inf".to_string()), snap.count as f64);
            render_sample(out, &format!("{name}_sum"), labels, None, snap.sum_us as f64 / 1e6);
            render_sample(out, &format!("{name}_count"), labels, None, snap.count as f64);
        }
    }
}

/// Formats a microsecond bound as seconds; Rust's shortest-roundtrip float
/// formatting keeps distinct bounds textually distinct.
fn seconds(us: u64) -> String {
    format!("{}", us as f64 / 1e6)
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<String>,
    value: f64,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            push_escaped(out, v);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(&le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    let _ = std::fmt::Write::write_fmt(out, format_args!("{value}"));
    out.push('\n');
}

/// Escapes a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn push_escaped(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let registry = Registry::new();
        let c = registry.counter("req_total", "Requests served.", &[("pod", "0")]);
        let g = registry.gauge("live", "Live sessions.", &[]);
        c.add(3);
        g.set(17);
        let text = registry.render();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{pod=\"0\"} 3"), "{text}");
        assert!(text.contains("# TYPE live gauge"), "{text}");
        assert!(text.contains("live 17"), "{text}");
    }

    #[test]
    fn same_family_gets_one_header_and_grouped_samples() {
        let registry = Registry::new();
        registry.counter("req_total", "Requests served.", &[("pod", "0")]).inc();
        registry.counter("req_total", "Requests served.", &[("pod", "1")]).add(2);
        let text = registry.render();
        assert_eq!(text.matches("# TYPE req_total").count(), 1, "{text}");
        assert!(text.contains("req_total{pod=\"0\"} 1"));
        assert!(text.contains("req_total{pod=\"1\"} 2"));
    }

    #[test]
    fn polled_metrics_sample_at_render_time() {
        let registry = Registry::new();
        let source = Arc::new(AtomicU64::new(5));
        let polled = Arc::clone(&source);
        registry.polled_gauge("generation", "Index generation.", &[], move || {
            polled.load(Ordering::Relaxed)
        });
        assert!(registry.render().contains("generation 5"));
        source.store(9, Ordering::Relaxed);
        assert!(registry.render().contains("generation 9"));
    }

    #[test]
    fn histogram_renders_monotone_buckets_ending_in_inf() {
        let registry = Registry::new();
        let h = registry.histogram(
            "latency_seconds",
            "Latency.",
            &[("stage", "total")],
            HistogramConfig::default(),
        );
        for v in [250u64, 250, 3_000, 90_000] {
            h.record_us(v);
        }
        let text = registry.render();
        assert!(text.contains("# TYPE latency_seconds histogram"), "{text}");
        assert!(text.contains("le=\"+Inf\"}"), "{text}");
        assert!(text.contains("latency_seconds_count{stage=\"total\"} 4"), "{text}");
        let mut prev = -1.0f64;
        for line in text.lines().filter(|l| l.contains("latency_seconds_bucket")) {
            let value: f64 = line.rsplit(' ').next().and_then(|v| v.parse().ok()).unwrap();
            assert!(value >= prev, "non-monotone cumulative counts: {text}");
            prev = value;
        }
        assert_eq!(prev, 4.0);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry.counter("c_total", "C.", &[("path", "a\"b\\c\nd")]).inc();
        let text = registry.render();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "{text}");
    }
}
