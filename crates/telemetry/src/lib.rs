//! # serenade-telemetry — production observability for the serving stack
//!
//! The paper's serving claims (Figure 3(b) p75/p90/p99.5 at >1,000 rps,
//! Figure 3(c)'s 21-day stability) are operational claims; this crate gives
//! the server the machinery to report them continuously and cheaply:
//!
//! * [`histogram`] — bounded log-linear (HDR-style) latency histograms:
//!   fixed memory, mergeable shards, relative error ≤ 2%, lock- and
//!   allocation-free recording via relaxed atomics.
//! * [`registry`] — named counters/gauges/histograms rendered in the
//!   Prometheus text exposition format for `GET /metrics`.
//! * [`trace`] — a lock-striped ring buffer of recent slow-request traces
//!   (per-stage timings, session length, depersonalised flag) behind
//!   sampling and threshold knobs, for `GET /debug/slow`.
//! * [`promtext`] — an exposition parser so load generators can scrape
//!   `/metrics` and report server-side percentiles next to client-side
//!   ones, and so tests can verify conformance.
//!
//! The crate is dependency-free; `--features loom` swaps the atomics for
//! the deterministic model-checker shims via the [`sync`] facade.

#![warn(missing_docs)]

pub mod histogram;
pub mod promtext;
pub mod registry;
pub mod sync;
pub mod trace;

pub use histogram::{Histogram, HistogramConfig, HistogramSnapshot, REL_ERROR_BOUND};
pub use promtext::{parse, Exposition, ParsedSample, ScrapedHistogram};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{TraceConfig, TraceRing, TraceSample};
