//! Click-log preprocessing, matching the pipeline of the session-rec
//! comparison studies the paper replicates.
//!
//! * **Inactivity splitting** — the retailrocket log identifies *visitors*,
//!   not sessions; the standard preprocessing cuts a visitor's click stream
//!   into sessions wherever two consecutive clicks are more than 30 minutes
//!   apart.
//! * **Minimum item support** — items clicked fewer than `n` times carry no
//!   collaborative signal and are dropped (session-rec uses `n = 5`).
//! * **Minimum session length** — sessions shorter than two clicks cannot be
//!   evaluated and are dropped.
//!
//! The filters interact (dropping items can shorten sessions below the
//! minimum), so [`preprocess`] iterates them to a fixed point, like the
//! reference pipeline.

use serenade_core::{Click, FxHashMap, ItemId, Timestamp};

/// Splits visitor click streams into sessions on inactivity gaps.
///
/// Clicks sharing a `session_id` (here: visitor id) are ordered by time; a
/// new session starts whenever the gap to the previous click exceeds
/// `max_gap_secs`. Returned clicks carry fresh, densely numbered session ids
/// (starting at 1) and are globally ordered by timestamp.
pub fn split_on_inactivity(clicks: &[Click], max_gap_secs: u64) -> Vec<Click> {
    let mut by_visitor: FxHashMap<u64, Vec<(Timestamp, ItemId)>> = FxHashMap::default();
    for c in clicks {
        by_visitor.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
    }
    let mut visitors: Vec<(u64, Vec<(Timestamp, ItemId)>)> = by_visitor.into_iter().collect();
    visitors.sort_unstable_by_key(|(v, _)| *v); // deterministic numbering

    let mut out = Vec::with_capacity(clicks.len());
    let mut next_session: u64 = 1;
    for (_, mut stream) in visitors {
        stream.sort_unstable();
        let mut prev_ts: Option<Timestamp> = None;
        for (ts, item) in stream {
            match prev_ts {
                Some(p) if ts.saturating_sub(p) <= max_gap_secs => {}
                Some(_) => next_session += 1,
                None => {}
            }
            out.push(Click::new(next_session, item, ts));
            prev_ts = Some(ts);
        }
        next_session += 1;
    }
    out.sort_unstable_by_key(|c| (c.timestamp, c.session_id, c.item_id));
    out
}

/// Drops clicks on items that occur fewer than `min_support` times.
pub fn filter_min_item_support(clicks: &[Click], min_support: usize) -> Vec<Click> {
    let mut counts: FxHashMap<ItemId, usize> = FxHashMap::default();
    for c in clicks {
        *counts.entry(c.item_id).or_insert(0) += 1;
    }
    clicks.iter().filter(|c| counts[&c.item_id] >= min_support).copied().collect()
}

/// Drops sessions with fewer than `min_len` clicks.
pub fn filter_min_session_length(clicks: &[Click], min_len: usize) -> Vec<Click> {
    let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
    for c in clicks {
        *counts.entry(c.session_id).or_insert(0) += 1;
    }
    clicks.iter().filter(|c| counts[&c.session_id] >= min_len).copied().collect()
}

/// The full session-rec preprocessing: inactivity splitting, then iterated
/// item-support and session-length filtering until stable.
pub fn preprocess(
    clicks: &[Click],
    max_gap_secs: u64,
    min_item_support: usize,
    min_session_len: usize,
) -> Vec<Click> {
    let mut current = split_on_inactivity(clicks, max_gap_secs);
    loop {
        let before = current.len();
        current = filter_min_item_support(&current, min_item_support);
        current = filter_min_session_length(&current, min_session_len);
        if current.len() == before {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessionize;

    #[test]
    fn gap_splitting_cuts_visitor_streams() {
        let clicks = vec![
            Click::new(9, 1, 0),
            Click::new(9, 2, 100),
            Click::new(9, 3, 100 + 1_801), // > 30 min after the previous click
            Click::new(9, 4, 100 + 1_900),
        ];
        let split = split_on_inactivity(&clicks, 1_800);
        let sessions = sessionize(&split);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].items, vec![1, 2]);
        assert_eq!(sessions[1].items, vec![3, 4]);
        // Fresh dense ids, not the visitor id.
        assert!(sessions.iter().all(|s| s.id != 9));
        assert_ne!(sessions[0].id, sessions[1].id);
    }

    #[test]
    fn gap_splitting_keeps_tight_streams_whole() {
        let clicks = vec![
            Click::new(1, 1, 0),
            Click::new(1, 2, 60),
            Click::new(1, 3, 120),
        ];
        let split = split_on_inactivity(&clicks, 1_800);
        assert_eq!(sessionize(&split).len(), 1);
    }

    #[test]
    fn distinct_visitors_never_merge() {
        let clicks = vec![Click::new(1, 1, 0), Click::new(2, 2, 1)];
        let split = split_on_inactivity(&clicks, 1_800);
        assert_eq!(sessionize(&split).len(), 2);
    }

    #[test]
    fn item_support_filter() {
        let clicks = vec![
            Click::new(1, 10, 0),
            Click::new(2, 10, 1),
            Click::new(3, 11, 2), // item 11 occurs once
        ];
        let filtered = filter_min_item_support(&clicks, 2);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|c| c.item_id == 10));
    }

    #[test]
    fn session_length_filter() {
        let clicks = vec![
            Click::new(1, 10, 0),
            Click::new(1, 11, 1),
            Click::new(2, 12, 2), // singleton session
        ];
        let filtered = filter_min_session_length(&clicks, 2);
        assert!(filtered.iter().all(|c| c.session_id == 1));
    }

    #[test]
    fn preprocess_reaches_fixed_point() {
        // Item 20 is rare; dropping it shortens session 2 below 2 clicks,
        // which in turn makes item 21 rare — the cascade must resolve.
        let clicks = vec![
            Click::new(1, 10, 0),
            Click::new(1, 11, 10),
            Click::new(2, 20, 20),
            Click::new(2, 21, 30),
            Click::new(3, 10, 40),
            Click::new(3, 11, 50),
            Click::new(4, 21, 60),
            Click::new(4, 10, 70),
        ];
        let out = preprocess(&clicks, 1_800, 2, 2);
        // Only items 10/11 survive, in the three sessions that keep ≥2 clicks.
        assert!(out.iter().all(|c| c.item_id == 10 || c.item_id == 11));
        let sessions = sessionize(&out);
        assert!(sessions.iter().all(|s| s.len() >= 2));
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(split_on_inactivity(&[], 1_800).is_empty());
        assert!(preprocess(&[], 1_800, 5, 2).is_empty());
    }
}
