//! Temporal train/test splits.
//!
//! The paper evaluates with day-based holdout: the index is built from
//! historical sessions and the *last day* (Figure 2, Section 5.1.2) or the
//! *subsequent day* (Section 5.1.1) is used as the test set. Test sessions
//! are filtered to items that occur in the training data (a recommender
//! cannot retrieve an item it has never seen — the paper handles genuinely
//! new items with a separate system, see Section 4.1), and must still
//! contain at least two clicks so there is something to predict.

use crate::session::{sessionize, Session};
use serenade_core::{Click, FxHashSet, ItemId};

/// A train/test split of a click log.
#[derive(Debug, Clone)]
pub struct EvaluationSplit {
    /// Training clicks (used to build indices / fit baselines).
    pub train: Vec<Click>,
    /// Held-out test sessions (chronological, item-filtered, length ≥ 2).
    pub test: Vec<Session>,
}

impl EvaluationSplit {
    /// Number of next-item prediction events in the test set
    /// (`Σ (len − 1)` over test sessions).
    pub fn num_prediction_events(&self) -> usize {
        self.test.iter().map(|s| s.len() - 1).sum()
    }
}

/// Splits on a timestamp: sessions *ending* strictly before `cutoff` train,
/// sessions ending at/after it test.
pub fn split_at(clicks: &[Click], cutoff: u64) -> EvaluationSplit {
    let sessions = sessionize(clicks);
    let mut test_ids: FxHashSet<u64> = FxHashSet::default();
    let mut test_sessions: Vec<Session> = Vec::new();
    for s in sessions {
        if s.end >= cutoff {
            test_ids.insert(s.id);
            test_sessions.push(s);
        }
    }
    // Training clicks keep their original tuples (timestamps included).
    let train: Vec<Click> =
        clicks.iter().filter(|c| !test_ids.contains(&c.session_id)).copied().collect();
    // Keep only test items known at training time, then re-check length.
    let known: FxHashSet<ItemId> = train.iter().map(|c| c.item_id).collect();
    let test = test_sessions
        .into_iter()
        .filter_map(|mut s| {
            s.items.retain(|i| known.contains(i));
            (s.items.len() >= 2).then_some(s)
        })
        .collect();
    EvaluationSplit { train, test }
}

/// Holds out the last `days` calendar days (relative to the maximum
/// timestamp) as the test set.
pub fn split_last_days(clicks: &[Click], days: u64) -> EvaluationSplit {
    let max_ts = clicks.iter().map(|c| c.timestamp).max().unwrap_or(0);
    let cutoff = max_ts.saturating_sub(days.saturating_mul(86_400)).saturating_add(1);
    split_at(clicks, cutoff)
}

/// Holds out the chronologically last `fraction` of sessions.
///
/// `fraction` must be in `(0, 1)`.
pub fn temporal_split(clicks: &[Click], fraction: f64) -> EvaluationSplit {
    assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
    let sessions = sessionize(clicks);
    if sessions.is_empty() {
        return EvaluationSplit { train: Vec::new(), test: Vec::new() };
    }
    let test_count = ((sessions.len() as f64 * fraction).round() as usize)
        .clamp(1, sessions.len().saturating_sub(1).max(1));
    let cutoff_idx = sessions.len() - test_count;
    let cutoff = sessions[cutoff_idx].end;
    split_at(clicks, cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks_over_days() -> Vec<Click> {
        // Day 0: sessions 1, 2; Day 1: session 3; Day 2: session 4.
        vec![
            Click::new(1, 10, 100),
            Click::new(1, 11, 110),
            Click::new(2, 10, 200),
            Click::new(2, 12, 210),
            Click::new(3, 11, 86_500),
            Click::new(3, 12, 86_510),
            Click::new(4, 10, 172_900),
            Click::new(4, 11, 172_910),
        ]
    }

    #[test]
    fn last_day_split_holds_out_final_day() {
        let split = split_last_days(&clicks_over_days(), 1);
        let train_sessions: FxHashSet<u64> = split.train.iter().map(|c| c.session_id).collect();
        assert_eq!(train_sessions.len(), 3);
        assert!(!train_sessions.contains(&4));
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.test[0].id, 4);
    }

    #[test]
    fn unseen_items_are_filtered_from_test() {
        let mut clicks = clicks_over_days();
        clicks.push(Click::new(4, 999, 172_920)); // item unseen in training
        let split = split_last_days(&clicks, 1);
        assert_eq!(split.test[0].items, vec![10, 11]);
    }

    #[test]
    fn too_short_test_sessions_are_dropped() {
        let mut clicks = clicks_over_days();
        // Session 5 on the last day has one known item only.
        clicks.push(Click::new(5, 10, 172_950));
        let split = split_last_days(&clicks, 1);
        assert!(split.test.iter().all(|s| s.id != 5));
    }

    #[test]
    fn prediction_events_count() {
        let split = split_last_days(&clicks_over_days(), 1);
        assert_eq!(split.num_prediction_events(), 1); // one 2-click session
    }

    #[test]
    fn temporal_split_respects_fraction() {
        let split = temporal_split(&clicks_over_days(), 0.25);
        // 4 sessions; 25% -> 1 test session, the most recent one.
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.test[0].id, 4);
        let train_ids: FxHashSet<u64> = split.train.iter().map(|c| c.session_id).collect();
        assert_eq!(train_ids.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn temporal_split_rejects_bad_fraction() {
        let _ = temporal_split(&clicks_over_days(), 1.5);
    }

    #[test]
    fn split_preserves_training_item_order() {
        let split = split_last_days(&clicks_over_days(), 1);
        // Session 1's items must stay [10, 11] in train after re-timestamping.
        let mut s1: Vec<(u64, u64)> = split
            .train
            .iter()
            .filter(|c| c.session_id == 1)
            .map(|c| (c.timestamp, c.item_id))
            .collect();
        s1.sort_unstable();
        let items: Vec<u64> = s1.into_iter().map(|(_, i)| i).collect();
        assert_eq!(items, vec![10, 11]);
    }
}
