//! Synthetic e-commerce clickstream generator.
//!
//! Substitutes the paper's proprietary bol.com datasets (and, in offline
//! environments, the public downloads). The generative model is designed so
//! that the *phenomena the paper's experiments depend on* are present:
//!
//! * **Session-length distribution** — lognormal, calibrated per dataset to
//!   the Table 1 percentiles (median < 5 clicks, long tail: p99 ≈ 19 clicks
//!   for the public sets, ≈ 38 for the bol.com sets).
//! * **Item popularity** — Zipf-distributed: a few blockbusters, a long tail
//!   of rare items. This is what makes idf weighting and index truncation
//!   matter.
//! * **Within-session coherence** — consecutive clicks stay in a topical
//!   neighbourhood (a random walk over nearby item ranks). This creates the
//!   co-occurrence structure that nearest-neighbour methods exploit; without
//!   it no recommender could beat popularity.
//! * **Popularity drift** — the item popularity ranking rotates slowly from
//!   day to day, so *recent* sessions are more predictive than old ones —
//!   the property that motivates VMIS-kNN's recency-based sampling.
//!
//! Item ids are popularity ranks passed through a fixed mixing permutation,
//! so that neighbouring ids carry no accidental meaning for consumers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serenade_core::Click;

use crate::Dataset;

/// Parameters of the synthetic clickstream generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset name (used in reports).
    pub name: String,
    /// Number of sessions to generate.
    pub num_sessions: usize,
    /// Catalogue size.
    pub num_items: usize,
    /// Number of calendar days the log spans.
    pub days: u64,
    /// Mean of `ln(session length)`.
    pub length_log_mean: f64,
    /// Standard deviation of `ln(session length)`.
    pub length_log_sigma: f64,
    /// Hard cap on session length.
    pub max_session_len: usize,
    /// Lower bound on session length (Table 1 has p25 = 2 everywhere:
    /// single-click visits are filtered out upstream).
    pub min_session_len: usize,
    /// Zipf popularity exponent (≈ 1.0 for web traffic).
    pub zipf_exponent: f64,
    /// Probability that the next click stays in the current topical
    /// neighbourhood instead of jumping to a fresh popular item.
    pub coherence: f64,
    /// Scale (in popularity ranks) of the topical neighbourhood.
    pub locality: usize,
    /// Fraction of the catalogue the popularity ranking rotates per day.
    pub drift_per_day: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Scales the dataset volume (sessions and catalogue) by `factor`,
    /// keeping the distributional shape. Useful to shrink the paper's
    /// 60m/90m/180m-click datasets to laptop size while preserving the
    /// relative proportions between them.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_sessions = ((self.num_sessions as f64 * factor).round() as usize).max(10);
        self.num_items = ((self.num_items as f64 * factor).round() as usize).max(10);
        self
    }

    /// With a different seed (e.g. for the five `ecom-1m` samples of §5.1.1).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn base(
        name: &str,
        num_sessions: usize,
        num_items: usize,
        days: u64,
        log_mean: f64,
        log_sigma: f64,
        max_len: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_sessions,
            num_items,
            days,
            length_log_mean: log_mean,
            length_log_sigma: log_sigma,
            max_session_len: max_len,
            min_session_len: 2,
            zipf_exponent: 1.05,
            coherence: 0.8,
            locality: 4,
            drift_per_day: 0.004,
            seed: 42,
        }
    }

    /// Analogue of `retailrocket` (Table 1: 87k clicks, 23k sessions, 21k
    /// items, 10 days, short sessions: p50 = 2, p99 = 19).
    pub fn retailrocket() -> Self {
        Self::base("retailrocket", 23_000, 21_000, 10, 2f64.ln(), 0.97, 80)
    }

    /// Analogue of `rsc15` (31.7M clicks, 8.0M sessions, 37k items, 181
    /// days; p50 = 3, p99 = 19). Defaults to 1/100 scale; pass a different
    /// factor to [`SyntheticConfig::scaled`] as needed.
    pub fn rsc15() -> Self {
        Self::base("rsc15", 80_000, 37_000, 181, 3f64.ln(), 0.79, 80)
    }

    /// Analogue of the proprietary `ecom-1m` (1.15M clicks, 214k sessions,
    /// 111k items, 30 days; p50 = 4, p99 = 28).
    pub fn ecom_1m() -> Self {
        Self::base("ecom-1m", 214_000, 111_000, 30, 4f64.ln(), 0.84, 150)
    }

    /// Analogue of `ecom-60m` (67M clicks, 10.7M sessions, 1.76M items, 29
    /// days; p99 = 36). Defaults to 1/50 scale.
    pub fn ecom_60m() -> Self {
        Self::base("ecom-60m", 214_000, 35_000, 29, 4f64.ln(), 0.94, 200)
    }

    /// Analogue of `ecom-90m` (90M clicks, 13.8M sessions, 2.26M items, 91
    /// days; p99 = 38). Defaults to 1/50 scale.
    pub fn ecom_90m() -> Self {
        Self::base("ecom-90m", 276_000, 45_000, 91, 4f64.ln(), 0.97, 200)
    }

    /// Analogue of `ecom-180m` (189M clicks, 28.8M sessions, 3.31M items, 91
    /// days; p99 = 39). Defaults to 1/50 scale.
    pub fn ecom_180m() -> Self {
        Self::base("ecom-180m", 576_000, 66_000, 91, 4f64.ln(), 0.98, 200)
    }

    /// A tiny dataset for unit tests and quickstart examples.
    pub fn tiny() -> Self {
        Self::base("tiny", 2_000, 500, 7, 4f64.ln(), 0.9, 50)
    }
}

/// Cumulative-weight Zipf sampler over ranks `0..n`.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Samples a rank in `0..n`; smaller ranks are more popular.
    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// Feistel-style mixing of a rank into an item id, so consumers cannot
/// exploit `rank ≈ id` accidentally. Deterministic and injective on `0..n`
/// via cycle-walking.
fn mix_rank(rank: usize, n: usize, seed: u64) -> u64 {
    debug_assert!(rank < n);
    // Power-of-two Feistel over 2^bits >= n, walk cycles until inside range.
    let bits = usize::BITS - (n - 1).leading_zeros().max(1);
    let half = bits.div_ceil(2);
    let mask = (1u64 << half) - 1;
    let mut x = rank as u64;
    loop {
        let (mut l, mut r) = (x >> half, x & mask);
        for round in 0..3u64 {
            let f = (r.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed.wrapping_add(round))
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let nl = r;
            r = (l ^ (f & mask)) & mask;
            l = nl;
        }
        x = (l << half) | r;
        if (x as usize) < n {
            return x;
        }
    }
}

/// Approximate standard-normal sample via the Box–Muller transform.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates a deterministic synthetic click log for `config`.
///
/// Sessions are spread over the configured number of days with increasing
/// timestamps. Within a session, clicks are ~30 seconds apart. The returned
/// clicks are ordered by timestamp.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    assert!(config.num_sessions > 0 && config.num_items > 0 && config.days > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = ZipfSampler::new(config.num_items, config.zipf_exponent);
    let n = config.num_items;
    let day_secs = 86_400u64;
    let sessions_per_day = config.num_sessions.div_ceil(config.days as usize).max(1);
    let drift_ranks = (config.drift_per_day * n as f64) as usize;

    let mut clicks = Vec::with_capacity(
        (config.num_sessions as f64 * config.length_log_mean.exp() * 1.3) as usize,
    );

    for s in 0..config.num_sessions {
        let day = (s / sessions_per_day) as u64;
        let day = day.min(config.days - 1);
        // Uniform second-of-day offset; capped so the session stays in-day.
        let offset = rng.gen_range(0..day_secs - 3_600);
        let start = day * day_secs + offset;

        // Lognormal session length, clamped to [1, max].
        let z = sample_standard_normal(&mut rng);
        let len = (config.length_log_mean + config.length_log_sigma * z).exp().round() as i64;
        let len = len.clamp(config.min_session_len.max(1) as i64, config.max_session_len as i64)
            as usize;

        // Popularity drift: today's rank r maps to base rank (r + day·drift).
        let drift = (day as usize).wrapping_mul(drift_ranks) % n;

        let mut anchor = zipf.sample(&mut rng);
        let session_id = s as u64 + 1;
        for c in 0..len {
            let rank = if c == 0 || rng.gen::<f64>() >= config.coherence {
                // Fresh draw from the (drifted) popularity distribution.
                anchor = zipf.sample(&mut rng);
                anchor
            } else {
                // Stay in the topical neighbourhood: geometric step around
                // the anchor, occasionally re-anchoring on the visited item.
                let step = sample_geometric(&mut rng, config.locality);
                let sign: bool = rng.gen();
                let next = if sign {
                    (anchor + step) % n
                } else {
                    (anchor + n - (step % n)) % n
                };
                if rng.gen::<f64>() < 0.25 {
                    anchor = next;
                }
                next
            };
            let drifted = (rank + drift) % n;
            let item = mix_rank(drifted, n, config.seed ^ 0xA5A5_5A5A);
            let jitter = rng.gen_range(0..10);
            clicks.push(Click::new(session_id, item, start + (c as u64) * 30 + jitter));
        }
    }
    clicks.sort_unstable_by_key(|c| (c.timestamp, c.session_id, c.item_id));
    Dataset::new(config.name.clone(), clicks)
}

/// Geometric step with mean ≈ `scale`, at least 1.
fn sample_geometric(rng: &mut StdRng, scale: usize) -> usize {
    let p = 1.0 / scale.max(1) as f64;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((u.ln() / (1.0 - p).max(f64::EPSILON).ln()).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.clicks, b.clicks);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::tiny());
        let b = generate(&SyntheticConfig::tiny().with_seed(7));
        assert_ne!(a.clicks, b.clicks);
    }

    #[test]
    fn respects_catalogue_and_session_counts() {
        let cfg = SyntheticConfig::tiny();
        let d = generate(&cfg);
        let stats = DatasetStats::from_clicks("t", &d.clicks);
        assert_eq!(stats.sessions, cfg.num_sessions);
        assert!(stats.items <= cfg.num_items);
        assert!(stats.days <= cfg.days);
        assert!(d.clicks.iter().all(|c| c.session_id >= 1));
    }

    #[test]
    fn session_length_percentiles_are_calibrated() {
        // The ecom-style config must land near Table 1: p50 ≈ 4, p75 ≈ 7.
        let cfg = SyntheticConfig::ecom_1m().scaled(0.05);
        let stats = generate(&cfg).stats();
        assert!(
            (3.0..=5.0).contains(&stats.clicks_per_session_p50),
            "p50 = {}",
            stats.clicks_per_session_p50
        );
        assert!(
            (5.0..=9.0).contains(&stats.clicks_per_session_p75),
            "p75 = {}",
            stats.clicks_per_session_p75
        );
        assert!(
            stats.clicks_per_session_p99 >= 15.0,
            "p99 = {}",
            stats.clicks_per_session_p99
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let d = generate(&SyntheticConfig::tiny());
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for c in &d.clicks {
            *counts.entry(c.item_id).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = freqs.iter().sum();
        let top10: usize = freqs.iter().take(freqs.len() / 10).sum();
        assert!(
            top10 as f64 > 0.3 * total as f64,
            "top-10% items should own >30% of clicks, got {:.2}%",
            100.0 * top10 as f64 / total as f64
        );
    }

    #[test]
    fn clicks_are_time_ordered() {
        let d = generate(&SyntheticConfig::tiny());
        assert!(d.clicks.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn mix_rank_is_injective() {
        let n = 1000;
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            let id = mix_rank(r, n, 99);
            assert!((id as usize) < n);
            assert!(seen.insert(id), "collision at rank {r}");
        }
    }

    #[test]
    fn scaled_shrinks_volume() {
        let cfg = SyntheticConfig::ecom_1m().scaled(0.01);
        assert_eq!(cfg.num_sessions, 2_140);
        assert_eq!(cfg.num_items, 1_110);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = SyntheticConfig::tiny().scaled(0.0);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-10 ranks should receive well over a third of draws at s=1.2.
        assert!(low > 3_500, "low-rank draws: {low}");
    }
}
