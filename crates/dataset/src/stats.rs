//! Dataset statistics — the quantities reported in Table 1 of the paper.

use crate::session::sessionize;
use serenade_core::{Click, FxHashSet};

/// The statistics of one dataset row in Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total number of clicks.
    pub clicks: usize,
    /// Number of distinct sessions.
    pub sessions: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Number of calendar days spanned (`1 + (max_ts − min_ts) / 86_400`).
    pub days: u64,
    /// 25th percentile of clicks per session.
    pub clicks_per_session_p25: f64,
    /// Median clicks per session.
    pub clicks_per_session_p50: f64,
    /// 75th percentile of clicks per session.
    pub clicks_per_session_p75: f64,
    /// 99th percentile of clicks per session.
    pub clicks_per_session_p99: f64,
}

impl DatasetStats {
    /// Computes statistics from a raw click log.
    pub fn from_clicks(name: &str, clicks: &[Click]) -> Self {
        let sessions = sessionize(clicks);
        let items: FxHashSet<u64> = clicks.iter().map(|c| c.item_id).collect();
        let mut lengths: Vec<f64> = sessions.iter().map(|s| s.len() as f64).collect();
        lengths.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (min_ts, max_ts) = clicks.iter().fold((u64::MAX, 0u64), |(lo, hi), c| {
            (lo.min(c.timestamp), hi.max(c.timestamp))
        });
        let days = if clicks.is_empty() { 0 } else { 1 + (max_ts - min_ts) / 86_400 };
        Self {
            name: name.to_string(),
            clicks: clicks.len(),
            sessions: sessions.len(),
            items: items.len(),
            days,
            clicks_per_session_p25: percentile(&lengths, 0.25),
            clicks_per_session_p50: percentile(&lengths, 0.50),
            clicks_per_session_p75: percentile(&lengths, 0.75),
            clicks_per_session_p99: percentile(&lengths, 0.99),
        }
    }
}

/// Percentile of a **sorted** slice using nearest-rank interpolation.
///
/// `q` is in `[0, 1]`. Returns `NaN` for an empty slice. Linear interpolation
/// between closest ranks (the same convention as numpy's default).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_known_values() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.25), 2.0);
        // Interpolated.
        let w = [1.0, 2.0];
        assert!((percentile(&w, 0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_nan() {
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn percentile_of_singleton() {
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn stats_count_clicks_sessions_items_days() {
        let clicks = vec![
            Click::new(1, 10, 0),
            Click::new(1, 11, 10),
            Click::new(2, 10, 86_400),
            Click::new(2, 12, 86_410),
            Click::new(2, 13, 86_420),
        ];
        let s = DatasetStats::from_clicks("toy", &clicks);
        assert_eq!(s.clicks, 5);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.items, 4);
        assert_eq!(s.days, 2);
        assert_eq!(s.clicks_per_session_p50, 2.5);
        assert_eq!(s.clicks_per_session_p25, 2.25);
    }

    #[test]
    fn stats_of_empty_dataset() {
        let s = DatasetStats::from_clicks("empty", &[]);
        assert_eq!(s.clicks, 0);
        assert_eq!(s.sessions, 0);
        assert_eq!(s.days, 0);
        assert!(s.clicks_per_session_p50.is_nan());
    }
}
