//! # serenade-dataset — clickstream datasets for Serenade experiments
//!
//! The paper evaluates on six e-commerce click datasets (Table 1): the public
//! `retailrocket` and `rsc15` sets and four proprietary bol.com samples
//! (`ecom-1m` … `ecom-180m`). Every dataset is a list of
//! `(session_id, item_id, timestamp)` tuples.
//!
//! This crate provides:
//!
//! * [`loader`] — CSV loaders for the public dataset formats (used verbatim
//!   when the real files are available on disk);
//! * [`synthetic`] — a statistically calibrated synthetic clickstream
//!   generator that substitutes the proprietary (and, offline, the public)
//!   datasets: session-length distribution matched to the Table 1
//!   percentiles, Zipf item popularity, within-session topical coherence and
//!   day-level popularity drift (so that recency sampling matters, as it does
//!   on the real platform);
//! * [`mod@preprocess`] — inactivity-gap splitting and support filters (the
//!   session-rec preprocessing pipeline);
//! * [`session`] — sessionization of a click log;
//! * [`split`] — temporal train/test splits (the paper holds out the last day);
//! * [`stats`] — the Table 1 statistics (clicks, sessions, items, days,
//!   clicks-per-session percentiles).

#![warn(missing_docs)]

pub mod loader;
pub mod preprocess;
pub mod session;
pub mod split;
pub mod stats;
pub mod synthetic;

pub use loader::{CsvFormat, LoaderError, TimeFormat};
pub use preprocess::{preprocess, split_on_inactivity};
pub use session::{sessionize, Session};
pub use split::{split_last_days, temporal_split, EvaluationSplit};
pub use stats::{percentile, DatasetStats};
pub use synthetic::{generate, SyntheticConfig};

use serenade_core::Click;

/// A named click log.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `ecom-1m`).
    pub name: String,
    /// The raw click tuples.
    pub clicks: Vec<Click>,
}

impl Dataset {
    /// Creates a dataset from parts.
    pub fn new(name: impl Into<String>, clicks: Vec<Click>) -> Self {
        Self { name: name.into(), clicks }
    }

    /// Computes the Table 1 statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::from_clicks(&self.name, &self.clicks)
    }
}
