//! CSV loaders for public clickstream datasets.
//!
//! When the real `rsc15` (RecSys Challenge 2015 / yoochoose) or
//! `retailrocket` files are available on disk, these loaders ingest them
//! unchanged. The parser is hand-rolled (no CSV dependency): the formats are
//! simple delimiter-separated files without quoting.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use serenade_core::Click;

/// How the time column is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeFormat {
    /// Unix epoch seconds (integer or float).
    UnixSeconds,
    /// Unix epoch milliseconds (retailrocket).
    UnixMillis,
    /// ISO-8601 UTC, e.g. `2014-04-07T10:51:09.277Z` (rsc15).
    Iso8601,
}

/// Describes a delimiter-separated click-log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvFormat {
    /// Field delimiter.
    pub delimiter: u8,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
    /// Zero-based column index of the session id.
    pub session_col: usize,
    /// Zero-based column index of the item id.
    pub item_col: usize,
    /// Zero-based column index of the timestamp.
    pub time_col: usize,
    /// Timestamp encoding.
    pub time_format: TimeFormat,
}

impl CsvFormat {
    /// The canonical format produced by this repository's tools:
    /// `session_id,item_id,unix_seconds` with a header.
    pub fn canonical() -> Self {
        Self {
            delimiter: b',',
            has_header: true,
            session_col: 0,
            item_col: 1,
            time_col: 2,
            time_format: TimeFormat::UnixSeconds,
        }
    }

    /// `yoochoose-clicks.dat` of rsc15: `session,iso-timestamp,item,category`.
    pub fn rsc15() -> Self {
        Self {
            delimiter: b',',
            has_header: false,
            session_col: 0,
            item_col: 2,
            time_col: 1,
            time_format: TimeFormat::Iso8601,
        }
    }

    /// `events.csv` of retailrocket: `timestamp,visitorid,event,itemid,...`
    /// (the visitor id is used as the session id; the paper's preprocessing
    /// additionally splits visits on inactivity, which callers can apply on
    /// the sessionized output).
    pub fn retailrocket() -> Self {
        Self {
            delimiter: b',',
            has_header: true,
            session_col: 1,
            item_col: 3,
            time_col: 0,
            time_format: TimeFormat::UnixMillis,
        }
    }
}

/// Errors raised while loading a click log.
#[derive(Debug)]
pub enum LoaderError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line; carries the 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LoaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderError::Io(e) => write!(f, "i/o error: {e}"),
            LoaderError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LoaderError {}

impl From<std::io::Error> for LoaderError {
    fn from(e: std::io::Error) -> Self {
        LoaderError::Io(e)
    }
}

/// Loads clicks from a file path.
pub fn load_clicks_from_path(
    path: impl AsRef<Path>,
    format: &CsvFormat,
) -> Result<Vec<Click>, LoaderError> {
    load_clicks(File::open(path)?, format)
}

/// Loads clicks from any reader.
pub fn load_clicks(reader: impl Read, format: &CsvFormat) -> Result<Vec<Click>, LoaderError> {
    let mut clicks = Vec::new();
    let mut line_buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    let needed = format.session_col.max(format.item_col).max(format.time_col);

    while reader.read_line(&mut line_buf)? != 0 {
        line_no += 1;
        let line = line_buf.trim_end_matches(['\n', '\r']);
        let skip = line.is_empty() || (line_no == 1 && format.has_header);
        if !skip {
            let mut fields = line.split(format.delimiter as char);
            let mut session = None;
            let mut item = None;
            let mut time = None;
            for (idx, field) in fields.by_ref().enumerate() {
                if idx == format.session_col {
                    session = Some(field);
                }
                if idx == format.item_col {
                    item = Some(field);
                }
                if idx == format.time_col {
                    time = Some(field);
                }
                if idx >= needed {
                    break;
                }
            }
            let (Some(session), Some(item), Some(time)) = (session, item, time) else {
                return Err(LoaderError::Parse {
                    line: line_no,
                    message: format!("expected at least {} fields", needed + 1),
                });
            };
            let parse_u64 = |what: &str, s: &str| {
                s.trim().parse::<u64>().map_err(|e| LoaderError::Parse {
                    line: line_no,
                    message: format!("invalid {what} {s:?}: {e}"),
                })
            };
            let timestamp = parse_timestamp(time, format.time_format).map_err(|message| {
                LoaderError::Parse { line: line_no, message }
            })?;
            clicks.push(Click::new(
                parse_u64("session id", session)?,
                parse_u64("item id", item)?,
                timestamp,
            ));
        }
        line_buf.clear();
    }
    Ok(clicks)
}

/// Writes clicks in the canonical CSV format.
pub fn write_canonical(clicks: &[Click], mut writer: impl std::io::Write) -> std::io::Result<()> {
    writeln!(writer, "session_id,item_id,timestamp")?;
    for c in clicks {
        writeln!(writer, "{},{},{}", c.session_id, c.item_id, c.timestamp)?;
    }
    Ok(())
}

fn parse_timestamp(field: &str, format: TimeFormat) -> Result<u64, String> {
    let field = field.trim();
    match format {
        TimeFormat::UnixSeconds => field
            .parse::<f64>()
            .map(|f| f as u64)
            .map_err(|e| format!("invalid unix timestamp {field:?}: {e}")),
        TimeFormat::UnixMillis => field
            .parse::<u64>()
            .map(|ms| ms / 1_000)
            .map_err(|e| format!("invalid millisecond timestamp {field:?}: {e}")),
        TimeFormat::Iso8601 => parse_iso8601(field),
    }
}

/// Parses `YYYY-MM-DDTHH:MM:SS[.fff][Z]` into Unix seconds (UTC assumed).
fn parse_iso8601(s: &str) -> Result<u64, String> {
    let err = || format!("invalid ISO-8601 timestamp {s:?}");
    let bytes = s.as_bytes();
    if bytes.len() < 19 || bytes[4] != b'-' || bytes[7] != b'-' || bytes[10] != b'T' {
        return Err(err());
    }
    let num = |range: std::ops::Range<usize>| -> Result<u64, String> {
        s.get(range).ok_or_else(err)?.parse::<u64>().map_err(|_| err())
    };
    let (year, month, day) = (num(0..4)?, num(5..7)?, num(8..10)?);
    let (hour, minute, second) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if !(1970..=9999).contains(&year)
        || !(1..=12).contains(&month)
        || !(1..=31).contains(&day)
        || hour > 23
        || minute > 59
        || second > 60
    {
        return Err(err());
    }
    Ok(days_from_epoch(year, month, day) * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// Days between 1970-01-01 and the given civil date (proleptic Gregorian,
/// Howard Hinnant's algorithm).
fn days_from_epoch(year: u64, month: u64, day: u64) -> u64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = y / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_roundtrip() {
        let clicks = vec![Click::new(1, 10, 100), Click::new(2, 20, 200)];
        let mut buf = Vec::new();
        write_canonical(&clicks, &mut buf).unwrap();
        let loaded = load_clicks(&buf[..], &CsvFormat::canonical()).unwrap();
        assert_eq!(loaded, clicks);
    }

    #[test]
    fn rsc15_format_parses() {
        let data = "1,2014-04-07T10:51:09.277Z,214536502,0\n\
                    1,2014-04-07T10:54:09.868Z,214536500,0\n";
        let clicks = load_clicks(data.as_bytes(), &CsvFormat::rsc15()).unwrap();
        assert_eq!(clicks.len(), 2);
        assert_eq!(clicks[0].session_id, 1);
        assert_eq!(clicks[0].item_id, 214536502);
        assert_eq!(clicks[1].timestamp - clicks[0].timestamp, 180);
    }

    #[test]
    fn retailrocket_format_parses() {
        let data = "timestamp,visitorid,event,itemid,transactionid\n\
                    1433221332117,257597,view,355908,\n";
        let clicks = load_clicks(data.as_bytes(), &CsvFormat::retailrocket()).unwrap();
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].session_id, 257597);
        assert_eq!(clicks[0].item_id, 355908);
        assert_eq!(clicks[0].timestamp, 1433221332);
    }

    #[test]
    fn iso8601_reference_values() {
        assert_eq!(parse_iso8601("1970-01-01T00:00:00Z").unwrap(), 0);
        assert_eq!(parse_iso8601("1970-01-02T00:00:01Z").unwrap(), 86_401);
        // 2014-04-07T10:51:09Z == 1396867869 (verified against `date -u`).
        assert_eq!(parse_iso8601("2014-04-07T10:51:09.277Z").unwrap(), 1_396_867_869);
        // Leap-year boundary: 2016-02-29 is valid.
        assert_eq!(
            parse_iso8601("2016-03-01T00:00:00Z").unwrap()
                - parse_iso8601("2016-02-29T00:00:00Z").unwrap(),
            86_400
        );
    }

    #[test]
    fn malformed_lines_report_position() {
        let data = "session_id,item_id,timestamp\n1,abc,100\n";
        let err = load_clicks(data.as_bytes(), &CsvFormat::canonical()).unwrap_err();
        match err {
            LoaderError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("item id"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_fields_are_rejected() {
        let data = "session_id,item_id,timestamp\n1,100\n";
        let err = load_clicks(data.as_bytes(), &CsvFormat::canonical()).unwrap_err();
        assert!(matches!(err, LoaderError::Parse { line: 2, .. }));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let data = "session_id,item_id,timestamp\n\n1,2,3\n\n";
        let clicks = load_clicks(data.as_bytes(), &CsvFormat::canonical()).unwrap();
        assert_eq!(clicks.len(), 1);
    }

    #[test]
    fn invalid_iso_timestamps_are_rejected() {
        for bad in ["2014-13-07T10:51:09Z", "2014-04-07 10:51:09", "garbage", "2014-04-07T10:51"] {
            assert!(parse_iso8601(bad).is_err(), "{bad} should fail");
        }
    }
}
