//! Sessionization: grouping a click log into chronologically ordered sessions.

use serenade_core::{Click, FxHashMap, ItemId, Timestamp};

/// A user session: the chronological item sequence of one session id.
///
/// Unlike the deduplicated per-session item lists inside the index, a
/// `Session` keeps repeated interactions — the evaluation protocol feeds the
/// raw sequence to the recommender exactly as the shop frontend would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// External session identifier from the click log.
    pub id: u64,
    /// Items in click order (repeats preserved).
    pub items: Vec<ItemId>,
    /// Timestamp of the first click.
    pub start: Timestamp,
    /// Timestamp of the last click (the session timestamp used by the index).
    pub end: Timestamp,
}

impl Session {
    /// Number of clicks in the session.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the session has no clicks.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Groups clicks into sessions ordered by ascending end timestamp
/// (ties broken by session id). Clicks within a session are ordered by
/// timestamp (ties by item id, for determinism).
pub fn sessionize(clicks: &[Click]) -> Vec<Session> {
    let mut by_session: FxHashMap<u64, Vec<(Timestamp, ItemId)>> = FxHashMap::default();
    for c in clicks {
        by_session.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
    }
    let mut sessions: Vec<Session> = by_session
        .into_iter()
        .map(|(id, mut clicks)| {
            clicks.sort_unstable();
            let start = clicks.first().map(|&(t, _)| t).unwrap_or(0);
            let end = clicks.last().map(|&(t, _)| t).unwrap_or(0);
            Session { id, items: clicks.into_iter().map(|(_, i)| i).collect(), start, end }
        })
        .collect();
    sessions.sort_unstable_by_key(|s| (s.end, s.id));
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessionize_groups_and_orders() {
        let clicks = vec![
            Click::new(2, 20, 200),
            Click::new(1, 11, 101),
            Click::new(1, 10, 100),
            Click::new(2, 21, 210),
        ];
        let sessions = sessionize(&clicks);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].id, 1);
        assert_eq!(sessions[0].items, vec![10, 11]);
        assert_eq!(sessions[0].start, 100);
        assert_eq!(sessions[0].end, 101);
        assert_eq!(sessions[1].id, 2);
        assert_eq!(sessions[1].items, vec![20, 21]);
    }

    #[test]
    fn repeats_are_preserved() {
        let clicks = vec![
            Click::new(1, 5, 1),
            Click::new(1, 5, 2),
            Click::new(1, 6, 3),
            Click::new(1, 5, 4),
        ];
        let sessions = sessionize(&clicks);
        assert_eq!(sessions[0].items, vec![5, 5, 6, 5]);
        assert_eq!(sessions[0].len(), 4);
        assert!(!sessions[0].is_empty());
    }

    #[test]
    fn sessions_sorted_by_end_timestamp() {
        let clicks = vec![
            Click::new(9, 1, 500), // ends at 500
            Click::new(7, 2, 100),
            Click::new(7, 3, 600), // ends at 600
        ];
        let sessions = sessionize(&clicks);
        assert_eq!(sessions[0].id, 9);
        assert_eq!(sessions[1].id, 7);
    }

    #[test]
    fn empty_input_yields_no_sessions() {
        assert!(sessionize(&[]).is_empty());
    }
}
