//! Rust behavioural analogues of the alternative VMIS-kNN implementations
//! compared in Figure 3(a), top.
//!
//! The paper benchmarks its Rust implementation against VS-Py (pandas),
//! VMIS-Java (JVM), VMIS-SQL (DuckDB) and VMIS-Diff (differential dataflow).
//! We cannot run Python/Java/DuckDB here, but the *performance drivers* the
//! paper identifies are implementation strategies, not languages:
//!
//! * **full materialisation of intermediate results** (pandas dataframes,
//!   SQL nested subqueries) → [`PandasStyleVsKnn`], [`SqlStyleVmis`];
//! * **per-entry allocation and pointer indirection with no capacity
//!   control** (JVM object graphs, GC pressure) → [`AllocHeavyVmis`];
//! * **indexing every intermediate result to support incremental updates**
//!   (differential dataflow arrangements) → [`IncrementalVmis`].
//!
//! Each analogue isolates exactly one of those costs while producing
//! **bit-identical** predictions to the core implementation — the tests pin
//! this for every variant, which is the strongest form of the paper's
//! "equal predictive performance" requirement (Section 5.2.1).

use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

use serenade_core::{
    CoreError, FxHashMap, ItemId, ItemScore, Recommender, SessionId, SessionIndex, Timestamp,
    VmisConfig,
};

use crate::common;

fn build_idf(index: &SessionIndex, config: &VmisConfig) -> FxHashMap<ItemId, f32> {
    let n = index.num_sessions();
    let mut idf = FxHashMap::default();
    for (item, posting) in index.postings_iter() {
        idf.insert(item, config.idf.weight(posting.support as usize, n));
    }
    idf
}

// ---------------------------------------------------------------------------
// VS-Py analogue
// ---------------------------------------------------------------------------

/// Pandas-style VS-kNN: every request materialises the complete join between
/// the evolving session and the matching historical sessions as a row table,
/// then runs group-by / sort / filter passes over fresh, SipHash-keyed
/// collections — the dataframe execution model of the Python reference code.
#[derive(Debug, Clone)]
pub struct PandasStyleVsKnn {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    idf: FxHashMap<ItemId, f32>,
}

impl PandasStyleVsKnn {
    /// Creates the analogue over shared session data.
    pub fn new(
        index: impl Into<Arc<SessionIndex>>,
        config: VmisConfig,
    ) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        let idf = build_idf(&index, &config);
        Ok(Self { index, config, idf })
    }
}

impl Recommender for PandasStyleVsKnn {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let (window, pos) = common::session_window(session, self.config.max_session_len);
        if window.is_empty() {
            return Vec::new();
        }
        let wlen = window.len();

        // "merge": materialise every (item, session) match as a row.
        struct MatchRow {
            session: SessionId,
            timestamp: Timestamp,
            decay: f32,
        }
        let mut rows: Vec<MatchRow> = Vec::new();
        for (i, &item) in window.iter().enumerate().rev() {
            if pos[&item] != i + 1 {
                continue;
            }
            if let Some(posting) = self.index.postings(item) {
                let decay = self.config.decay.weight(i + 1, wlen);
                for &e in posting {
                    let sid = e.session;
                    rows.push(MatchRow {
                        session: sid,
                        // Deliberate `t` lookup per row: this analogue models
                        // the dataframe join against a separate timestamp
                        // column, not the kernel's inlined layout.
                        timestamp: self.index.session_timestamp(sid),
                        decay,
                    });
                }
            }
        }

        // "groupby(session).agg(list)": per-session weight vectors in fresh
        // default-hasher maps (one Vec allocation per group).
        let mut groups: HashMap<SessionId, (Timestamp, Vec<f32>)> = HashMap::new();
        for row in rows {
            groups
                .entry(row.session)
                .or_insert_with(|| (row.timestamp, Vec::new()))
                .1
                .push(row.decay);
        }

        // "sort_values(timestamp).head(m)": full sort of all candidates.
        let mut by_recency: Vec<(Timestamp, SessionId)> =
            groups.iter().map(|(&sid, &(ts, _))| (ts, sid)).collect();
        by_recency.sort_unstable_by(|a, b| b.cmp(a));
        by_recency.truncate(self.config.m);

        // "sum" aggregation and top-k sort.
        let mut scored: Vec<(f32, Timestamp, SessionId)> = by_recency
            .into_iter()
            .map(|(ts, sid)| {
                let sim: f32 = groups[&sid].1.iter().copied().sum();
                (sim, ts, sid)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        scored.truncate(self.config.k);

        let neighbors: Vec<(SessionId, f32)> =
            scored.into_iter().map(|(sim, _, sid)| (sid, sim)).collect();
        let mut recs = common::score_and_rank(
            &neighbors,
            &pos,
            |sid| self.index.session_items(sid),
            &self.idf,
            &self.config,
        );
        recs.truncate(how_many);
        recs
    }

    fn name(&self) -> &str {
        "vs-py-analogue"
    }
}

// ---------------------------------------------------------------------------
// VMIS-Java analogue
// ---------------------------------------------------------------------------

/// Allocation-heavy VMIS-kNN: the same index-based algorithm, but with the
/// memory behaviour of a JVM implementation — boxed per-entry values
/// (pointer indirection like `java.lang.Double`), default-hasher maps grown
/// from zero capacity, fresh collections per request, and `std` binary heaps
/// rebuilt each time. No scratch reuse, no capacity control.
#[derive(Debug, Clone)]
pub struct AllocHeavyVmis {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    idf: FxHashMap<ItemId, f32>,
}

impl AllocHeavyVmis {
    /// Creates the analogue over shared session data.
    pub fn new(
        index: impl Into<Arc<SessionIndex>>,
        config: VmisConfig,
    ) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        let idf = build_idf(&index, &config);
        Ok(Self { index, config, idf })
    }
}

impl Recommender for AllocHeavyVmis {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        use std::cmp::Reverse;
        let (window, pos) = common::session_window(session, self.config.max_session_len);
        if window.is_empty() {
            return Vec::new();
        }
        let wlen = window.len();

        // Boxed similarity cells: every update dereferences a heap pointer.
        let mut r: HashMap<SessionId, Box<f32>> = HashMap::new();
        let mut bt: BinaryHeap<Reverse<(Timestamp, SessionId)>> = BinaryHeap::new();

        for (i, &item) in window.iter().enumerate().rev() {
            if pos[&item] != i + 1 {
                continue;
            }
            let Some(posting) = self.index.postings(item) else {
                continue;
            };
            let pi = self.config.decay.weight(i + 1, wlen);
            for &e in posting {
                let j = e.session;
                if let Some(cell) = r.get_mut(&j) {
                    **cell += pi;
                    continue;
                }
                // Deliberate `t` chase per entry: this analogue models the
                // pointer-heavy layout, not the kernel's inlined keys.
                let key = (self.index.session_timestamp(j), j);
                if r.len() < self.config.m {
                    r.insert(j, Box::new(pi));
                    bt.push(Reverse(key));
                } else {
                    let Reverse(root) = *bt.peek().expect("heap non-empty");
                    if key > root {
                        bt.pop();
                        bt.push(Reverse(key));
                        r.remove(&root.1);
                        r.insert(j, Box::new(pi));
                    } else {
                        break; // early stopping still applies
                    }
                }
            }
        }

        let mut topk: BinaryHeap<Reverse<(f32ord, Timestamp, SessionId)>> = BinaryHeap::new();
        for (&sid, cell) in &r {
            let key = (f32ord(**cell), self.index.session_timestamp(sid), sid);
            if topk.len() < self.config.k {
                topk.push(Reverse(key));
            } else if key > topk.peek().expect("non-empty").0 {
                topk.pop();
                topk.push(Reverse(key));
            }
        }
        let neighbors: Vec<(SessionId, f32)> =
            topk.into_iter().map(|Reverse((sim, _, sid))| (sid, sim.0)).collect();
        let mut recs = common::score_and_rank(
            &neighbors,
            &pos,
            |sid| self.index.session_items(sid),
            &self.idf,
            &self.config,
        );
        recs.truncate(how_many);
        recs
    }

    fn name(&self) -> &str {
        "vmis-java-analogue"
    }
}

/// Totally ordered f32 wrapper for the `std` heap (scores are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(non_camel_case_types)]
struct f32ord(f32);

impl Eq for f32ord {}
impl PartialOrd for f32ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for f32ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite score")
    }
}

// ---------------------------------------------------------------------------
// VMIS-SQL analogue
// ---------------------------------------------------------------------------

/// SQL-style VMIS-kNN: executes the recommendation as the blocking
/// relational plan the paper's deeply nested subqueries induce — every stage
/// **fully materialises** its output before the next one starts:
///
/// 1. join the session items with the inverted index into a row table;
/// 2. `GROUP BY session` via sort-aggregate;
/// 3. `ORDER BY timestamp DESC LIMIT m`;
/// 4. `ORDER BY similarity DESC LIMIT k`;
/// 5. join neighbours with their item lists into a second row table;
/// 6. `GROUP BY item` via sort-aggregate for the final scores.
#[derive(Debug, Clone)]
pub struct SqlStyleVmis {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    idf: FxHashMap<ItemId, f32>,
}

impl SqlStyleVmis {
    /// Creates the analogue over shared session data.
    pub fn new(
        index: impl Into<Arc<SessionIndex>>,
        config: VmisConfig,
    ) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        let idf = build_idf(&index, &config);
        Ok(Self { index, config, idf })
    }
}

impl Recommender for SqlStyleVmis {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let (window, pos) = common::session_window(session, self.config.max_session_len);
        if window.is_empty() {
            return Vec::new();
        }
        let wlen = window.len();

        // Stage 1: JOIN — (session, ts, decay, reverse_order) rows.
        let mut join: Vec<(SessionId, Timestamp, f32, usize)> = Vec::new();
        for (i, &item) in window.iter().enumerate().rev() {
            if pos[&item] != i + 1 {
                continue;
            }
            if let Some(posting) = self.index.postings(item) {
                let decay = self.config.decay.weight(i + 1, wlen);
                for &e in posting {
                    let sid = e.session;
                    // Deliberate `t` lookup per row (SQL join with the
                    // timestamp table), as in the dataframe analogue.
                    join.push((sid, self.index.session_timestamp(sid), decay, wlen - i));
                }
            }
        }

        // Stage 2: GROUP BY session (sort-aggregate). The secondary sort key
        // preserves reverse-window summation order within each group.
        join.sort_unstable_by_key(|&(sid, _, _, ord)| (sid, ord));
        let mut groups: Vec<(SessionId, Timestamp, f32)> = Vec::new();
        for &(sid, ts, decay, _) in &join {
            match groups.last_mut() {
                Some(last) if last.0 == sid => last.2 += decay,
                _ => groups.push((sid, ts, decay)),
            }
        }

        // Stage 3: ORDER BY ts DESC LIMIT m.
        groups.sort_unstable_by_key(|&(sid, ts, _)| std::cmp::Reverse((ts, sid)));
        groups.truncate(self.config.m);

        // Stage 4: ORDER BY similarity DESC LIMIT k.
        groups.sort_unstable_by(|a, b| {
            (b.2, b.1, b.0).partial_cmp(&(a.2, a.1, a.0)).expect("finite")
        });
        groups.truncate(self.config.k);

        // Stages 5+6: join neighbours with item lists, group by item.
        let neighbors: Vec<(SessionId, f32)> =
            groups.into_iter().map(|(sid, _, sim)| (sid, sim)).collect();
        let mut recs = common::score_and_rank(
            &neighbors,
            &pos,
            |sid| self.index.session_items(sid),
            &self.idf,
            &self.config,
        );
        recs.truncate(how_many);
        recs
    }

    fn name(&self) -> &str {
        "vmis-sql-analogue"
    }
}

// ---------------------------------------------------------------------------
// VMIS-Diff analogue
// ---------------------------------------------------------------------------

/// Differential-dataflow-style VMIS-kNN: maintains an **arrangement** — an
/// ordered index over *all* matched sessions, not just the top `m` — that is
/// updated incrementally as the evolving session grows, exactly like a
/// dataflow system that must keep every intermediate result indexed to
/// support updates. Queries read the arrangement and extract the answer.
///
/// Restricted to the linear-by-position decay (the paper's default), whose
/// unnormalised form `Σ position` is incrementally maintainable; the `1/len`
/// factor is applied at query time. Works on growing sessions without item
/// eviction; when the session exceeds `max_session_len`, the state is rebuilt
/// (a dataflow system would issue retractions — same asymptotic cost).
#[derive(Debug, Clone)]
pub struct IncrementalVmis {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    idf: FxHashMap<ItemId, f32>,
}

/// Mutable per-evolving-session state of [`IncrementalVmis`].
#[derive(Debug)]
pub struct IncrementalSessionState {
    /// Raw item sequence observed so far.
    items: Vec<ItemId>,
    /// Arrangement: unnormalised similarity (Σ positions) per matched
    /// session, for **all** matched sessions — the memory cost the paper
    /// attributes to differential dataflow.
    arrangement: BTreeMap<SessionId, f64>,
    /// Latest contributed position per window item (for retractions on
    /// duplicate re-arrival).
    contributed: FxHashMap<ItemId, usize>,
}

impl IncrementalVmis {
    /// Creates the analogue over shared session data.
    ///
    /// # Errors
    ///
    /// Besides the usual validation, rejects decay functions other than
    /// [`serenade_core::DecayFunction::LinearByPosition`], which is the only
    /// one whose per-item contributions are incrementally maintainable.
    pub fn new(
        index: impl Into<Arc<SessionIndex>>,
        config: VmisConfig,
    ) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        if config.decay != serenade_core::DecayFunction::LinearByPosition {
            return Err(CoreError::InvalidConfig {
                parameter: "decay",
                reason: "the incremental variant requires LinearByPosition decay".into(),
            });
        }
        let idf = build_idf(&index, &config);
        Ok(Self { index, config, idf })
    }

    /// Starts a new evolving session.
    pub fn start_session(&self) -> IncrementalSessionState {
        IncrementalSessionState {
            items: Vec::new(),
            arrangement: BTreeMap::new(),
            contributed: FxHashMap::default(),
        }
    }

    /// Feeds the next click and returns the updated recommendations.
    pub fn observe(
        &self,
        state: &mut IncrementalSessionState,
        item: ItemId,
        how_many: usize,
    ) -> Vec<ItemScore> {
        state.items.push(item);
        if state.items.len() > self.config.max_session_len
            || state.contributed.contains_key(&item)
        {
            // Window slide or duplicate: rebuild (≙ batched retractions).
            self.rebuild(state);
        } else {
            let p = state.items.len();
            state.contributed.insert(item, p);
            if let Some(posting) = self.index.postings(item) {
                for &e in posting {
                    *state.arrangement.entry(e.session).or_insert(0.0) += p as f64;
                }
            }
        }
        self.query(state, how_many)
    }

    fn rebuild(&self, state: &mut IncrementalSessionState) {
        state.arrangement.clear();
        state.contributed.clear();
        let from = state.items.len().saturating_sub(self.config.max_session_len);
        let window = state.items[from..].to_vec();
        for (i, &it) in window.iter().enumerate() {
            state.contributed.insert(it, i + 1);
        }
        for (&it, &p) in &state.contributed {
            // Use the *latest* position of each distinct item.
            if window[p - 1] != it {
                continue;
            }
            if let Some(posting) = self.index.postings(it) {
                for &e in posting {
                    *state.arrangement.entry(e.session).or_insert(0.0) += p as f64;
                }
            }
        }
    }

    /// Reads the arrangement: m most recent matches, top-k by similarity,
    /// then the shared scoring stage.
    ///
    /// The arrangement's maintained aggregate is the *unnormalised* `Σ pos`;
    /// the exact decayed similarity is recomputed over the (short) window
    /// for the `m` sampled candidates in the same f32 summation order as the
    /// core implementation, so the outputs are bit-identical — a dataflow
    /// system maintaining exact aggregates would behave the same way.
    fn query(&self, state: &IncrementalSessionState, how_many: usize) -> Vec<ItemScore> {
        let wlen = state.contributed.values().copied().max().unwrap_or(0);
        if wlen == 0 {
            return Vec::new();
        }
        let from = state.items.len().saturating_sub(self.config.max_session_len);
        let window = &state.items[from..];
        let mut recent: Vec<(Timestamp, SessionId)> = state
            .arrangement
            .keys()
            .map(|&sid| (self.index.session_timestamp(sid), sid))
            .collect();
        recent.sort_unstable_by(|a, b| b.cmp(a));
        recent.truncate(self.config.m);

        let mut scored: Vec<(f32, Timestamp, SessionId)> = recent
            .into_iter()
            .map(|(ts, sid)| {
                let items = self.index.session_items(sid);
                let mut sim = 0.0f32;
                for (i, &item) in window.iter().enumerate().rev() {
                    if state.contributed.get(&item) != Some(&(i + 1)) {
                        continue; // duplicate occurrence
                    }
                    if items.contains(&item) {
                        sim += self.config.decay.weight(i + 1, wlen);
                    }
                }
                (sim, ts, sid)
            })
            .filter(|&(sim, _, _)| sim > 0.0)
            .collect();
        scored.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        scored.truncate(self.config.k);

        let neighbors: Vec<(SessionId, f32)> =
            scored.into_iter().map(|(sim, _, sid)| (sid, sim)).collect();
        let pos: FxHashMap<ItemId, usize> =
            state.contributed.iter().map(|(&i, &p)| (i, p)).collect();
        let mut recs = common::score_and_rank(
            &neighbors,
            &pos,
            |sid| self.index.session_items(sid),
            &self.idf,
            &self.config,
        );
        recs.truncate(how_many);
        recs
    }
}

impl Recommender for IncrementalVmis {
    /// Stateless adapter: replays the prefix through a fresh state. Used for
    /// prediction-quality parity; latency experiments drive the stateful
    /// [`IncrementalVmis::observe`] API instead.
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let mut state = self.start_session();
        let mut out = Vec::new();
        for &item in session {
            out = self.observe(&mut state, item, how_many);
        }
        out
    }

    fn name(&self) -> &str {
        "vmis-diff-analogue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::{Click, VmisKnn};

    fn history() -> Vec<Click> {
        let mut clicks = Vec::new();
        // 40 sessions over 12 items with varied overlap.
        for s in 0..40u64 {
            let base = s % 12;
            let ts = 1_000 + s * 50;
            clicks.push(Click::new(s + 1, base, ts));
            clicks.push(Click::new(s + 1, (base + 1) % 12, ts + 1));
            if s % 3 == 0 {
                clicks.push(Click::new(s + 1, (base + 5) % 12, ts + 2));
            }
        }
        clicks
    }

    fn sessions() -> Vec<Vec<ItemId>> {
        vec![vec![0, 1], vec![3], vec![5, 6, 7], vec![11, 0, 1, 2], vec![9, 9, 10]]
    }

    fn reference() -> (Arc<SessionIndex>, VmisConfig, VmisKnn) {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let mut cfg = VmisConfig::default();
        cfg.m = 10;
        cfg.k = 5;
        let vmis = VmisKnn::new(Arc::clone(&index), cfg.clone()).unwrap();
        (index, cfg, vmis)
    }

    #[test]
    fn pandas_analogue_matches_core_exactly() {
        let (index, cfg, vmis) = reference();
        let alt = PandasStyleVsKnn::new(index, cfg).unwrap();
        for s in sessions() {
            assert_eq!(
                Recommender::recommend(&alt, &s, 21),
                Recommender::recommend(&vmis, &s, 21),
                "session {s:?}"
            );
        }
    }

    #[test]
    fn alloc_heavy_analogue_matches_core_exactly() {
        let (index, cfg, vmis) = reference();
        let alt = AllocHeavyVmis::new(index, cfg).unwrap();
        for s in sessions() {
            assert_eq!(
                Recommender::recommend(&alt, &s, 21),
                Recommender::recommend(&vmis, &s, 21),
                "session {s:?}"
            );
        }
    }

    #[test]
    fn sql_analogue_matches_core_exactly() {
        let (index, cfg, vmis) = reference();
        let alt = SqlStyleVmis::new(index, cfg).unwrap();
        for s in sessions() {
            assert_eq!(
                Recommender::recommend(&alt, &s, 21),
                Recommender::recommend(&vmis, &s, 21),
                "session {s:?}"
            );
        }
    }

    #[test]
    fn incremental_analogue_matches_core_exactly() {
        let (index, cfg, vmis) = reference();
        let alt = IncrementalVmis::new(index, cfg).unwrap();
        for s in sessions() {
            assert_eq!(
                Recommender::recommend(&alt, &s, 21),
                Recommender::recommend(&vmis, &s, 21),
                "session {s:?}"
            );
        }
    }

    #[test]
    fn incremental_stateful_equals_stateless_replay() {
        let (index, cfg, _) = reference();
        let alt = IncrementalVmis::new(index, cfg).unwrap();
        let session = [0u64, 1, 5, 0, 2];
        let mut state = alt.start_session();
        let mut stateful = Vec::new();
        for (t, &item) in session.iter().enumerate() {
            stateful = alt.observe(&mut state, item, 21);
            let replay = Recommender::recommend(&alt, &session[..=t], 21);
            assert_eq!(stateful, replay, "prefix {}", t + 1);
        }
        assert!(!stateful.is_empty());
    }

    #[test]
    fn incremental_rejects_nonlinear_decay() {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let mut cfg = VmisConfig::default();
        cfg.decay = serenade_core::DecayFunction::Harmonic;
        assert!(IncrementalVmis::new(index, cfg).is_err());
    }

    #[test]
    fn incremental_handles_window_slide() {
        let (index, mut cfg, _) = reference();
        cfg.max_session_len = 3;
        let alt = IncrementalVmis::new(index, cfg).unwrap();
        // 5 items with cap 3 — forces rebuilds.
        let session = [0u64, 1, 2, 3, 4];
        let mut state = alt.start_session();
        let mut last = Vec::new();
        for &item in &session {
            last = alt.observe(&mut state, item, 21);
        }
        let replay = Recommender::recommend(&alt, &session, 21);
        assert_eq!(last, replay);
    }

    #[test]
    fn analogues_handle_empty_and_unknown_sessions() {
        let (index, cfg, _) = reference();
        let recs: Vec<Box<dyn Recommender>> = vec![
            Box::new(PandasStyleVsKnn::new(Arc::clone(&index), cfg.clone()).unwrap()),
            Box::new(AllocHeavyVmis::new(Arc::clone(&index), cfg.clone()).unwrap()),
            Box::new(SqlStyleVmis::new(Arc::clone(&index), cfg.clone()).unwrap()),
            Box::new(IncrementalVmis::new(index, cfg).unwrap()),
        ];
        for r in &recs {
            assert!(r.recommend(&[], 10).is_empty(), "{}", r.name());
            assert!(r.recommend(&[424242], 10).is_empty(), "{}", r.name());
        }
    }
}
