//! The scan-based VS-kNN baseline (Figure 3a bottom, "VS-kNN").
//!
//! Mimics the original VS-kNN similarity computation: the historical data is
//! held in hash maps, and for every request the algorithm **first
//! materialises** the set of all sessions sharing at least one item with the
//! evolving session, sorts it to find the `m` most recent, and only then
//! computes similarities — paying for the full candidate-set intersection
//! and sort that VMIS-kNN's joint join-and-aggregate execution avoids.
//!
//! The baseline is built over the same [`SessionIndex`] data as VMIS-kNN and
//! produces **identical** neighbourhoods and scores (the tie-breaking is the
//! same composite `(timestamp, session id)` order); the integration tests
//! verify this equivalence, which the paper requires of all implementation
//! variants (Section 5.2.1).

use std::sync::Arc;

use serenade_core::{
    CoreError, FxHashMap, FxHashSet, ItemId, ItemScore, Recommender, SessionId, SessionIndex,
    Timestamp, VmisConfig,
};

use crate::common;

/// Scan-based VS-kNN over the shared session data.
#[derive(Debug, Clone)]
pub struct VsKnnBaseline {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    idf: FxHashMap<ItemId, f32>,
}

impl VsKnnBaseline {
    /// Creates the baseline over the same data as a VMIS-kNN index.
    pub fn new(
        index: impl Into<Arc<SessionIndex>>,
        config: VmisConfig,
    ) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        let n = index.num_sessions();
        let mut idf = FxHashMap::default();
        for (item, posting) in index.postings_iter() {
            idf.insert(item, config.idf.weight(posting.support as usize, n));
        }
        Ok(Self { index, config, idf })
    }

    /// The active configuration.
    pub fn config(&self) -> &VmisConfig {
        &self.config
    }

    /// Computes the `k` closest sessions the VS-kNN way: materialise all
    /// matching sessions, sort for the `m` most recent, score, sort again.
    pub fn neighbors(&self, session: &[ItemId]) -> Vec<(SessionId, f32)> {
        let (window, pos) = common::session_window(session, self.config.max_session_len);
        if window.is_empty() {
            return Vec::new();
        }

        // Step 1: H_s — all historical sessions sharing at least one item.
        let mut candidates: FxHashSet<SessionId> = FxHashSet::default();
        for (&item, &p) in &pos {
            // Only the latest occurrence defines the item set; `pos` is
            // already deduplicated.
            let _ = p;
            if let Some(list) = self.index.postings(item) {
                candidates.extend(list.iter().map(|e| e.session));
            }
        }

        // Step 2: recency-based sample of size m (most recent first).
        let mut recent: Vec<(Timestamp, SessionId)> = candidates
            .into_iter()
            .map(|sid| (self.index.session_timestamp(sid), sid))
            .collect();
        recent.sort_unstable_by(|a, b| b.cmp(a));
        recent.truncate(self.config.m);

        // Step 3: decayed dot-product similarity per candidate. The π terms
        // are added in reverse window order — the same summation order as
        // the VMIS-kNN inner loop, so the f32 results match bit-for-bit.
        let wlen = window.len();
        let mut scored: Vec<(f32, Timestamp, SessionId)> = Vec::with_capacity(recent.len());
        for &(ts, sid) in &recent {
            let items = self.index.session_items(sid);
            let mut sim = 0.0f32;
            for (i, &item) in window.iter().enumerate().rev() {
                if pos[&item] != i + 1 {
                    continue; // duplicate occurrence
                }
                if items.contains(&item) {
                    sim += self.config.decay.weight(i + 1, wlen);
                }
            }
            if sim > 0.0 {
                scored.push((sim, ts, sid));
            }
        }

        // Step 4: top-k by (similarity, recency).
        scored.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite similarities"));
        scored.truncate(self.config.k);
        scored.into_iter().map(|(sim, _, sid)| (sid, sim)).collect()
    }
}

impl Recommender for VsKnnBaseline {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let neighbors = self.neighbors(session);
        let (_, pos) = common::session_window(session, self.config.max_session_len);
        let mut recs = common::score_and_rank(
            &neighbors,
            &pos,
            |sid| self.index.session_items(sid),
            &self.idf,
            &self.config,
        );
        recs.truncate(how_many);
        recs
    }

    fn name(&self) -> &str {
        "vs-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::{Click, VmisKnn};

    fn history() -> Vec<Click> {
        vec![
            Click::new(10, 1, 100),
            Click::new(10, 2, 110),
            Click::new(20, 2, 200),
            Click::new(20, 3, 210),
            Click::new(30, 1, 300),
            Click::new(30, 3, 310),
            Click::new(30, 4, 320),
            Click::new(40, 2, 400),
            Click::new(40, 4, 410),
            Click::new(40, 5, 420),
        ]
    }

    #[test]
    fn neighbors_match_vmis_exactly() {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let cfg = VmisConfig::default();
        let vs = VsKnnBaseline::new(Arc::clone(&index), cfg.clone()).unwrap();
        let vmis = VmisKnn::new(index, cfg).unwrap();
        let mut scratch = vmis.scratch();
        for session in [&[1u64, 2] as &[u64], &[2], &[5, 4], &[3, 1, 2]] {
            let mut a = vs.neighbors(session);
            let mut b: Vec<(SessionId, f32)> = vmis
                .neighbors_with_scratch(session, &mut scratch)
                .into_iter()
                .map(|n| (n.session, n.similarity))
                .collect();
            a.sort_unstable_by_key(|x| x.0);
            b.sort_unstable_by_key(|x| x.0);
            assert_eq!(a, b, "session {session:?}");
        }
    }

    #[test]
    fn recommendations_match_vmis_exactly() {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let cfg = VmisConfig::default();
        let vs = VsKnnBaseline::new(Arc::clone(&index), cfg.clone()).unwrap();
        let vmis = VmisKnn::new(index, cfg).unwrap();
        for session in [&[1u64, 2] as &[u64], &[2], &[4, 5], &[1, 3, 2, 5]] {
            let a = Recommender::recommend(&vs, session, 21);
            let b = Recommender::recommend(&vmis, session, 21);
            assert_eq!(a, b, "session {session:?}");
        }
    }

    #[test]
    fn respects_m_sample() {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let mut cfg = VmisConfig::default();
        cfg.m = 2;
        let vs = VsKnnBaseline::new(index, cfg).unwrap();
        let n = vs.neighbors(&[1, 2]);
        assert!(n.len() <= 2);
        // The two most recent matching sessions are C (id 2) and D (id 3).
        let mut ids: Vec<SessionId> = n.iter().map(|&(sid, _)| sid).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn empty_session_yields_nothing() {
        let index = Arc::new(SessionIndex::build(&history(), 500).unwrap());
        let vs = VsKnnBaseline::new(index, VmisConfig::default()).unwrap();
        assert!(vs.neighbors(&[]).is_empty());
        assert!(Recommender::recommend(&vs, &[], 10).is_empty());
    }
}
