//! Shared pieces of the nearest-neighbour baselines.
//!
//! The item-scoring stage (Algorithm 1/2, final loop) is identical across
//! VS-kNN and the VMIS analogues; centralising it here guarantees the
//! "equal predictive performance" the paper requires of all implementation
//! variants (Section 5.2.1).

use serenade_core::{FxHashMap, ItemId, ItemScore, SessionId, VmisConfig};

/// Builds the ω position map of the capped evolving session: latest 1-based
/// position per item. Returns the capped window and its position map.
pub fn session_window(
    session: &[ItemId],
    max_len: usize,
) -> (&[ItemId], FxHashMap<ItemId, usize>) {
    let window = if session.len() > max_len {
        &session[session.len() - max_len..]
    } else {
        session
    };
    let mut pos = FxHashMap::default();
    for (i, &item) in window.iter().enumerate() {
        pos.insert(item, i + 1);
    }
    (window, pos)
}

/// Scores all items of the neighbour sessions and returns the ranked top
/// `how_many` list — the same semantics as the core VMIS-kNN scorer.
///
/// `session_items` resolves a neighbour's (deduplicated) item list; `idf`
/// maps items to their precomputed idf weight (missing items weigh 1).
pub fn score_and_rank<'a>(
    neighbors: &[(SessionId, f32)],
    pos: &FxHashMap<ItemId, usize>,
    session_items: impl Fn(SessionId) -> &'a [ItemId],
    idf: &FxHashMap<ItemId, f32>,
    config: &VmisConfig,
) -> Vec<ItemScore> {
    let wlen = pos.values().copied().max().unwrap_or(0);
    if wlen == 0 {
        return Vec::new();
    }
    let norm = if config.normalize_by_session_length { 1.0 / wlen as f32 } else { 1.0 };
    let mut scores: FxHashMap<ItemId, f32> = FxHashMap::default();
    // Canonical summation order (ascending session id), matching the core
    // scorer so all variants produce bit-identical f32 scores.
    let mut neighbors: Vec<(SessionId, f32)> = neighbors.to_vec();
    neighbors.sort_unstable_by_key(|&(sid, _)| sid);
    for &(sid, similarity) in &neighbors {
        let items = session_items(sid);
        let Some(max_pos) = items.iter().filter_map(|it| pos.get(it)).copied().max() else {
            continue;
        };
        let lambda = config.match_weight.weight(max_pos, wlen);
        if lambda <= 0.0 {
            continue;
        }
        let session_weight = lambda * similarity * norm;
        for &item in items {
            if config.exclude_session_items && pos.contains_key(&item) {
                continue;
            }
            let w = idf.get(&item).copied().unwrap_or(1.0);
            *scores.entry(item).or_insert(0.0) += session_weight * w;
        }
    }
    rank_scores(scores, config.how_many)
}

/// Ranks a score map: descending score, ascending item id on ties, positive
/// scores only, at most `how_many` entries.
pub fn rank_scores(scores: FxHashMap<ItemId, f32>, how_many: usize) -> Vec<ItemScore> {
    let mut out: Vec<ItemScore> = scores
        .into_iter()
        .filter(|&(_, s)| s > 0.0)
        .map(|(item, score)| ItemScore { item, score })
        .collect();
    let cmp = |a: &ItemScore, b: &ItemScore| {
        b.score.partial_cmp(&a.score).expect("finite scores").then(a.item.cmp(&b.item))
    };
    let n = how_many.min(out.len());
    if n == 0 {
        return Vec::new();
    }
    if n < out.len() {
        out.select_nth_unstable_by(n - 1, cmp);
        out.truncate(n);
    }
    out.sort_unstable_by(cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_caps_to_most_recent() {
        let (w, pos) = session_window(&[1, 2, 3, 4], 2);
        assert_eq!(w, &[3, 4]);
        assert_eq!(pos.get(&3), Some(&1));
        assert_eq!(pos.get(&4), Some(&2));
        assert_eq!(pos.get(&1), None);
    }

    #[test]
    fn window_tracks_latest_duplicate_position() {
        let (_, pos) = session_window(&[7, 8, 7], 10);
        assert_eq!(pos.get(&7), Some(&3));
        assert_eq!(pos.get(&8), Some(&2));
    }

    #[test]
    fn rank_scores_orders_and_truncates() {
        let mut m: FxHashMap<ItemId, f32> = FxHashMap::default();
        m.insert(1, 0.5);
        m.insert(2, 0.9);
        m.insert(3, 0.9); // tie with 2: lower id first
        m.insert(4, 0.0); // dropped
        m.insert(5, -1.0); // dropped
        let ranked = rank_scores(m, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].item, 2);
        assert_eq!(ranked[1].item, 3);
    }

    #[test]
    fn rank_scores_empty() {
        assert!(rank_scores(FxHashMap::default(), 5).is_empty());
    }
}
