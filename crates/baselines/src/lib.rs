//! # serenade-baselines — comparison recommenders for the Serenade experiments
//!
//! Every algorithm the paper compares against, implemented from scratch:
//!
//! * [`vsknn`] — the scan-based **VS-kNN** baseline of the index-design
//!   microbenchmark (Figure 3a, bottom): holds the historical data in hash
//!   maps and first materialises the `m` most recent matching sessions
//!   before computing similarities. Produces *identical* neighbourhoods to
//!   VMIS-kNN (the test suite verifies this), just slower.
//! * [`vmis_noopt`] — **VMIS-kNN-no-opt**: the index-based algorithm without
//!   the micro-optimisations (binary instead of octonary heaps, no early
//!   stopping).
//! * [`itemknn`] — item-to-item collaborative filtering, the **legacy**
//!   production system of the A/B test (Section 5.2.3).
//! * [`popularity`] — the popularity baseline.
//! * [`seqrules`] — sequential rules, a strong lightweight sequence baseline
//!   from the session-rec literature.
//! * [`analogues`] — Rust behavioural analogues of the alternative
//!   implementations in Figure 3a (top): the pandas-style scan (VS-Py), the
//!   allocation-heavy variant (VMIS-Java), the join-materialising variant
//!   (VMIS-SQL) and the incremental variant (VMIS-Diff). See DESIGN.md for
//!   the substitution rationale.

#![warn(missing_docs)]

pub mod analogues;
pub mod common;
pub mod itemknn;
pub mod popularity;
pub mod seqrules;
pub mod vsknn;

pub use itemknn::ItemKnn;
pub use popularity::Popularity;
pub use seqrules::SequentialRules;
pub use vsknn::VsKnnBaseline;

use serenade_core::{CoreError, SessionIndex, VmisConfig, VmisKnn};
use std::sync::Arc;

/// Constructs **VMIS-kNN-no-opt**: the same index-based algorithm but with
/// binary heaps and early stopping disabled (Section 5.1.3).
pub fn vmis_noopt(
    index: impl Into<Arc<SessionIndex>>,
    mut config: VmisConfig,
) -> Result<VmisKnn, CoreError> {
    config.early_stopping = false;
    config.heap_arity = serenade_core::HeapArity::Binary;
    VmisKnn::new(index, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::Click;

    #[test]
    fn vmis_noopt_disables_optimisations() {
        let clicks = vec![Click::new(1, 1, 1), Click::new(1, 2, 2)];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = vmis_noopt(index, VmisConfig::default()).unwrap();
        assert!(!v.config().early_stopping);
        assert_eq!(v.config().heap_arity, serenade_core::HeapArity::Binary);
    }
}
