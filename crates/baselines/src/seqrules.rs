//! Sequential Rules (SR) — a lightweight sequence-aware baseline.
//!
//! From the session-rec comparison studies the paper builds on (Ludewig &
//! Jannach): for every ordered pair of items `(a, b)` appearing in a session
//! with `a` clicked before `b`, a rule `a → b` accumulates weight `1/steps`
//! where `steps` is the click distance. Predictions rank items by the rule
//! weight of the session's most recent item(s). Cheap to fit, surprisingly
//! strong — a useful midpoint between popularity and session kNN.

use serenade_core::{Click, FxHashMap, ItemId, ItemScore, Recommender};
use serenade_dataset::sessionize;

use crate::common;

/// Configuration for [`SequentialRules`].
#[derive(Debug, Clone, Copy)]
pub struct SequentialRulesConfig {
    /// Maximum click distance between the antecedent and the consequent.
    pub max_steps: usize,
    /// Keep at most this many consequents per antecedent.
    pub max_rules_per_item: usize,
}

impl Default for SequentialRulesConfig {
    fn default() -> Self {
        Self { max_steps: 10, max_rules_per_item: 100 }
    }
}

/// The fitted rule table.
#[derive(Debug, Clone)]
pub struct SequentialRules {
    rules: FxHashMap<ItemId, Vec<ItemScore>>,
}

impl SequentialRules {
    /// Fits rules on a click log.
    pub fn fit(clicks: &[Click], config: SequentialRulesConfig) -> Self {
        let sessions = sessionize(clicks);
        let mut weights: FxHashMap<(ItemId, ItemId), f32> = FxHashMap::default();
        for s in &sessions {
            for (i, &a) in s.items.iter().enumerate() {
                let hi = (i + 1 + config.max_steps).min(s.items.len());
                for (j, &b) in s.items[i + 1..hi].iter().enumerate() {
                    if a != b {
                        *weights.entry((a, b)).or_insert(0.0) += 1.0 / (j + 1) as f32;
                    }
                }
            }
        }
        let mut rules: FxHashMap<ItemId, Vec<ItemScore>> = FxHashMap::default();
        for ((a, b), w) in weights {
            rules.entry(a).or_default().push(ItemScore { item: b, score: w });
        }
        for list in rules.values_mut() {
            list.sort_unstable_by(|x, y| {
                y.score.partial_cmp(&x.score).expect("finite").then(x.item.cmp(&y.item))
            });
            list.truncate(config.max_rules_per_item);
        }
        Self { rules }
    }

    /// Consequents of `item`, best first.
    pub fn rules_for(&self, item: ItemId) -> &[ItemScore] {
        self.rules.get(&item).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

impl Recommender for SequentialRules {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let Some(&last) = session.last() else {
            return Vec::new();
        };
        let mut scores: FxHashMap<ItemId, f32> = FxHashMap::default();
        for r in self.rules_for(last) {
            if !session.contains(&r.item) {
                scores.insert(r.item, r.score);
            }
        }
        common::rank_scores(scores, how_many)
    }

    fn name(&self) -> &str {
        "sequential-rules"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_pairs_weigh_more_than_distant() {
        // Session [1, 2, 3]: rule 1→2 has weight 1, rule 1→3 weight 1/2.
        let clicks =
            vec![Click::new(1, 1, 1), Click::new(1, 2, 2), Click::new(1, 3, 3)];
        let sr = SequentialRules::fit(&clicks, SequentialRulesConfig::default());
        let rules = sr.rules_for(1);
        assert_eq!(rules[0].item, 2);
        assert!((rules[0].score - 1.0).abs() < 1e-6);
        assert_eq!(rules[1].item, 3);
        assert!((rules[1].score - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weights_accumulate_across_sessions() {
        let clicks = vec![
            Click::new(1, 1, 1),
            Click::new(1, 2, 2),
            Click::new(2, 1, 10),
            Click::new(2, 2, 11),
        ];
        let sr = SequentialRules::fit(&clicks, SequentialRulesConfig::default());
        assert!((sr.rules_for(1)[0].score - 2.0).abs() < 1e-6);
    }

    #[test]
    fn max_steps_limits_pairs() {
        let clicks =
            vec![Click::new(1, 1, 1), Click::new(1, 2, 2), Click::new(1, 3, 3)];
        let cfg = SequentialRulesConfig { max_steps: 1, ..Default::default() };
        let sr = SequentialRules::fit(&clicks, cfg);
        // Rule 1→3 (distance 2) is out of reach.
        assert!(sr.rules_for(1).iter().all(|r| r.item != 3));
    }

    #[test]
    fn predicts_from_last_item_and_skips_seen() {
        let clicks = vec![
            Click::new(1, 1, 1),
            Click::new(1, 2, 2),
            Click::new(1, 3, 3),
        ];
        let sr = SequentialRules::fit(&clicks, SequentialRulesConfig::default());
        let recs = Recommender::recommend(&sr, &[3, 1], 10);
        // From item 1: candidates 2, 3 — 3 already in session.
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].item, 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        let clicks = vec![Click::new(1, 7, 1), Click::new(1, 7, 2), Click::new(1, 8, 3)];
        let sr = SequentialRules::fit(&clicks, SequentialRulesConfig::default());
        assert!(sr.rules_for(7).iter().all(|r| r.item != 7));
    }

    #[test]
    fn empty_session_yields_nothing() {
        let sr = SequentialRules::fit(&[Click::new(1, 1, 1)], SequentialRulesConfig::default());
        assert!(Recommender::recommend(&sr, &[], 5).is_empty());
    }
}
