//! Item-to-item collaborative filtering — the **legacy** production system
//! of the A/B test (Section 5.2.3).
//!
//! The paper's incumbent recommender applies "a variant of classic
//! item-to-item collaborative filtering" (Sarwar et al.): for every catalogue
//! item, precompute the most similar items by cosine similarity over session
//! co-occurrence, then recommend the items most similar to what the user is
//! looking at. Unlike session-based kNN it conditions on *items*, not on the
//! evolving *session* — which is exactly the gap the A/B test measures.

use serenade_core::{Click, FxHashMap, ItemId, ItemScore, Recommender};
use serenade_dataset::sessionize;

use crate::common;

/// Configuration of the item-to-item model.
#[derive(Debug, Clone, Copy)]
pub struct ItemKnnConfig {
    /// Keep at most this many similar items per item.
    pub max_neighbors_per_item: usize,
    /// Cap on session length when counting co-occurrence pairs (quadratic).
    pub max_session_len: usize,
    /// How many of the most recent session items to condition on
    /// (1 = classic "customers who viewed this item also viewed").
    pub condition_on_last: usize,
}

impl Default for ItemKnnConfig {
    fn default() -> Self {
        Self { max_neighbors_per_item: 100, max_session_len: 25, condition_on_last: 1 }
    }
}

/// Precomputed item-to-item cosine similarities.
#[derive(Debug, Clone)]
pub struct ItemKnn {
    /// Per item: similar items sorted by descending similarity.
    similar: FxHashMap<ItemId, Vec<ItemScore>>,
    config: ItemKnnConfig,
}

impl ItemKnn {
    /// Fits the model on a click log.
    pub fn fit(clicks: &[Click], config: ItemKnnConfig) -> Self {
        let sessions = sessionize(clicks);
        let mut freq: FxHashMap<ItemId, u32> = FxHashMap::default();
        let mut cooc: FxHashMap<(ItemId, ItemId), u32> = FxHashMap::default();

        for s in &sessions {
            // Deduplicate, keep first occurrences, cap the length.
            let mut items: Vec<ItemId> = Vec::with_capacity(s.items.len().min(16));
            for &i in &s.items {
                if !items.contains(&i) {
                    items.push(i);
                    if items.len() >= config.max_session_len {
                        break;
                    }
                }
            }
            for (a_idx, &a) in items.iter().enumerate() {
                *freq.entry(a).or_insert(0) += 1;
                for &b in &items[a_idx + 1..] {
                    // Store each unordered pair once, canonically ordered.
                    let key = if a < b { (a, b) } else { (b, a) };
                    *cooc.entry(key).or_insert(0) += 1;
                }
            }
        }

        // Cosine similarity: co(a,b) / sqrt(freq(a) * freq(b)).
        let mut similar: FxHashMap<ItemId, Vec<ItemScore>> = FxHashMap::default();
        for (&(a, b), &co) in &cooc {
            let sim = co as f32 / ((freq[&a] as f32) * (freq[&b] as f32)).sqrt();
            similar.entry(a).or_default().push(ItemScore { item: b, score: sim });
            similar.entry(b).or_default().push(ItemScore { item: a, score: sim });
        }
        for list in similar.values_mut() {
            list.sort_unstable_by(|x, y| {
                y.score.partial_cmp(&x.score).expect("finite").then(x.item.cmp(&y.item))
            });
            list.truncate(config.max_neighbors_per_item);
        }
        Self { similar, config }
    }

    /// The most similar items to `item`, best first.
    pub fn similar_items(&self, item: ItemId) -> &[ItemScore] {
        self.similar.get(&item).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of items with at least one similar item.
    pub fn num_items(&self) -> usize {
        self.similar.len()
    }
}

impl Recommender for ItemKnn {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        if session.is_empty() {
            return Vec::new();
        }
        let from = session.len().saturating_sub(self.config.condition_on_last);
        let anchors = &session[from..];
        let mut scores: FxHashMap<ItemId, f32> = FxHashMap::default();
        // More recent anchors weigh more (linear ramp).
        for (rank, &anchor) in anchors.iter().enumerate() {
            let weight = (rank + 1) as f32 / anchors.len() as f32;
            for s in self.similar_items(anchor) {
                if !session.contains(&s.item) {
                    *scores.entry(s.item).or_insert(0.0) += weight * s.score;
                }
            }
        }
        common::rank_scores(scores, how_many)
    }

    fn name(&self) -> &str {
        "item-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks() -> Vec<Click> {
        // Items 1 and 2 co-occur twice; 1 and 3 once; 2 and 3 once.
        vec![
            Click::new(10, 1, 1),
            Click::new(10, 2, 2),
            Click::new(20, 1, 3),
            Click::new(20, 2, 4),
            Click::new(20, 3, 5),
            Click::new(30, 3, 6),
            Click::new(30, 4, 7),
        ]
    }

    #[test]
    fn cosine_similarities_are_correct() {
        let m = ItemKnn::fit(&clicks(), ItemKnnConfig::default());
        // freq: 1→2, 2→2, 3→2, 4→1. co(1,2)=2 → sim = 2/sqrt(4) = 1.
        let sim12 = m.similar_items(1).iter().find(|s| s.item == 2).unwrap().score;
        assert!((sim12 - 1.0).abs() < 1e-6);
        // co(1,3)=1 → sim = 1/sqrt(4) = 0.5.
        let sim13 = m.similar_items(1).iter().find(|s| s.item == 3).unwrap().score;
        assert!((sim13 - 0.5).abs() < 1e-6);
        // Symmetry.
        let sim31 = m.similar_items(3).iter().find(|s| s.item == 1).unwrap().score;
        assert!((sim31 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn recommends_most_similar_to_last_item() {
        let m = ItemKnn::fit(&clicks(), ItemKnnConfig::default());
        let recs = Recommender::recommend(&m, &[1], 10);
        assert_eq!(recs[0].item, 2);
        assert!(recs.iter().all(|r| r.item != 1));
    }

    #[test]
    fn conditioning_window_is_respected() {
        let cfg = ItemKnnConfig { condition_on_last: 1, ..Default::default() };
        let m = ItemKnn::fit(&clicks(), cfg);
        // With window 1, only item 4 matters; its only neighbour is 3.
        let recs = Recommender::recommend(&m, &[1, 4], 10);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].item, 3);
    }

    #[test]
    fn duplicate_session_items_counted_once() {
        let clicks = vec![
            Click::new(1, 7, 1),
            Click::new(1, 7, 2),
            Click::new(1, 8, 3),
        ];
        let m = ItemKnn::fit(&clicks, ItemKnnConfig::default());
        // freq(7) = 1 (session-level), co(7,8) = 1 → sim = 1.
        let sim = m.similar_items(7)[0].score;
        assert!((sim - 1.0).abs() < 1e-6);
    }

    #[test]
    fn neighbor_cap_truncates() {
        let mut clicks = Vec::new();
        // Item 0 co-occurs with 50 others.
        for i in 1..=50u64 {
            clicks.push(Click::new(i, 0, i * 10));
            clicks.push(Click::new(i, i, i * 10 + 1));
        }
        let cfg = ItemKnnConfig { max_neighbors_per_item: 5, ..Default::default() };
        let m = ItemKnn::fit(&clicks, cfg);
        assert_eq!(m.similar_items(0).len(), 5);
    }

    #[test]
    fn empty_session_or_unknown_item() {
        let m = ItemKnn::fit(&clicks(), ItemKnnConfig::default());
        assert!(Recommender::recommend(&m, &[], 5).is_empty());
        assert!(Recommender::recommend(&m, &[999], 5).is_empty());
    }
}
