//! Popularity baseline: always recommends the globally most-clicked items.
//!
//! The floor every session-aware recommender must beat; also used by the A/B
//! simulator as a sanity arm.

use serenade_core::{Click, FxHashMap, ItemId, ItemScore, Recommender};

/// Global popularity recommender.
#[derive(Debug, Clone)]
pub struct Popularity {
    /// Items sorted by descending click count (ties: ascending id).
    ranked: Vec<ItemScore>,
}

impl Popularity {
    /// Fits the baseline on a click log.
    pub fn fit(clicks: &[Click]) -> Self {
        let mut counts: FxHashMap<ItemId, u64> = FxHashMap::default();
        for c in clicks {
            *counts.entry(c.item_id).or_insert(0) += 1;
        }
        let total = clicks.len().max(1) as f32;
        let mut ranked: Vec<ItemScore> = counts
            .into_iter()
            .map(|(item, n)| ItemScore { item, score: n as f32 / total })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            b.score.partial_cmp(&a.score).expect("finite").then(a.item.cmp(&b.item))
        });
        Self { ranked }
    }

    /// Number of distinct items seen during fitting.
    pub fn num_items(&self) -> usize {
        self.ranked.len()
    }
}

impl Recommender for Popularity {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        // Skip items the user is already looking at.
        self.ranked
            .iter()
            .filter(|s| !session.contains(&s.item))
            .take(how_many)
            .copied()
            .collect()
    }

    fn name(&self) -> &str {
        "popularity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks() -> Vec<Click> {
        vec![
            Click::new(1, 10, 1),
            Click::new(1, 11, 2),
            Click::new(2, 10, 3),
            Click::new(2, 12, 4),
            Click::new(3, 10, 5),
            Click::new(3, 11, 6),
        ]
    }

    #[test]
    fn ranks_by_frequency() {
        let p = Popularity::fit(&clicks());
        let recs = p.recommend(&[], 3);
        assert_eq!(recs[0].item, 10); // 3 clicks
        assert_eq!(recs[1].item, 11); // 2 clicks
        assert_eq!(recs[2].item, 12); // 1 click
        assert!(recs[0].score > recs[1].score);
    }

    #[test]
    fn excludes_session_items() {
        let p = Popularity::fit(&clicks());
        let recs = p.recommend(&[10], 3);
        assert!(recs.iter().all(|r| r.item != 10));
        assert_eq!(recs[0].item, 11);
    }

    #[test]
    fn respects_how_many() {
        let p = Popularity::fit(&clicks());
        assert_eq!(p.recommend(&[], 2).len(), 2);
        assert_eq!(p.num_items(), 3);
    }

    #[test]
    fn empty_training_data() {
        let p = Popularity::fit(&[]);
        assert!(p.recommend(&[], 5).is_empty());
    }
}
