//! The incremental evaluation harness.
//!
//! For every test session `i₁ … i_L`, the harness replays the session the
//! way the shop frontend would: after each prefix `i₁ … i_t` (for
//! `t = 1 … L−1`) the recommender produces a top-`cutoff` list, which is
//! scored against the immediate next item `i_{t+1}` (MRR, HitRate) and
//! against all remaining items `i_{t+1} … i_L` (Precision, Recall, MAP).
//! Metric values are averaged over all prediction events, matching the
//! protocol of the comparison studies the paper replicates (Ludewig et al.).

use std::time::Instant;

use serenade_core::{FxHashSet, ItemId, Recommender};
use serenade_dataset::Session;

use crate::latency::LatencyRecorder;
use crate::ranking;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// List length `N` for the `@N` metrics (the paper reports `@20`).
    pub cutoff: usize,
    /// Optional cap on the number of prediction events (for smoke tests).
    pub max_events: Option<usize>,
    /// Record per-prediction latencies.
    pub record_latency: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { cutoff: 20, max_events: None, record_latency: false }
    }
}

/// Aggregated evaluation outcome.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Recommender name.
    pub name: String,
    /// Number of prediction events scored.
    pub events: usize,
    /// Mean reciprocal rank at the cutoff.
    pub mrr: f64,
    /// Hit rate (a.k.a. recall of the next item) at the cutoff.
    pub hit_rate: f64,
    /// Precision at the cutoff against the remaining session items.
    pub precision: f64,
    /// Recall at the cutoff against the remaining session items.
    pub recall: f64,
    /// Mean average precision at the cutoff.
    pub map: f64,
    /// Distinct items recommended at least once.
    pub distinct_recommended: usize,
    /// Per-prediction latencies, when requested.
    pub latency: Option<LatencyRecorder>,
}

#[derive(Default)]
struct Accumulator {
    events: usize,
    mrr: f64,
    hit: f64,
    precision: f64,
    recall: f64,
    map: f64,
    recommended: FxHashSet<ItemId>,
    latency: LatencyRecorder,
}

impl Accumulator {
    fn merge(&mut self, other: Accumulator) {
        self.events += other.events;
        self.mrr += other.mrr;
        self.hit += other.hit;
        self.precision += other.precision;
        self.recall += other.recall;
        self.map += other.map;
        self.recommended.extend(other.recommended);
        self.latency.merge(&other.latency);
    }

    fn into_result(self, name: &str, config: &EvalConfig) -> EvalResult {
        let n = self.events.max(1) as f64;
        EvalResult {
            name: name.to_string(),
            events: self.events,
            mrr: self.mrr / n,
            hit_rate: self.hit / n,
            precision: self.precision / n,
            recall: self.recall / n,
            map: self.map / n,
            distinct_recommended: self.recommended.len(),
            latency: config.record_latency.then_some(self.latency),
        }
    }
}

fn evaluate_sessions(
    recommender: &dyn Recommender,
    sessions: &[Session],
    config: &EvalConfig,
    budget: &mut usize,
) -> Accumulator {
    let mut acc = Accumulator::default();
    let mut prediction: Vec<ItemId> = Vec::with_capacity(config.cutoff);
    for session in sessions {
        for t in 1..session.items.len() {
            if *budget == 0 {
                return acc;
            }
            *budget -= 1;
            let prefix = &session.items[..t];
            let started = Instant::now();
            let scored = recommender.recommend(prefix, config.cutoff);
            if config.record_latency {
                acc.latency.record(started.elapsed());
            }
            prediction.clear();
            prediction.extend(scored.iter().map(|s| s.item));

            let next = session.items[t];
            let remaining: FxHashSet<ItemId> = session.items[t..].iter().copied().collect();

            acc.events += 1;
            acc.mrr += ranking::reciprocal_rank(&prediction, next);
            acc.hit += ranking::hit(&prediction, next);
            acc.precision += ranking::precision(&prediction, &remaining, config.cutoff);
            acc.recall += ranking::recall(&prediction, &remaining);
            acc.map += ranking::average_precision(&prediction, &remaining, config.cutoff);
            acc.recommended.extend(prediction.iter().copied());
        }
    }
    acc
}

/// Evaluates a recommender sequentially over the test sessions.
pub fn evaluate(
    recommender: &dyn Recommender,
    test: &[Session],
    config: &EvalConfig,
) -> EvalResult {
    let mut budget = config.max_events.unwrap_or(usize::MAX);
    let acc = evaluate_sessions(recommender, test, config, &mut budget);
    acc.into_result(recommender.name(), config)
}

/// Evaluates in parallel over `threads` worker threads (sessions are
/// partitioned; the metric averages are exact regardless of partitioning).
///
/// `max_events` is applied per partition as a proportional share.
pub fn evaluate_parallel<R: Recommender>(
    recommender: &R,
    test: &[Session],
    config: &EvalConfig,
    threads: usize,
) -> EvalResult {
    let threads = threads.max(1).min(test.len().max(1));
    if threads <= 1 {
        return evaluate(recommender, test, config);
    }
    let chunk = test.len().div_ceil(threads);
    let mut total = Accumulator::default();
    let partials = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for part in test.chunks(chunk) {
            let cfg = *config;
            handles.push(scope.spawn(move |_| {
                let mut budget = cfg
                    .max_events
                    .map(|m| m.div_ceil(threads))
                    .unwrap_or(usize::MAX);
                evaluate_sessions(recommender, part, &cfg, &mut budget)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect::<Vec<_>>()
    })
    .expect("evaluation scope");
    for p in partials {
        total.merge(p);
    }
    total.into_result(recommender.name(), config)
}

impl std::fmt::Display for EvalResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: events={} MRR={:.4} HR={:.4} Prec={:.4} Recall={:.4} MAP={:.4}",
            self.name, self.events, self.mrr, self.hit_rate, self.precision, self.recall, self.map
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::ItemScore;

    /// A recommender that always predicts a fixed list.
    struct Fixed(Vec<ItemId>);

    impl Recommender for Fixed {
        fn recommend(&self, _session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
            self.0
                .iter()
                .take(how_many)
                .enumerate()
                .map(|(i, &item)| ItemScore::new(item, 1.0 / (i + 1) as f32))
                .collect()
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    /// An oracle that always predicts the true next item (cheats by storing
    /// the sessions); used to pin the metric upper bounds.
    struct Oracle(Vec<Session>);

    impl Recommender for Oracle {
        fn recommend(&self, session: &[ItemId], _how_many: usize) -> Vec<ItemScore> {
            for s in &self.0 {
                if s.items.len() > session.len() && s.items[..session.len()] == *session {
                    return vec![ItemScore::new(s.items[session.len()], 1.0)];
                }
            }
            Vec::new()
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    fn sessions() -> Vec<Session> {
        vec![
            Session { id: 1, items: vec![1, 2, 3], start: 0, end: 2 },
            Session { id: 2, items: vec![4, 5], start: 10, end: 11 },
        ]
    }

    #[test]
    fn oracle_achieves_perfect_next_item_metrics() {
        let test = sessions();
        let oracle = Oracle(test.clone());
        let r = evaluate(&oracle, &test, &EvalConfig::default());
        assert_eq!(r.events, 3); // (3-1) + (2-1)
        assert!((r.mrr - 1.0).abs() < 1e-12);
        assert!((r.hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hopeless_recommender_scores_zero() {
        let test = sessions();
        let fixed = Fixed(vec![99, 98]);
        let r = evaluate(&fixed, &test, &EvalConfig::default());
        assert_eq!(r.mrr, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.map, 0.0);
        assert_eq!(r.distinct_recommended, 2);
    }

    #[test]
    fn fixed_list_partial_credit() {
        let test = vec![Session { id: 1, items: vec![1, 2], start: 0, end: 1 }];
        // Predicts [9, 2]: next item 2 at rank 2.
        let fixed = Fixed(vec![9, 2]);
        let cfg = EvalConfig { cutoff: 2, ..Default::default() };
        let r = evaluate(&fixed, &test, &cfg);
        assert_eq!(r.events, 1);
        assert!((r.mrr - 0.5).abs() < 1e-12);
        assert!((r.hit_rate - 1.0).abs() < 1e-12);
        assert!((r.precision - 0.5).abs() < 1e-12);
        assert!((r.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_events_caps_work() {
        let test = sessions();
        let fixed = Fixed(vec![1]);
        let cfg = EvalConfig { max_events: Some(1), ..Default::default() };
        let r = evaluate(&fixed, &test, &cfg);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let test: Vec<Session> = (0..20)
            .map(|i| Session {
                id: i,
                items: vec![i % 5, (i + 1) % 5, (i + 2) % 5, (i * 3) % 5],
                start: i,
                end: i + 3,
            })
            .collect();
        let fixed = Fixed(vec![0, 1, 2]);
        let cfg = EvalConfig { cutoff: 3, ..Default::default() };
        let seq = evaluate(&fixed, &test, &cfg);
        let par = evaluate_parallel(&fixed, &test, &cfg, 4);
        assert_eq!(seq.events, par.events);
        assert!((seq.mrr - par.mrr).abs() < 1e-12);
        assert!((seq.precision - par.precision).abs() < 1e-12);
        assert!((seq.map - par.map).abs() < 1e-12);
    }

    #[test]
    fn latency_recording_toggles() {
        let test = sessions();
        let fixed = Fixed(vec![1]);
        let without = evaluate(&fixed, &test, &EvalConfig::default());
        assert!(without.latency.is_none());
        let cfg = EvalConfig { record_latency: true, ..Default::default() };
        let with = evaluate(&fixed, &test, &cfg);
        assert_eq!(with.latency.unwrap().len(), 3);
    }

    #[test]
    fn display_is_informative() {
        let test = sessions();
        let r = evaluate(&Fixed(vec![1]), &test, &EvalConfig::default());
        let text = r.to_string();
        assert!(text.contains("MRR="));
        assert!(text.contains("fixed"));
    }
}
