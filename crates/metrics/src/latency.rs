//! Latency recording and percentile summaries.
//!
//! The paper reports per-request prediction latencies as medians and high
//! percentiles (p75 / p90 / p99.5 in Figures 3a–3c). This module provides a
//! simple exact recorder (sorts on summary) — sample counts in our
//! experiments are small enough that a sketch is unnecessary.
//!
//! For long-running callers (soak tests, the A/B simulator at scale) the
//! recorder also offers a **bounded reservoir mode**
//! ([`LatencyRecorder::with_max_samples`]): memory is capped at the
//! reservoir size while `count` / `mean` / `min` / `max` stay exact and
//! percentiles become a uniform-sample estimate. Production serving uses
//! the `serenade-telemetry` log-linear histogram instead, which bounds the
//! *relative error* of quantiles; the reservoir here bounds memory for
//! offline tooling without changing the recorder's API.

use std::time::Duration;

/// Collects individual latency observations in microseconds.
///
/// Two modes:
///
/// * **Exact** (default): every observation is retained; `summary()` sorts
///   and reads percentiles directly.
/// * **Bounded reservoir** ([`Self::with_max_samples`]): at most `max`
///   observations are retained via Algorithm R (each of the `n` observations
///   seen so far has probability `max/n` of being in the reservoir).
///   `count`, `mean`, `min` and `max` are still exact — they are tracked as
///   running aggregates — while the other percentiles are estimated from
///   the reservoir. The sampling RNG is seeded deterministically, so runs
///   are reproducible.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    /// Reservoir capacity; 0 means unbounded (exact mode).
    max_samples: usize,
    /// Total observations recorded, including ones not retained.
    seen: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
    rng: u64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self {
            samples_us: Vec::new(),
            max_samples: 0,
            seen: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            rng: 0x5E5E_ADE0_1A7E_4C3D,
        }
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder preallocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self { samples_us: Vec::with_capacity(n), ..Self::default() }
    }

    /// Creates a recorder in bounded reservoir mode: at most `max` samples
    /// are kept, so memory is O(`max`) no matter how long the run.
    /// `count` / `mean` / `min` / `max` remain exact; the percentiles in
    /// [`Self::summary`] become estimates from a uniform random sample of
    /// all observations.
    ///
    /// # Panics
    /// If `max` is zero.
    pub fn with_max_samples(max: usize) -> Self {
        assert!(max > 0, "reservoir capacity must be positive");
        Self { samples_us: Vec::with_capacity(max), max_samples: max, ..Self::default() }
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.record_us(latency.as_micros() as u64);
    }

    /// Records one observation given in microseconds.
    pub fn record_us(&mut self, micros: u64) {
        self.seen += 1;
        self.sum_us += micros as u128;
        self.min_us = self.min_us.min(micros);
        self.max_us = self.max_us.max(micros);
        self.offer_to_reservoir(micros);
    }

    /// Algorithm R step: retains `micros` with probability
    /// `max_samples / seen` (always, in exact mode).
    fn offer_to_reservoir(&mut self, micros: u64) {
        if self.max_samples == 0 || self.samples_us.len() < self.max_samples {
            self.samples_us.push(micros);
        } else {
            let j = (self.next_rand() % self.seen) as usize;
            if j < self.max_samples {
                self.samples_us[j] = micros;
            }
        }
    }

    /// SplitMix64 — deterministic, so bounded runs are reproducible.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Total number of observations recorded — in bounded mode this counts
    /// every observation, including ones the reservoir no longer retains
    /// (see [`Self::retained`]).
    pub fn len(&self) -> usize {
        self.seen as usize
    }

    /// Number of samples currently held in memory (`== len()` in exact
    /// mode, at most the reservoir capacity in bounded mode).
    pub fn retained(&self) -> usize {
        self.samples_us.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Merges another recorder's samples into this one.
    ///
    /// Exact aggregates (`count`, `sum`, `min`, `max`) merge exactly in all
    /// modes. For the percentile samples: if both recorders are exact the
    /// sample sets concatenate (lossless); if either side is bounded, the
    /// other recorder's *retained* samples are offered through this
    /// recorder's reservoir — an approximation that slightly over-weights
    /// the other side's recent history, which is fine for the offline
    /// reports this recorder serves.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        if self.max_samples == 0 && other.max_samples == 0 {
            self.samples_us.extend_from_slice(&other.samples_us);
            self.seen += other.seen;
        } else {
            for &us in &other.samples_us {
                self.seen += 1;
                self.offer_to_reservoir(us);
            }
            // Observations `other` saw but no longer retains still count.
            self.seen += other.seen - other.samples_us.len() as u64;
        }
    }

    /// Computes the summary; `None` if no samples were recorded.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.seen == 0 {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank]
        };
        Some(LatencySummary {
            count: self.seen as usize,
            mean_us: (self.sum_us / self.seen as u128) as u64,
            min_us: self.min_us,
            p50_us: pct(0.50),
            p75_us: pct(0.75),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p995_us: pct(0.995),
            max_us: self.max_us,
        })
    }
}

/// Percentile summary of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Minimum.
    pub min_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 75th percentile.
    pub p75_us: u64,
    /// 90th percentile (the paper's headline SLA percentile).
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.5th percentile (reported in Figures 3b/3c).
    pub p995_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={}us p50={}us p75={}us p90={}us p99={}us p99.5={}us max={}us",
            self.count,
            self.mean_us,
            self.p50_us,
            self.p75_us,
            self.p90_us,
            self.p99_us,
            self.p995_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_has_no_summary() {
        assert!(LatencyRecorder::new().summary().is_none());
        assert!(LatencyRecorder::new().is_empty());
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let mut r = LatencyRecorder::with_capacity(1000);
        for us in 1..=1000u64 {
            r.record_us(us);
        }
        let s = r.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
        assert!((s.p50_us as i64 - 500).abs() <= 1, "p50 = {}", s.p50_us);
        assert!((s.p90_us as i64 - 900).abs() <= 1, "p90 = {}", s.p90_us);
        assert!((s.p995_us as i64 - 995).abs() <= 1);
        assert_eq!(s.mean_us, 500);
    }

    #[test]
    fn record_duration() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_micros(42));
        assert_eq!(r.summary().unwrap().p50_us, 42);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record_us(1);
        b.record_us(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.summary().unwrap().max_us, 3);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut r = LatencyRecorder::new();
        for us in [9u64, 2, 88, 31, 5, 77, 41, 3, 250, 6] {
            r.record_us(us);
        }
        let s = r.summary().unwrap();
        assert!(s.min_us <= s.p50_us);
        assert!(s.p50_us <= s.p75_us);
        assert!(s.p75_us <= s.p90_us);
        assert!(s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.p995_us);
        assert!(s.p995_us <= s.max_us);
    }

    #[test]
    fn bounded_reservoir_caps_memory_but_keeps_exact_aggregates() {
        let mut r = LatencyRecorder::with_max_samples(200);
        for us in 1..=50_000u64 {
            r.record_us(us);
        }
        assert_eq!(r.len(), 50_000);
        assert_eq!(r.retained(), 200);
        let s = r.summary().unwrap();
        // count / mean / min / max are exact regardless of the reservoir.
        assert_eq!(s.count, 50_000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 50_000);
        assert_eq!(s.mean_us, 25_000);
        // Percentiles estimate from a 200-point uniform sample; generous
        // bounds (the RNG is seeded, so this is deterministic).
        assert!((15_000..=35_000).contains(&s.p50_us), "p50 = {}", s.p50_us);
        assert!((40_000..=50_000).contains(&s.p90_us), "p90 = {}", s.p90_us);
        assert!(s.p50_us <= s.p75_us && s.p75_us <= s.p90_us);
    }

    #[test]
    fn bounded_merge_keeps_exact_aggregates() {
        let mut a = LatencyRecorder::with_max_samples(64);
        let mut b = LatencyRecorder::with_max_samples(64);
        for us in 1..=1_000u64 {
            a.record_us(us);
        }
        for us in 5_000..=6_000u64 {
            b.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.len(), 2_001);
        assert!(a.retained() <= 64);
        let s = a.summary().unwrap();
        assert_eq!(s.count, 2_001);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 6_000);
    }

    #[test]
    fn exact_into_bounded_merge_flows_through_the_reservoir() {
        let mut bounded = LatencyRecorder::with_max_samples(32);
        let mut exact = LatencyRecorder::new();
        for us in 1..=500u64 {
            exact.record_us(us);
        }
        bounded.merge(&exact);
        assert_eq!(bounded.len(), 500);
        assert_eq!(bounded.retained(), 32);
        assert_eq!(bounded.summary().unwrap().max_us, 500);
    }

    #[test]
    fn display_contains_key_percentiles() {
        let mut r = LatencyRecorder::new();
        r.record_us(10);
        let text = r.summary().unwrap().to_string();
        assert!(text.contains("p90="));
        assert!(text.contains("p99.5="));
    }
}
