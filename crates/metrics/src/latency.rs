//! Latency recording and percentile summaries.
//!
//! The paper reports per-request prediction latencies as medians and high
//! percentiles (p75 / p90 / p99.5 in Figures 3a–3c). This module provides a
//! simple exact recorder (sorts on summary) — sample counts in our
//! experiments are small enough that a sketch is unnecessary.

use std::time::Duration;

/// Collects individual latency observations in microseconds.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder preallocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self { samples_us: Vec::with_capacity(n) }
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
    }

    /// Records one observation given in microseconds.
    pub fn record_us(&mut self, micros: u64) {
        self.samples_us.push(micros);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Computes the summary; `None` if no samples were recorded.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank]
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        Some(LatencySummary {
            count: sorted.len(),
            mean_us: (sum / sorted.len() as u128) as u64,
            min_us: sorted[0],
            p50_us: pct(0.50),
            p75_us: pct(0.75),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            p995_us: pct(0.995),
            max_us: *sorted.last().expect("non-empty"),
        })
    }
}

/// Percentile summary of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Minimum.
    pub min_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 75th percentile.
    pub p75_us: u64,
    /// 90th percentile (the paper's headline SLA percentile).
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.5th percentile (reported in Figures 3b/3c).
    pub p995_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={}us p50={}us p75={}us p90={}us p99={}us p99.5={}us max={}us",
            self.count,
            self.mean_us,
            self.p50_us,
            self.p75_us,
            self.p90_us,
            self.p99_us,
            self.p995_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_has_no_summary() {
        assert!(LatencyRecorder::new().summary().is_none());
        assert!(LatencyRecorder::new().is_empty());
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let mut r = LatencyRecorder::with_capacity(1000);
        for us in 1..=1000u64 {
            r.record_us(us);
        }
        let s = r.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
        assert!((s.p50_us as i64 - 500).abs() <= 1, "p50 = {}", s.p50_us);
        assert!((s.p90_us as i64 - 900).abs() <= 1, "p90 = {}", s.p90_us);
        assert!((s.p995_us as i64 - 995).abs() <= 1);
        assert_eq!(s.mean_us, 500);
    }

    #[test]
    fn record_duration() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_micros(42));
        assert_eq!(r.summary().unwrap().p50_us, 42);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record_us(1);
        b.record_us(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.summary().unwrap().max_us, 3);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut r = LatencyRecorder::new();
        for us in [9u64, 2, 88, 31, 5, 77, 41, 3, 250, 6] {
            r.record_us(us);
        }
        let s = r.summary().unwrap();
        assert!(s.min_us <= s.p50_us);
        assert!(s.p50_us <= s.p75_us);
        assert!(s.p75_us <= s.p90_us);
        assert!(s.p90_us <= s.p99_us);
        assert!(s.p99_us <= s.p995_us);
        assert!(s.p995_us <= s.max_us);
    }

    #[test]
    fn display_contains_key_percentiles() {
        let mut r = LatencyRecorder::new();
        r.record_us(10);
        let text = r.summary().unwrap().to_string();
        assert!(text.contains("p90="));
        assert!(text.contains("p99.5="));
    }
}
