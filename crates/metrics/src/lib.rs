//! # serenade-metrics — evaluation of session-based recommenders
//!
//! Implements the ranking metrics and the incremental evaluation protocol of
//! the paper's Section 5.1: for every held-out test session, each prefix is
//! fed to the recommender and the prediction list is compared against the
//! immediate next item (MRR@N, HitRate@N) and against all remaining items of
//! the session (Precision@N, Recall@N, MAP@N) — the protocol of the
//! session-rec comparison studies the paper replicates.
//!
//! * [`ranking`] — per-event metric computations.
//! * [`harness`] — sequential and multi-threaded evaluation drivers.
//! * [`latency`] — latency recording and percentile summaries (used by the
//!   microbenchmarks and the serving load tests).

#![warn(missing_docs)]

pub mod harness;
pub mod latency;
pub mod ranking;

pub use harness::{evaluate, evaluate_parallel, EvalConfig, EvalResult};
pub use latency::{LatencyRecorder, LatencySummary};
pub use ranking::{average_precision, hit, precision, recall, reciprocal_rank};
