//! Per-event ranking metrics.
//!
//! All functions take the prediction list in rank order (best first) and are
//! pure; aggregation over events happens in [`crate::harness`].

use serenade_core::{FxHashSet, ItemId};

/// Reciprocal rank of `target` in `predictions` (1-based), 0 if absent.
pub fn reciprocal_rank(predictions: &[ItemId], target: ItemId) -> f64 {
    predictions
        .iter()
        .position(|&p| p == target)
        .map(|idx| 1.0 / (idx + 1) as f64)
        .unwrap_or(0.0)
}

/// 1.0 if `target` occurs in `predictions`, else 0.0.
pub fn hit(predictions: &[ItemId], target: ItemId) -> f64 {
    if predictions.contains(&target) {
        1.0
    } else {
        0.0
    }
}

/// Fraction of predictions that are relevant: `|P ∩ R| / cutoff`.
///
/// Divides by the evaluation `cutoff` (not the possibly shorter prediction
/// list) so that a recommender returning fewer items is not rewarded.
pub fn precision(predictions: &[ItemId], relevant: &FxHashSet<ItemId>, cutoff: usize) -> f64 {
    debug_assert!(predictions.len() <= cutoff);
    if cutoff == 0 {
        return 0.0;
    }
    let hits = predictions.iter().filter(|p| relevant.contains(p)).count();
    hits as f64 / cutoff as f64
}

/// Fraction of relevant items retrieved: `|P ∩ R| / |R|`.
///
/// Counts *distinct* retrieved items, so a prediction list with duplicates
/// (which a sane recommender never emits, but the metric must tolerate)
/// stays within `[0, 1]`.
pub fn recall(predictions: &[ItemId], relevant: &FxHashSet<ItemId>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits: FxHashSet<ItemId> =
        predictions.iter().filter(|p| relevant.contains(p)).copied().collect();
    hits.len() as f64 / relevant.len() as f64
}

/// Average precision at the list length, normalised by
/// `min(cutoff, |R|)` — the usual AP@N used for MAP@N.
pub fn average_precision(
    predictions: &[ItemId],
    relevant: &FxHashSet<ItemId>,
    cutoff: usize,
) -> f64 {
    let denom = cutoff.min(relevant.len());
    if denom == 0 {
        return 0.0;
    }
    // Only the first occurrence of a relevant item counts (duplicate
    // tolerance, see `recall`).
    let mut seen: FxHashSet<ItemId> = FxHashSet::default();
    let mut sum = 0.0;
    for (idx, &p) in predictions.iter().enumerate() {
        if relevant.contains(&p) && seen.insert(p) {
            sum += seen.len() as f64 / (idx + 1) as f64;
        }
    }
    sum / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[ItemId]) -> FxHashSet<ItemId> {
        items.iter().copied().collect()
    }

    #[test]
    fn reciprocal_rank_positions() {
        assert_eq!(reciprocal_rank(&[5, 6, 7], 5), 1.0);
        assert_eq!(reciprocal_rank(&[5, 6, 7], 6), 0.5);
        assert_eq!(reciprocal_rank(&[5, 6, 7], 7), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&[5, 6, 7], 8), 0.0);
        assert_eq!(reciprocal_rank(&[], 8), 0.0);
    }

    #[test]
    fn hit_is_binary() {
        assert_eq!(hit(&[1, 2], 2), 1.0);
        assert_eq!(hit(&[1, 2], 3), 0.0);
    }

    #[test]
    fn precision_divides_by_cutoff() {
        let rel = set(&[1, 2, 3]);
        // 2 hits out of a cutoff of 4, even though only 3 items returned.
        assert_eq!(precision(&[1, 2, 9], &rel, 4), 0.5);
        assert_eq!(precision(&[], &rel, 4), 0.0);
    }

    #[test]
    fn recall_divides_by_relevant() {
        let rel = set(&[1, 2, 3, 4]);
        assert_eq!(recall(&[1, 9, 2], &rel), 0.5);
        assert_eq!(recall(&[9], &rel), 0.0);
        assert_eq!(recall(&[1], &FxHashSet::default()), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let rel = set(&[1, 2]);
        // Perfect ranking: AP = (1/1 + 2/2) / 2 = 1.
        assert_eq!(average_precision(&[1, 2, 9], &rel, 3), 1.0);
        // No hits.
        assert_eq!(average_precision(&[8, 9], &rel, 3), 0.0);
    }

    #[test]
    fn average_precision_partial() {
        let rel = set(&[1, 2]);
        // Hits at positions 2 and 4: AP = (1/2 + 2/4) / 2 = 0.5.
        let ap = average_precision(&[9, 1, 8, 2], &rel, 4);
        assert!((ap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_within_unit_interval() {
        let rel = set(&[1, 2, 3]);
        let preds = [3, 9, 1];
        for v in [
            reciprocal_rank(&preds, 1),
            hit(&preds, 1),
            precision(&preds, &rel, 3),
            recall(&preds, &rel),
            average_precision(&preds, &rel, 3),
        ] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}
