//! Randomized differential testing of session deletion (unlearning) and
//! touched-item tracking.
//!
//! The unlearning contract: after `delete_session(s)`, the published
//! snapshot must be indistinguishable from a from-scratch build over a click
//! log that never contained `s` — for *random* logs, configs, batch splits
//! and retention caps, including interleaved deletes and appends, and
//! regardless of whether the indexer took fast-path appends or rebuild
//! fallbacks along the way. Tombstones must hold: clicks for a deleted
//! session arriving after the delete are discarded, never resurrected.
//!
//! The epoch contract: the items drained by `drain_touched()` across a span
//! of mutations must be a superset of the *semantic* snapshot diff
//! ([`serenade_index::changed_items`]) over that span — the soundness
//! condition for epoch-bucketed cache invalidation (an untouched item's
//! cached prediction may survive the publish).

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_core::{Click, SessionIndex, VmisConfig, VmisKnn};
use serenade_index::{changed_items, IncrementalIndexer, TouchedItems};

/// Random click logs: small id spaces force collisions (shared items across
/// sessions, duplicate items within a session, timestamp ties).
fn clicks_strategy() -> impl Strategy<Value = Vec<Click>> {
    vec((1u64..=20, 1u64..=12, 0u64..=300), 1..120).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(session, item, ts)| Click::new(session, item, ts))
            .collect()
    })
}

/// Random-but-valid configs spanning the knobs that alter the scoring path.
fn config_strategy() -> impl Strategy<Value = VmisConfig> {
    (1usize..=12, 1usize..=8, 1usize..=10, 1usize..=6, any::<bool>()).prop_map(
        |(m, k, how_many, max_session_len, exclude)| VmisConfig {
            m,
            k,
            how_many,
            max_session_len,
            exclude_session_items: exclude,
            ..VmisConfig::default()
        },
    )
}

/// Feeds the log to the indexer in batches split at arbitrary points.
fn apply_split(inc: &mut IncrementalIndexer, clicks: &[Click], splits: &[usize]) {
    let mut start = 0;
    for &cut in splits {
        let end = cut.min(clicks.len()).max(start);
        inc.apply_batch(&clicks[start..end]).expect("batch applies");
        start = end;
    }
    inc.apply_batch(&clicks[start..]).expect("final batch applies");
}

/// Asserts the two indexes are structurally identical.
fn assert_same(a: &SessionIndex, b: &SessionIndex) -> Result<(), String> {
    prop_assert_eq!(a.stats(), b.stats());
    for sid in 0..a.num_sessions() as u32 {
        prop_assert_eq!(a.session_items(sid), b.session_items(sid));
        prop_assert_eq!(a.session_timestamp(sid), b.session_timestamp(sid));
    }
    for item in a.items() {
        prop_assert_eq!(a.postings(item), b.postings(item));
        prop_assert_eq!(a.item_support(item), b.item_support(item));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn deletion_equals_scratch_build_without_the_session(
        clicks in clicks_strategy(),
        splits in vec(0usize..120, 0..4),
        m_max in 1usize..10,
        victim in 1u64..=20,
    ) {
        let mut inc = IncrementalIndexer::new(m_max).expect("positive m_max");
        apply_split(&mut inc, &clicks, &splits);
        let existed = clicks.iter().any(|c| c.session_id == victim);
        prop_assert_eq!(inc.delete_session(victim).expect("delete applies"), existed);

        let without: Vec<Click> =
            clicks.iter().filter(|c| c.session_id != victim).copied().collect();
        if without.is_empty() {
            prop_assert!(inc.snapshot().is_err(), "emptied index has no snapshot");
            return Ok(());
        }
        let reference = SessionIndex::build(&without, m_max).expect("non-empty log");
        assert_same(&inc.snapshot().expect("non-empty"), &reference)?;
    }

    #[test]
    fn deleted_session_never_influences_recommendations(
        clicks in clicks_strategy(),
        config in config_strategy(),
        splits in vec(0usize..120, 0..4),
        victim in 1u64..=20,
        session in vec(1u64..=14, 1..8),
    ) {
        let m_max = config.m.max(4);
        let without: Vec<Click> =
            clicks.iter().filter(|c| c.session_id != victim).copied().collect();
        if without.is_empty() {
            return Ok(()); // victim was the whole log: nothing to compare
        }

        let mut inc = IncrementalIndexer::new(m_max).expect("positive m_max");
        apply_split(&mut inc, &clicks, &splits);
        inc.delete_session(victim).expect("delete applies");
        let unlearned = VmisKnn::new(inc.snapshot().expect("non-empty"), config.clone())
            .expect("valid config");
        let reference = VmisKnn::new(
            SessionIndex::build(&without, m_max).expect("non-empty"),
            config,
        )
        .expect("valid config");
        prop_assert_eq!(
            unlearned.recommend(&session),
            reference.recommend(&session),
            "deleted session still influences predictions"
        );
    }

    #[test]
    fn tombstones_survive_interleaved_appends(
        before in clicks_strategy(),
        after in clicks_strategy(),
        splits in vec(0usize..120, 0..3),
        m_max in 1usize..10,
        victim in 1u64..=20,
    ) {
        // Delete between two traffic spans: clicks for the victim in the
        // second span must be discarded, everything else must apply.
        let mut inc = IncrementalIndexer::new(m_max).expect("positive m_max");
        apply_split(&mut inc, &before, &splits);
        inc.delete_session(victim).expect("delete applies");
        apply_split(&mut inc, &after, &splits);

        let expected: Vec<Click> = before
            .iter()
            .chain(after.iter())
            .filter(|c| c.session_id != victim)
            .copied()
            .collect();
        if expected.is_empty() {
            prop_assert!(inc.snapshot().is_err());
            return Ok(());
        }
        let reference = SessionIndex::build(&expected, m_max).expect("non-empty log");
        assert_same(&inc.snapshot().expect("non-empty"), &reference)?;
    }

    #[test]
    fn drained_touched_set_covers_the_semantic_diff(
        base in clicks_strategy(),
        more in clicks_strategy(),
        splits in vec(0usize..120, 0..3),
        m_max in 1usize..10,
        victim in 1u64..=20,
    ) {
        // Snapshot, mutate (appends + a delete), snapshot again: every item
        // the semantic diff reports changed must have been drained as
        // touched. The converse (precision) is not required — touched is an
        // over-approximation — but soundness is what cache validity needs.
        let mut inc = IncrementalIndexer::new(m_max).expect("positive m_max");
        apply_split(&mut inc, &base, &splits);
        let Ok(snap_before) = inc.snapshot() else { return Ok(()) };
        inc.drain_touched();

        apply_split(&mut inc, &more, &splits);
        inc.delete_session(victim).expect("delete applies");
        let Ok(snap_after) = inc.snapshot() else { return Ok(()) };

        let touched = inc.drain_touched();
        let diff = changed_items(&snap_before, &snap_after);
        match touched {
            TouchedItems::All => {}
            TouchedItems::Items(ref set) => {
                let missing: Vec<u64> =
                    diff.iter().filter(|i| !set.contains(i)).copied().collect();
                prop_assert!(
                    missing.is_empty(),
                    "semantically changed items not reported as touched: {:?} \
                     (touched = {:?})",
                    missing,
                    set
                );
            }
        }
    }

    #[test]
    fn retention_and_deletion_compose_on_random_logs(
        clicks in clicks_strategy(),
        splits in vec(0usize..120, 0..4),
        m_max in 1usize..10,
        cap in 10usize..60,
        victim in 1u64..=20,
    ) {
        // With a retention cap in play, a delete must still leave the index
        // equal to a from-scratch build over exactly the retained log (which
        // never contains the victim).
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(m_max, cap)
            .expect("valid cap");
        apply_split(&mut inc, &clicks, &splits);
        inc.delete_session(victim).expect("delete applies");
        prop_assert!(inc.retained_log().iter().all(|c| c.session_id != victim));
        if inc.retained_log().is_empty() {
            prop_assert!(inc.snapshot().is_err());
            return Ok(());
        }
        let reference =
            SessionIndex::build(inc.retained_log(), m_max).expect("non-empty log");
        assert_same(&inc.snapshot().expect("non-empty"), &reference)?;
    }
}

/// The drained touched set must also cover pure-append spans (the publish
/// fast path) — checked deterministically here since the proptest above
/// always includes a delete.
#[test]
fn append_only_publish_touches_cover_the_diff() {
    let mut inc = IncrementalIndexer::new(6).expect("positive m_max");
    let mut log: Vec<Click> = Vec::new();
    for s in 1..=30u64 {
        log.push(Click::new(s, s % 7, s * 10));
        log.push(Click::new(s, (s + 3) % 7, s * 10 + 1));
    }
    inc.apply_batch(&log).expect("seed batch");
    let before = inc.snapshot().expect("non-empty");
    inc.drain_touched();

    inc.apply_batch(&[Click::new(31, 2, 1_000), Click::new(31, 9, 1_001)])
        .expect("append batch");
    let after = inc.snapshot().expect("non-empty");
    let touched = inc.drain_touched();
    for item in changed_items(&before, &after) {
        assert!(touched.contains(item), "item {item} changed but was not touched");
    }
}
