//! Structured fuzz-style suite for [`serenade_index::binfmt::read_index`]
//! on hostile bytes.
//!
//! The binary index format is the artifact-*distribution* format: the
//! router tier pushes these bytes over sockets to serving nodes, so the
//! reader must survive attacker-controlled input. The contract under test:
//!
//! * **no panic** on any input — every malformation is a clean
//!   [`BinError`];
//! * truncation at *any* byte offset is rejected;
//! * any single bit flip anywhere in the stream is rejected (FNV-1a over
//!   the payload plus the length/checksum trailer covers every region);
//! * declared counts larger than the bytes present are rejected **before**
//!   any allocation sized from them — a 16-byte hostile frame must not be
//!   able to request gigabytes;
//! * a declared payload length beyond `MAX_PAYLOAD_BYTES` is rejected
//!   before any payload read.

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_core::{Click, SessionIndex};
use serenade_index::binfmt::{read_index, write_index, BinError, MAX_PAYLOAD_BYTES};

fn sample_artefact() -> Vec<u8> {
    let mut clicks = Vec::new();
    for s in 0..30u64 {
        clicks.push(Click::new(s + 1, s % 5, 100 + s * 10));
        clicks.push(Click::new(s + 1, (s + 1) % 5, 101 + s * 10));
    }
    let index = SessionIndex::build(&clicks, 8).unwrap();
    let mut out = Vec::new();
    write_index(&index, &mut out).unwrap();
    out
}

/// FNV-1a over a byte slice — mirrors the writer so hostile frames can
/// carry a *valid* checksum and exercise the structural validation behind
/// it, not just the checksum gate.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Wraps a raw payload in a well-formed header + trailer (correct magic,
/// length and checksum), so only the payload's *contents* are hostile.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 48);
    out.extend_from_slice(b"SRNIDX\x02\x00");
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"SRNEND\x02\x00");
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

fn assert_clean_corrupt(bytes: &[u8], what: &str) {
    match read_index(bytes) {
        Err(BinError::Corrupt(_)) | Err(BinError::Core(_)) | Err(BinError::Io(_)) => {}
        Ok(_) => panic!("{what}: hostile input was accepted"),
    }
}

#[test]
fn valid_artefact_still_loads() {
    let bytes = sample_artefact();
    let index = read_index(&bytes[..]).expect("well-formed artefact must load");
    assert!(index.num_sessions() > 0);
}

#[test]
fn every_truncation_is_rejected_without_panic() {
    let bytes = sample_artefact();
    for cut in 0..bytes.len() {
        assert!(
            read_index(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} was accepted",
            bytes.len()
        );
    }
}

#[test]
fn oversized_declared_payload_is_rejected_before_allocation() {
    // A 24-byte frame claiming a multi-exabyte payload: the reader must
    // reject it from the header alone (the `take`-bounded incremental read
    // means even a cap-sized claim cannot out-allocate the bytes present).
    for claim in [MAX_PAYLOAD_BYTES + 1, u64::MAX, u64::MAX / 2] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SRNIDX\x02\x00");
        bytes.extend_from_slice(&claim.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert_clean_corrupt(&bytes, "oversized declared payload");
    }
}

#[test]
fn declared_counts_cannot_out_allocate_the_payload() {
    // Valid checksum, hostile structure: every declared count field is
    // probed with values far beyond what the payload holds. A reader that
    // allocates from declared counts would request gigabytes here.
    let huge = [u64::MAX, u64::MAX / 8, u32::MAX as u64, 1 << 40];

    for &n in &huge {
        // num_sessions
        let mut payload = Vec::new();
        payload.extend_from_slice(&8u64.to_le_bytes()); // m_max
        payload.extend_from_slice(&n.to_le_bytes());
        assert_clean_corrupt(&frame(&payload), "hostile num_sessions");

        // flat item count, behind a minimal valid session block
        let mut payload = Vec::new();
        payload.extend_from_slice(&8u64.to_le_bytes()); // m_max
        payload.extend_from_slice(&0u64.to_le_bytes()); // num_sessions = 0
        payload.extend_from_slice(&0u32.to_le_bytes()); // offsets[0]
        payload.extend_from_slice(&n.to_le_bytes()); // flat_len
        assert_clean_corrupt(&frame(&payload), "hostile flat_len");

        // posting count
        let mut payload = Vec::new();
        payload.extend_from_slice(&8u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes()); // flat_len = 0
        payload.extend_from_slice(&n.to_le_bytes()); // num_postings
        assert_clean_corrupt(&frame(&payload), "hostile num_postings");

        // per-posting session-list length
        let mut payload = Vec::new();
        payload.extend_from_slice(&8u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes()); // one posting
        payload.extend_from_slice(&7u64.to_le_bytes()); // item id
        payload.extend_from_slice(&1u32.to_le_bytes()); // support
        // Saturate: plen is a u32 field, and a truncating cast could wrap
        // a hostile count to a harmlessly small (even zero) one.
        payload.extend_from_slice(&(n.min(u32::MAX as u64) as u32).to_le_bytes()); // plen
        assert_clean_corrupt(&frame(&payload), "hostile posting length");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // Any single bit flip anywhere in a valid artefact is rejected: the
    // payload is covered by FNV-1a (single-byte steps are injective, so a
    // one-bit change always changes the hash), the header and trailer
    // cross-check each other, and the magics are compared byte-for-byte.
    #[test]
    fn any_single_bit_flip_is_rejected(
        byte_pick in any::<u64>(),
        bit in 0usize..8,
    ) {
        let mut bytes = sample_artefact();
        let pos = (byte_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            read_index(&bytes[..]).is_err(),
            "bit {} of byte {} flipped and the artefact was still accepted",
            bit, pos
        );
    }

    // Random truncation points (denser sampling than the exhaustive unit
    // test allows on bigger artefacts) are rejected without panic.
    #[test]
    fn random_truncations_are_rejected(cut_pick in any::<u64>()) {
        let bytes = sample_artefact();
        let cut = (cut_pick % bytes.len() as u64) as usize;
        prop_assert!(read_index(&bytes[..cut]).is_err(), "cut at {} accepted", cut);
    }

    // Pure garbage never panics; acceptance would require forging magic,
    // checksum, trailer and structural validation all at once.
    #[test]
    fn random_garbage_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        prop_assert!(read_index(&bytes[..]).is_err());
    }

    // Hostile-but-checksummed payloads (random structure bytes behind a
    // valid header/trailer) are cleanly rejected by structural validation.
    #[test]
    fn checksummed_garbage_payloads_fail_cleanly(payload in vec(any::<u8>(), 0..256)) {
        let framed = frame(&payload);
        // Either rejected outright, or (for the rare structurally-valid
        // accident) a well-formed index — never a panic. An empty payload
        // can't happen from the writer but must still not crash the reader.
        let _ = read_index(&framed[..]);
    }
}
