//! Randomized differential testing of the three VMIS-kNN execution paths.
//!
//! The hand-built fixtures in the unit suites pin down specific behaviours;
//! this suite closes the gap the satellite task calls out: over *random*
//! click logs and configs, the core [`VmisKnn`] kernel, the bitpacked
//! [`CompressedIndex::recommend`] path, and a recommender running on an
//! [`IncrementalIndexer::snapshot`] must produce bit-identical output — the
//! same guarantee DESIGN.md states for the fixture tests, now sampled from
//! a much larger input space (shrinking gives a minimal counterexample on
//! failure).

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_core::{Click, SessionIndex, VmisConfig, VmisKnn};
use serenade_index::{CompressedIndex, IncrementalIndexer};

/// Random click logs: small id spaces force collisions (shared items across
/// sessions, duplicate items within a session, timestamp ties).
fn clicks_strategy() -> impl Strategy<Value = Vec<Click>> {
    vec((1u64..=20, 1u64..=12, 0u64..=300), 1..120).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(session, item, ts)| Click::new(session, item, ts))
            .collect()
    })
}

/// Random-but-valid configs spanning the knobs that alter the scoring path.
fn config_strategy() -> impl Strategy<Value = VmisConfig> {
    (1usize..=12, 1usize..=8, 1usize..=10, 1usize..=6, any::<bool>(), any::<bool>()).prop_map(
        |(m, k, how_many, max_session_len, early_stopping, exclude)| VmisConfig {
            m,
            k,
            how_many,
            max_session_len,
            early_stopping,
            exclude_session_items: exclude,
            ..VmisConfig::default()
        },
    )
}

/// Random evolving sessions drawn from the same item space as the history.
fn session_strategy() -> impl Strategy<Value = Vec<u64>> {
    vec(1u64..=14, 1..8)
}

/// Feeds the log to the incremental indexer in batches split at arbitrary
/// points, exercising both the append fast path and the rebuild fallback.
fn incremental_over(clicks: &[Click], splits: &[usize], m_max: usize) -> IncrementalIndexer {
    let mut inc = IncrementalIndexer::new(m_max).expect("positive m_max");
    let mut start = 0;
    for &cut in splits {
        let end = cut.min(clicks.len()).max(start);
        inc.apply_batch(&clicks[start..end]).expect("batch applies");
        start = end;
    }
    inc.apply_batch(&clicks[start..]).expect("final batch applies");
    inc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_execution_paths_agree_on_random_inputs(
        clicks in clicks_strategy(),
        config in config_strategy(),
        sessions in vec(session_strategy(), 1..6),
        splits in vec(0usize..120, 0..4),
    ) {
        let m_max = config.m.max(4);
        let index = SessionIndex::build(&clicks, m_max).expect("non-empty log");
        let core = VmisKnn::new(index.clone(), config.clone()).expect("valid config");
        let compressed = CompressedIndex::from_index(&index);
        let inc = incremental_over(&clicks, &splits, m_max);
        let inc_core = VmisKnn::new(inc.snapshot().expect("non-empty"), config.clone())
            .expect("valid config");

        for session in &sessions {
            let reference = core.recommend(session);
            let via_compressed = compressed.recommend(session, &config).expect("valid config");
            prop_assert_eq!(
                &reference, &via_compressed,
                "compressed path diverged on session {:?}", session
            );
            let via_incremental = inc_core.recommend(session);
            prop_assert_eq!(
                &reference, &via_incremental,
                "incremental snapshot diverged on session {:?}", session
            );
        }
    }

    #[test]
    fn incremental_snapshot_equals_scratch_build_on_random_logs(
        clicks in clicks_strategy(),
        splits in vec(0usize..120, 0..4),
        m_max in 1usize..10,
    ) {
        let reference = SessionIndex::build(&clicks, m_max).expect("non-empty log");
        let inc = incremental_over(&clicks, &splits, m_max);
        let snapshot = inc.snapshot().expect("non-empty");
        prop_assert_eq!(snapshot.stats(), reference.stats());
        for sid in 0..reference.num_sessions() as u32 {
            prop_assert_eq!(snapshot.session_items(sid), reference.session_items(sid));
            prop_assert_eq!(snapshot.session_timestamp(sid), reference.session_timestamp(sid));
        }
        for item in reference.items() {
            prop_assert_eq!(snapshot.postings(item), reference.postings(item));
            prop_assert_eq!(snapshot.item_support(item), reference.item_support(item));
        }
    }
}
