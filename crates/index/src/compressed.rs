//! Delta+varint compressed index with on-the-fly decoding queries.
//!
//! Section 7 of the paper lists "running the similarity computation on a
//! compressed version of the index" as future work. The posting lists
//! dominate the index footprint (`O(|I| · m)` session ids); because each
//! list is strictly descending, consecutive ids can be stored as gaps, and
//! gaps are small for popular items — ideal varint territory.
//!
//! Queries decode lazily: the item-intersection loop of VMIS-kNN walks a
//! decoding iterator instead of a slice, so **early stopping also skips
//! decompression work** — the deeper the cut-off, the more bytes are never
//! touched. The timestamp array and the per-session item lists stay
//! uncompressed: they are random-access structures on the hot path.

use bytes::BytesMut;
use serenade_core::{
    CoreError, FxHashMap, ItemId, ItemScore, SessionId, SessionIndex, Timestamp, VmisConfig,
};
use serenade_core::heap::RuntimeDaryHeap;

use crate::varint::{read_varint, write_varint};

/// A compressed posting list: descending session ids as first-value + gaps.
#[derive(Debug, Clone)]
struct CompressedPosting {
    support: u32,
    count: u32,
    bytes: Box<[u8]>,
}

/// The compressed session index.
#[derive(Debug, Clone)]
pub struct CompressedIndex {
    postings: FxHashMap<ItemId, CompressedPosting>,
    timestamps: Box<[Timestamp]>,
    items_flat: Box<[ItemId]>,
    items_offsets: Box<[u32]>,
    m_max: usize,
}

/// Lazily decodes a compressed posting list (descending session ids).
pub struct PostingIter<'a> {
    bytes: &'a [u8],
    remaining: u32,
    prev: u64,
    first: bool,
}

impl Iterator for PostingIter<'_> {
    type Item = SessionId;

    fn next(&mut self) -> Option<SessionId> {
        if self.remaining == 0 {
            return None;
        }
        let mut buf = self.bytes;
        let v = read_varint(&mut buf).expect("posting bytes are self-consistent");
        self.bytes = buf;
        self.remaining -= 1;
        if self.first {
            self.first = false;
            self.prev = v;
        } else {
            // Gaps are stored as (prev - next - 1) so a gap of 1 is a zero byte.
            self.prev = self.prev - v - 1;
        }
        Some(self.prev as SessionId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl CompressedIndex {
    /// Compresses an existing index (lossless).
    pub fn from_index(index: &SessionIndex) -> Self {
        let mut postings = FxHashMap::default();
        let mut buf = BytesMut::new();
        for (item, posting) in index.postings_iter() {
            buf.clear();
            let mut prev: u64 = 0;
            for (i, sid) in posting.sessions().enumerate() {
                if i == 0 {
                    write_varint(&mut buf, u64::from(sid));
                } else {
                    write_varint(&mut buf, prev - u64::from(sid) - 1);
                }
                prev = u64::from(sid);
            }
            postings.insert(
                item,
                CompressedPosting {
                    support: posting.support,
                    count: posting.entries.len() as u32,
                    bytes: buf[..].into(),
                },
            );
        }
        let mut timestamps = Vec::with_capacity(index.num_sessions());
        let mut items_flat = Vec::new();
        let mut items_offsets = Vec::with_capacity(index.num_sessions() + 1);
        items_offsets.push(0u32);
        for sid in 0..index.num_sessions() as u32 {
            timestamps.push(index.session_timestamp(sid));
            items_flat.extend_from_slice(index.session_items(sid));
            items_offsets.push(items_flat.len() as u32);
        }
        Self {
            postings,
            timestamps: timestamps.into_boxed_slice(),
            items_flat: items_flat.into_boxed_slice(),
            items_offsets: items_offsets.into_boxed_slice(),
            m_max: index.m_max(),
        }
    }

    /// Iterates a posting list, decoding lazily.
    pub fn postings(&self, item: ItemId) -> Option<PostingIter<'_>> {
        self.postings.get(&item).map(|p| PostingIter {
            bytes: &p.bytes,
            remaining: p.count,
            prev: 0,
            first: true,
        })
    }

    /// Support `h_i` of an item.
    pub fn item_support(&self, item: ItemId) -> Option<u32> {
        self.postings.get(&item).map(|p| p.support)
    }

    /// Items of a historical session (uncompressed, random access).
    pub fn session_items(&self, session: SessionId) -> &[ItemId] {
        let s = self.items_offsets[session as usize] as usize;
        let e = self.items_offsets[session as usize + 1] as usize;
        &self.items_flat[s..e]
    }

    /// Timestamp of a historical session.
    pub fn session_timestamp(&self, session: SessionId) -> Timestamp {
        self.timestamps[session as usize]
    }

    /// Number of historical sessions.
    pub fn num_sessions(&self) -> usize {
        self.timestamps.len()
    }

    /// Approximate bytes used by the posting lists only (the compressed part).
    pub fn posting_bytes(&self) -> usize {
        self.postings.values().map(|p| p.bytes.len()).sum()
    }

    /// Runs VMIS-kNN directly on the compressed representation.
    ///
    /// Same semantics (and bit-identical output) as
    /// [`serenade_core::VmisKnn::recommend`]; early stopping additionally
    /// skips decoding the tail of each posting list.
    pub fn recommend(&self, session: &[ItemId], config: &VmisConfig) -> Result<Vec<ItemScore>, CoreError> {
        // Shared validation helper: the compressed path must accept and
        // reject exactly the same configs as `VmisKnn::new` (it used to let
        // `how_many == 0` and `max_session_len == 0` through).
        config.validate_with_m_max(self.m_max)?;
        let window = if session.len() > config.max_session_len {
            &session[session.len() - config.max_session_len..]
        } else {
            session
        };
        if window.is_empty() {
            return Ok(Vec::new());
        }
        let wlen = window.len();
        let mut pos: FxHashMap<ItemId, usize> = FxHashMap::default();
        for (i, &item) in window.iter().enumerate() {
            pos.insert(item, i + 1);
        }

        let d = config.heap_arity.d();
        let mut r: FxHashMap<SessionId, f32> = FxHashMap::default();
        let mut bt: RuntimeDaryHeap<(Timestamp, SessionId), ()> =
            RuntimeDaryHeap::with_arity_and_capacity(d, config.m);
        for (i, &item) in window.iter().enumerate().rev() {
            if pos[&item] != i + 1 {
                continue;
            }
            let Some(iter) = self.postings(item) else {
                continue;
            };
            let pi = config.decay.weight(i + 1, wlen);
            for j in iter {
                if let Some(rj) = r.get_mut(&j) {
                    *rj += pi;
                    continue;
                }
                let key = (self.session_timestamp(j), j);
                if r.len() < config.m {
                    r.insert(j, pi);
                    bt.push(key, ());
                } else {
                    let &(root, ()) = bt.peek().expect("bt non-empty");
                    if key > root {
                        let ((_, evicted), ()) = bt.replace_root(key, ());
                        r.remove(&evicted);
                        r.insert(j, pi);
                    } else if config.early_stopping {
                        break;
                    }
                }
            }
        }

        let mut topk: RuntimeDaryHeap<(f32, Timestamp, SessionId), ()> =
            RuntimeDaryHeap::with_arity_and_capacity(d, config.k);
        for (&j, &rj) in &r {
            let key = (rj, self.session_timestamp(j), j);
            if topk.len() < config.k {
                topk.push(key, ());
            } else {
                let &(root, ()) = topk.peek().expect("topk non-empty");
                if key > root {
                    topk.replace_root(key, ());
                }
            }
        }

        // Scoring — canonical ascending-session-id order (see core).
        let num_sessions = self.num_sessions();
        let mut neighbors: Vec<(SessionId, f32)> =
            topk.iter().map(|&((sim, _, sid), ())| (sid, sim)).collect();
        neighbors.sort_unstable_by_key(|&(sid, _)| sid);
        let norm = if config.normalize_by_session_length { 1.0 / wlen as f32 } else { 1.0 };
        let mut scores: FxHashMap<ItemId, f32> = FxHashMap::default();
        for &(sid, similarity) in &neighbors {
            let items = self.session_items(sid);
            let Some(max_pos) = items.iter().filter_map(|it| pos.get(it)).copied().max() else {
                continue;
            };
            let lambda = config.match_weight.weight(max_pos, wlen);
            if lambda <= 0.0 {
                continue;
            }
            let w = lambda * similarity * norm;
            for &item in items {
                if config.exclude_session_items && pos.contains_key(&item) {
                    continue;
                }
                let idf = self
                    .item_support(item)
                    .map(|h| config.idf.weight(h as usize, num_sessions))
                    .unwrap_or(1.0);
                *scores.entry(item).or_insert(0.0) += w * idf;
            }
        }
        let mut out: Vec<ItemScore> = scores
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .map(|(item, score)| ItemScore { item, score })
            .collect();
        // Total order: cannot panic, and agrees with `partial_cmp` on every
        // score that survives the positive filter above.
        out.sort_unstable_by(|a, b| {
            b.score.total_cmp(&a.score).then(a.item.cmp(&b.item))
        });
        out.truncate(config.how_many);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::{Click, VmisKnn};

    fn clicks() -> Vec<Click> {
        let mut out = Vec::new();
        for s in 0..60u64 {
            let ts = 500 + s * 13;
            out.push(Click::new(s + 1, s % 9, ts));
            out.push(Click::new(s + 1, (s + 3) % 9, ts + 1));
            if s % 4 == 0 {
                out.push(Click::new(s + 1, (s + 6) % 9, ts + 2));
            }
        }
        out
    }

    #[test]
    fn decoding_recovers_posting_lists() {
        let index = SessionIndex::build(&clicks(), 500).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        for item in index.items() {
            let raw: Vec<SessionId> = index.posting_sessions(item).unwrap();
            let decoded: Vec<SessionId> = compressed.postings(item).unwrap().collect();
            assert_eq!(raw, decoded, "item {item}");
            assert_eq!(index.item_support(item), compressed.item_support(item));
        }
    }

    #[test]
    fn compression_actually_saves_space() {
        let index = SessionIndex::build(&clicks(), 500).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        // Compare against the transport form (4 bytes per session id), not
        // the kernel's 16-byte inlined entries, so the bar stays honest.
        let raw_bytes: usize = index
            .items()
            .map(|i| index.postings(i).unwrap().len() * std::mem::size_of::<SessionId>())
            .sum();
        assert!(
            compressed.posting_bytes() < raw_bytes,
            "compressed {} >= raw {raw_bytes}",
            compressed.posting_bytes()
        );
    }

    #[test]
    fn compressed_queries_match_core_exactly() {
        let index = std::sync::Arc::new(SessionIndex::build(&clicks(), 500).unwrap());
        let mut cfg = VmisConfig::default();
        cfg.m = 20;
        cfg.k = 8;
        let vmis = VmisKnn::new(std::sync::Arc::clone(&index), cfg.clone()).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        for session in [&[0u64, 3] as &[u64], &[5], &[8, 2, 6], &[1, 1, 4]] {
            let a = compressed.recommend(session, &cfg).unwrap();
            let b = vmis.recommend(session);
            assert_eq!(a, b, "session {session:?}");
        }
    }

    #[test]
    fn empty_and_unknown_sessions() {
        let index = SessionIndex::build(&clicks(), 500).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        let cfg = VmisConfig::default();
        assert!(compressed.recommend(&[], &cfg).unwrap().is_empty());
        assert!(compressed.recommend(&[777], &cfg).unwrap().is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let index = SessionIndex::build(&clicks(), 10).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        let mut cfg = VmisConfig::default();
        cfg.m = 11; // exceeds m_max
        assert!(compressed.recommend(&[0], &cfg).is_err());
    }

    #[test]
    fn validation_conforms_to_core_for_zero_parameters() {
        // Regression: the compressed path used an ad-hoc check that let
        // `how_many == 0` and `max_session_len == 0` through while the core
        // rejected them. Both paths must now agree, with the same parameter
        // named in the error.
        let index = SessionIndex::build(&clicks(), 10).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        for (param, cfg) in [
            ("m", VmisConfig { m: 0, ..VmisConfig::default() }),
            ("k", VmisConfig { k: 0, ..VmisConfig::default() }),
            ("how_many", VmisConfig { how_many: 0, ..VmisConfig::default() }),
            ("max_session_len", VmisConfig { max_session_len: 0, ..VmisConfig::default() }),
            ("m", VmisConfig { m: 11, ..VmisConfig::default() }), // > m_max
        ] {
            let core_err = VmisKnn::new(index.clone(), cfg.clone()).unwrap_err();
            let compressed_err = compressed.recommend(&[0], &cfg).unwrap_err();
            match (core_err, compressed_err) {
                (
                    CoreError::InvalidConfig { parameter: a, .. },
                    CoreError::InvalidConfig { parameter: b, .. },
                ) => {
                    assert_eq!(a, b, "core and compressed must name the same parameter");
                    assert_eq!(a, param);
                }
                other => panic!("unexpected error pair {other:?}"),
            }
        }
    }

    #[test]
    fn single_entry_posting_roundtrips() {
        let clicks = vec![Click::new(1, 42, 10), Click::new(1, 43, 11)];
        let index = SessionIndex::build(&clicks, 5).unwrap();
        let compressed = CompressedIndex::from_index(&index);
        let decoded: Vec<SessionId> = compressed.postings(42).unwrap().collect();
        assert_eq!(decoded, vec![0]);
        assert!(compressed.postings(999).is_none());
    }
}
