//! Multi-threaded index construction.
//!
//! Mirrors the relational plan of the paper's Spark job as an in-process
//! shuffle pipeline:
//!
//! 1. **Partition clicks** by a hash of the session id across workers; each
//!    worker groups its clicks into sessions (dedup, session timestamp).
//! 2. **Merge** the per-worker session lists into the global
//!    timestamp-ordered session table (dense id assignment).
//! 3. **Shuffle (item, session)** pairs into item partitions; each worker
//!    builds the posting lists of its item partition — most recent `m`
//!    sessions per item, descending.
//!
//! The result is bit-identical to [`SessionIndex::build`] (property-tested),
//! so callers can pick whichever fits: the sequential builder for small data,
//! this one for bulk rebuilds.

use crossbeam::thread;
use serenade_core::index::Posting;
use serenade_core::{Click, CoreError, FxHashMap, ItemId, SessionId, SessionIndex, Timestamp};

/// Parallel builder configuration.
#[derive(Debug, Clone, Copy)]
pub struct BuilderConfig {
    /// Worker threads (also the number of shuffle partitions).
    pub threads: usize,
    /// Posting-list capacity `m_max`.
    pub m_max: usize,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            m_max: 5_000,
        }
    }
}

fn session_partition(session_id: u64, parts: u64) -> usize {
    // Fibonacci-style multiplicative hash; cheap and well-spread.
    ((session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parts) as usize
}

/// Builds a [`SessionIndex`] with a data-parallel pipeline.
///
/// # Errors
///
/// Same contract as [`SessionIndex::build`].
pub fn build_parallel(clicks: &[Click], config: BuilderConfig) -> Result<SessionIndex, CoreError> {
    if config.m_max == 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "m_max",
            reason: "posting-list capacity must be positive".into(),
        });
    }
    if clicks.is_empty() {
        return Err(CoreError::EmptyDataset);
    }
    let threads = config.threads.max(1);

    // ---- Stage 1 (map): chunked scan, clicks bucketed by session hash. ---
    // Each worker reads only its chunk once and shuffles the clicks into
    // per-destination buckets — the shared-memory analogue of a map-side
    // shuffle write.
    type LocalSession = (Timestamp, u64, Vec<ItemId>); // (session ts, ext id, dedup items)
    let chunk = clicks.len().div_ceil(threads);
    let buckets: Vec<Vec<Vec<Click>>> = thread::scope(|scope| {
        let handles: Vec<_> = clicks
            .chunks(chunk)
            .map(|my_chunk| {
                scope.spawn(move |_| {
                    let mut buckets: Vec<Vec<Click>> = vec![Vec::new(); threads];
                    for &c in my_chunk {
                        buckets[session_partition(c.session_id, threads as u64)].push(c);
                    }
                    buckets
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stage-1 mapper")).collect()
    })
    .expect("stage-1 scope");

    // ---- Stage 1 (reduce): per-partition session grouping. ---------------
    let partials: Vec<Vec<LocalSession>> = thread::scope(|scope| {
        let buckets = &buckets;
        let handles: Vec<_> = (0..threads)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut by_session: FxHashMap<u64, Vec<(Timestamp, ItemId)>> =
                        FxHashMap::default();
                    for mapper in buckets {
                        for c in &mapper[part] {
                            by_session
                                .entry(c.session_id)
                                .or_default()
                                .push((c.timestamp, c.item_id));
                        }
                    }
                    let mut sessions: Vec<LocalSession> = Vec::with_capacity(by_session.len());
                    for (ext, mut sc) in by_session {
                        sc.sort_unstable();
                        let ts = sc.last().expect("non-empty session").0;
                        let mut items: Vec<ItemId> = Vec::with_capacity(sc.len());
                        for (_, item) in sc {
                            if !items.contains(&item) {
                                items.push(item);
                            }
                        }
                        sessions.push((ts, ext, items));
                    }
                    sessions
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stage-1 reducer")).collect()
    })
    .expect("stage-1 scope");
    drop(buckets);

    // ---- Stage 2: global merge and dense-id assignment. ------------------
    let mut sessions: Vec<LocalSession> = partials.into_iter().flatten().collect();
    sessions.sort_unstable_by_key(|s| (s.0, s.1));
    let num_sessions = sessions.len();
    if num_sessions > u32::MAX as usize {
        return Err(CoreError::TooManySessions(num_sessions));
    }
    let mut timestamps = Vec::with_capacity(num_sessions);
    let mut items_flat: Vec<ItemId> = Vec::new();
    let mut items_offsets: Vec<u32> = Vec::with_capacity(num_sessions + 1);
    items_offsets.push(0);
    for (ts, _, items) in &sessions {
        timestamps.push(*ts);
        items_flat.extend_from_slice(items);
        items_offsets.push(items_flat.len() as u32);
    }

    // ---- Stage 3 (map): chunked emission of (item → ascending sids). -----
    // Workers scan contiguous session-id ranges, so each per-item list is
    // already ascending within a chunk, and chunks concatenate in order.
    let session_chunk = sessions.len().div_ceil(threads);
    let emissions: Vec<Vec<FxHashMap<ItemId, Vec<SessionId>>>> = thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .chunks(session_chunk)
            .enumerate()
            .map(|(chunk_idx, my_sessions)| {
                scope.spawn(move |_| {
                    let base = chunk_idx * session_chunk;
                    let mut buckets: Vec<FxHashMap<ItemId, Vec<SessionId>>> =
                        vec![FxHashMap::default(); threads];
                    for (off, (_, _, items)) in my_sessions.iter().enumerate() {
                        let sid = (base + off) as SessionId;
                        for &item in items {
                            buckets[session_partition(item, threads as u64)]
                                .entry(item)
                                .or_default()
                                .push(sid);
                        }
                    }
                    buckets
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stage-3 mapper")).collect()
    })
    .expect("stage-3 scope");

    // ---- Stage 3 (reduce): per item-partition posting assembly. ----------
    let postings: FxHashMap<ItemId, Posting> = thread::scope(|scope| {
        let emissions = &emissions;
        let handles: Vec<_> = (0..threads)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut ascending: FxHashMap<ItemId, Vec<SessionId>> = FxHashMap::default();
                    for mapper in emissions {
                        for (&item, sids) in &mapper[part] {
                            ascending.entry(item).or_default().extend_from_slice(sids);
                        }
                    }
                    let mut out: FxHashMap<ItemId, Posting> = FxHashMap::default();
                    for (item, mut sids) in ascending {
                        let support = sids.len() as u32;
                        if sids.len() > config.m_max {
                            sids.drain(..sids.len() - config.m_max);
                        }
                        sids.reverse();
                        out.insert(
                            item,
                            Posting { sessions: sids.into_boxed_slice(), support },
                        );
                    }
                    out
                })
            })
            .collect();
        let mut merged: FxHashMap<ItemId, Posting> = FxHashMap::default();
        for h in handles {
            merged.extend(h.join().expect("stage-3 reducer"));
        }
        merged
    })
    .expect("stage-3 scope");

    SessionIndex::from_parts(
        postings,
        timestamps.into_boxed_slice(),
        items_flat.into_boxed_slice(),
        items_offsets.into_boxed_slice(),
        config.m_max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks() -> Vec<Click> {
        let mut out = Vec::new();
        for s in 0..50u64 {
            let ts = 1_000 + s * 17;
            out.push(Click::new(s + 1, s % 7, ts));
            out.push(Click::new(s + 1, (s + 2) % 7, ts + 1));
            if s % 2 == 0 {
                out.push(Click::new(s + 1, (s + 4) % 7, ts + 2));
            }
        }
        out
    }

    fn assert_same_index(a: &SessionIndex, b: &SessionIndex) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.num_sessions(), b.num_sessions());
        for sid in 0..a.num_sessions() as SessionId {
            assert_eq!(a.session_timestamp(sid), b.session_timestamp(sid), "ts of {sid}");
            assert_eq!(a.session_items(sid), b.session_items(sid), "items of {sid}");
        }
        let mut items: Vec<ItemId> = a.items().collect();
        items.sort_unstable();
        let mut items_b: Vec<ItemId> = b.items().collect();
        items_b.sort_unstable();
        assert_eq!(items, items_b);
        for item in items {
            assert_eq!(a.postings(item), b.postings(item), "postings of {item}");
            assert_eq!(a.item_support(item), b.item_support(item), "support of {item}");
        }
    }

    #[test]
    fn parallel_build_matches_sequential_reference() {
        let clicks = clicks();
        let reference = SessionIndex::build(&clicks, 10).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel =
                build_parallel(&clicks, BuilderConfig { threads, m_max: 10 }).unwrap();
            assert_same_index(&reference, &parallel);
        }
    }

    #[test]
    fn truncation_matches_sequential() {
        let clicks = clicks();
        let reference = SessionIndex::build(&clicks, 3).unwrap();
        let parallel = build_parallel(&clicks, BuilderConfig { threads: 3, m_max: 3 }).unwrap();
        assert_same_index(&reference, &parallel);
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = build_parallel(&[], BuilderConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::EmptyDataset));
    }

    #[test]
    fn zero_m_max_is_rejected() {
        let err = build_parallel(&clicks(), BuilderConfig { threads: 2, m_max: 0 }).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn more_threads_than_sessions_is_fine() {
        let clicks = vec![Click::new(1, 5, 1), Click::new(1, 6, 2)];
        let idx = build_parallel(&clicks, BuilderConfig { threads: 16, m_max: 10 }).unwrap();
        assert_eq!(idx.num_sessions(), 1);
        assert_eq!(idx.posting_sessions(5).unwrap(), &[0]);
    }
}
