//! LEB128 variable-length unsigned integers.
//!
//! Used by the compressed index format: posting-list gaps and small counters
//! are mostly tiny, so a byte-oriented varint gives 3–6× space savings over
//! fixed-width encodings on realistic click data.

use bytes::{Buf, BufMut};

/// Appends `value` as LEB128 (7 bits per byte, msb = continuation).
pub fn write_varint(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads one LEB128 value. Returns `None` on truncated or overlong input.
pub fn read_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encoded size of `value` in bytes (1–10).
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v), "length of {v}");
        let mut r = buf.freeze();
        read_varint(&mut r).unwrap()
    }

    #[test]
    fn roundtrips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 300);
        let mut short = buf.freeze().slice(0..1);
        assert_eq!(read_varint(&mut short), None);
        let mut empty = bytes::Bytes::new();
        assert_eq!(read_varint(&mut empty), None);
    }

    #[test]
    fn sequences_decode_in_order() {
        let mut buf = BytesMut::new();
        for v in 0..1_000u64 {
            write_varint(&mut buf, v * 37);
        }
        let mut r = buf.freeze();
        for v in 0..1_000u64 {
            assert_eq!(read_varint(&mut r), Some(v * 37));
        }
        assert!(!r.has_remaining());
    }
}
