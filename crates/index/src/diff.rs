//! Semantic snapshot diffing for epoch-bucketed cache invalidation.
//!
//! Two [`SessionIndex`] snapshots straddling a publish are *semantically*
//! equal for an item when its neighbourhood is unchanged: same support and
//! the same ordered list of posting sessions, where a session is compared by
//! its **content** `(timestamp, items)`, not its dense id — dense ids are
//! renumbered by every rebuild, so a raw posting comparison would flag every
//! item after any deletion or retention compaction.
//!
//! [`changed_items`] computes the set of items whose neighbourhood differs.
//! The property suite uses it to prove the incremental indexer's
//! touched-item tracking ([`crate::IncrementalIndexer::drain_touched`]) is a
//! sound over-approximation: every semantically changed item is reported as
//! touched, so an epoch-bucketed cache that only invalidates touched items
//! never serves a prediction whose neighbourhood has moved under it.

use serenade_core::{FxHashSet, ItemId, SessionIndex, Timestamp};

/// The content signature of one posting session: `(timestamp, items)`.
type SessionSig<'a> = (Timestamp, &'a [ItemId]);

/// The dense-id-independent signature of an item's neighbourhood in `index`:
/// its support and the content of its posting sessions, in posting order.
fn item_signature(index: &SessionIndex, item: ItemId) -> Option<(u32, Vec<SessionSig<'_>>)> {
    let posting = index.postings(item)?;
    let support = index.item_support(item)?;
    let sessions = posting
        .iter()
        .map(|e| (e.timestamp, index.session_items(e.session)))
        .collect();
    Some((support, sessions))
}

/// Items whose neighbourhood (support or posting-session content) differs
/// between the two snapshots, including items present in only one of them.
/// The returned set is sorted for deterministic test output.
pub fn changed_items(a: &SessionIndex, b: &SessionIndex) -> Vec<ItemId> {
    let mut universe: FxHashSet<ItemId> = a.items().collect();
    universe.extend(b.items());
    let mut changed: Vec<ItemId> = universe
        .into_iter()
        .filter(|&item| item_signature(a, item) != item_signature(b, item))
        .collect();
    changed.sort_unstable();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::Click;

    fn build(clicks: &[Click]) -> SessionIndex {
        SessionIndex::build(clicks, 100).unwrap()
    }

    #[test]
    fn identical_indexes_have_no_changed_items() {
        let clicks =
            vec![Click::new(1, 0, 10), Click::new(1, 1, 11), Click::new(2, 1, 20)];
        assert!(changed_items(&build(&clicks), &build(&clicks)).is_empty());
    }

    #[test]
    fn appended_session_touches_only_its_items() {
        let base = vec![Click::new(1, 0, 10), Click::new(1, 1, 11), Click::new(2, 2, 20)];
        let mut grown = base.clone();
        grown.push(Click::new(3, 1, 30));
        grown.push(Click::new(3, 5, 31));
        assert_eq!(changed_items(&build(&base), &build(&grown)), vec![1, 5]);
    }

    #[test]
    fn deletion_is_insensitive_to_dense_id_renumbering() {
        // Deleting session 1 shifts every later dense id; only the deleted
        // session's items may differ semantically.
        let base = vec![
            Click::new(1, 0, 10),
            Click::new(1, 7, 11),
            Click::new(2, 2, 20),
            Click::new(3, 3, 30),
        ];
        let without: Vec<Click> =
            base.iter().filter(|c| c.session_id != 1).copied().collect();
        assert_eq!(changed_items(&build(&base), &build(&without)), vec![0, 7]);
    }
}
