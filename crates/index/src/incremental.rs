//! Incremental index maintenance (future work, Section 7).
//!
//! The production pipeline rebuilds the full index once per day, so new
//! items only become recommendable with a one-day delay. An incremental
//! indexer closes that gap: click batches are folded into the index as they
//! arrive. Because dense session ids are assigned in ascending timestamp
//! order, an **append-only** batch (all sessions newer than everything seen
//! so far, no updates to existing sessions) extends every structure at the
//! edges: new timestamps append, new item lists append, and each touched
//! posting list gains entries at the *back* — postings are kept in ascending
//! session order internally (a strictly increasing append is O(1), where the
//! former most-recent-first layout paid an O(m) memmove per click) and are
//! reversed into the index's descending-recency order at [`snapshot`] time.
//! Posting lists are bounded by amortised compaction: once a list reaches
//! `2 * m_max` entries the oldest half is dropped in one O(m) drain, so the
//! per-click cost stays amortised O(1) and memory stays within `2 * m_max`
//! entries per item.
//!
//! Batches that violate the append-only precondition (re-appearing session
//! ids, out-of-order timestamps) fall back to a full rebuild — correctness
//! first. The test suite verifies that any sequence of batches produces an
//! index identical to a from-scratch build over the concatenated log.
//!
//! ## Click-log retention
//!
//! The rebuild fallback needs the click log, but retaining it forever grows
//! memory without bound. [`IncrementalIndexer::with_retained_clicks_cap`]
//! bounds the log: whenever it exceeds the cap, the oldest whole sessions
//! are dropped (never splitting a session, always keeping at least the
//! newest one) and the index is rebuilt over the retained suffix — i.e. the
//! indexer degrades to a **sliding window** over the most recent traffic,
//! which is exactly the regime session-based recommenders operate in. A
//! dropped session's external id is forgotten with it, so if that id
//! reappears later it is treated as a new session. [`retained_clicks`]
//! exposes the current log size for monitoring.
//!
//! ## Deletion (unlearning)
//!
//! [`IncrementalIndexer::delete_session`] removes one session from the click
//! log and rebuilds, so the next [`snapshot`] is indistinguishable from a
//! from-scratch build over a log that never contained the session — the
//! GDPR-style unlearning contract, verified by the differential property
//! suite. Deletion and retention eviction share one removal path
//! ([`remove_sessions`]), so the sliding window and explicit deletes cannot
//! double-remove a session or disagree about the log. Unlike an evicted
//! session, a *deleted* session id is **tombstoned**: clicks for it arriving
//! in later batches are silently discarded instead of resurrecting the
//! session as new traffic.
//!
//! ## Touched-item tracking
//!
//! The indexer accumulates the set of items whose posting lists may have
//! changed since the last [`drain_touched`] call — appends record the batch
//! items, removals record the removed sessions' items, and slow-path
//! rebuilds record every item of the sessions the batch modified. Publishers
//! drain this set per publish to drive *epoch-bucketed* cache invalidation:
//! a cached prediction for an untouched item survives the publish. The set
//! is a sound over-approximation of the semantic posting diff (see
//! [`crate::diff::changed_items`]), which the property suite verifies.
//!
//! [`snapshot`]: IncrementalIndexer::snapshot
//! [`retained_clicks`]: IncrementalIndexer::retained_clicks
//! [`remove_sessions`]: IncrementalIndexer::remove_sessions
//! [`drain_touched`]: IncrementalIndexer::drain_touched

use serenade_core::index::Posting;
use serenade_core::{Click, CoreError, FxHashMap, FxHashSet, ItemId, SessionId, SessionIndex, Timestamp};

/// A batch session pending insertion: `(session ts, external id, clicks)`.
type PendingSession = (Timestamp, u64, Vec<(Timestamp, ItemId)>);

/// Items whose posting lists may have changed since the last drain — the
/// unit of epoch-bucketed cache invalidation (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TouchedItems {
    /// Every posting may have changed; invalidate unconditionally.
    All,
    /// Only these items' postings may have changed.
    Items(FxHashSet<ItemId>),
}

impl TouchedItems {
    /// `true` if `item` is in the touched set.
    pub fn contains(&self, item: ItemId) -> bool {
        match self {
            TouchedItems::All => true,
            TouchedItems::Items(set) => set.contains(&item),
        }
    }

    /// Number of touched items (`None` for [`TouchedItems::All`]).
    pub fn len(&self) -> Option<usize> {
        match self {
            TouchedItems::All => None,
            TouchedItems::Items(set) => Some(set.len()),
        }
    }

    /// `true` if no item is touched.
    pub fn is_empty(&self) -> bool {
        matches!(self, TouchedItems::Items(set) if set.is_empty())
    }
}

/// Stateful incremental index maintainer.
#[derive(Debug, Clone)]
pub struct IncrementalIndexer {
    m_max: usize,
    /// Click log retained for rebuild fallbacks, bounded by
    /// `max_retained_clicks` (see the module docs on retention).
    clicks: Vec<Click>,
    /// Upper bound on `clicks.len()`; `usize::MAX` means unbounded.
    max_retained_clicks: usize,
    /// External ids of sessions already indexed.
    known_sessions: FxHashSet<u64>,
    /// Largest session timestamp indexed so far.
    max_session_ts: Timestamp,
    timestamps: Vec<Timestamp>,
    items_flat: Vec<ItemId>,
    items_offsets: Vec<u32>,
    /// Posting lists in **ascending** session order (append-only fast path
    /// pushes at the back in O(1)); compacted to the newest `m_max` entries
    /// whenever they reach `2 * m_max`, reversed + truncated at `snapshot`.
    postings: FxHashMap<ItemId, Vec<SessionId>>,
    supports: FxHashMap<ItemId, u32>,
    /// Reusable per-session dedup set for the append fast path (replaces an
    /// O(L²) scan over the session's flat-item suffix).
    seen_in_session: FxHashSet<ItemId>,
    /// Number of batches that took the slow (rebuild) path — observability.
    rebuilds: usize,
    /// Number of retention compactions (oldest-session drops) — observability.
    compactions: usize,
    /// External ids of explicitly deleted sessions; their clicks are
    /// discarded from all future batches (no resurrection).
    tombstones: FxHashSet<u64>,
    /// Number of sessions removed by [`IncrementalIndexer::delete_session`].
    deletions: usize,
    /// Items whose postings may have changed since the last
    /// [`IncrementalIndexer::drain_touched`].
    touched: FxHashSet<ItemId>,
}

impl IncrementalIndexer {
    /// Creates an empty indexer with the given posting capacity and an
    /// unbounded click log.
    pub fn new(m_max: usize) -> Result<Self, CoreError> {
        Self::with_retained_clicks_cap(m_max, usize::MAX)
    }

    /// Creates an empty indexer whose retained click log is bounded by
    /// `max_retained_clicks` (see the module docs for the sliding-window
    /// semantics this implies).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `m_max == 0` or the cap is zero.
    pub fn with_retained_clicks_cap(
        m_max: usize,
        max_retained_clicks: usize,
    ) -> Result<Self, CoreError> {
        if m_max == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "m_max",
                reason: "posting-list capacity must be positive".into(),
            });
        }
        if max_retained_clicks == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "max_retained_clicks",
                reason: "click-log retention cap must be positive".into(),
            });
        }
        Ok(Self {
            m_max,
            clicks: Vec::new(),
            max_retained_clicks,
            known_sessions: FxHashSet::default(),
            max_session_ts: 0,
            timestamps: Vec::new(),
            items_flat: Vec::new(),
            items_offsets: vec![0],
            postings: FxHashMap::default(),
            supports: FxHashMap::default(),
            seen_in_session: FxHashSet::default(),
            rebuilds: 0,
            compactions: 0,
            tombstones: FxHashSet::default(),
            deletions: 0,
            touched: FxHashSet::default(),
        })
    }

    /// Number of sessions currently indexed.
    pub fn num_sessions(&self) -> usize {
        self.timestamps.len()
    }

    /// How many batches required a full rebuild.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// How many retention compactions dropped old sessions from the log.
    pub fn compaction_count(&self) -> usize {
        self.compactions
    }

    /// How many sessions have been removed by explicit deletion.
    pub fn deletion_count(&self) -> usize {
        self.deletions
    }

    /// Number of tombstoned (explicitly deleted) session ids.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of clicks currently retained for rebuild fallbacks.
    pub fn retained_clicks(&self) -> usize {
        self.clicks.len()
    }

    /// The retained click log (oldest first within the retained window).
    /// After a retention compaction this is the suffix of the traffic the
    /// index is equivalent to a from-scratch build over.
    pub fn retained_log(&self) -> &[Click] {
        &self.clicks
    }

    /// Folds a batch of clicks into the index. Clicks for tombstoned
    /// (explicitly deleted) sessions are discarded — a delete is permanent,
    /// late-arriving clicks must not resurrect the session.
    pub fn apply_batch(&mut self, batch: &[Click]) -> Result<(), CoreError> {
        let filtered: Vec<Click>;
        let batch = if self.tombstones.is_empty()
            || batch.iter().all(|c| !self.tombstones.contains(&c.session_id))
        {
            batch
        } else {
            filtered = batch
                .iter()
                .filter(|c| !self.tombstones.contains(&c.session_id))
                .copied()
                .collect();
            &filtered
        };
        if batch.is_empty() {
            return Ok(());
        }
        self.clicks.extend_from_slice(batch);

        // Group the batch into sessions.
        let mut by_session: FxHashMap<u64, Vec<(Timestamp, ItemId)>> = FxHashMap::default();
        for c in batch {
            by_session.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
        }
        let mut sessions: Vec<PendingSession> = by_session
            .into_iter()
            .map(|(ext, mut sc)| {
                sc.sort_unstable();
                let ts = sc.last().expect("non-empty").0;
                (ts, ext, sc)
            })
            .collect();
        sessions.sort_unstable_by_key(|s| (s.0, s.1));

        // Append-only precondition: no session id reappears, and every new
        // session is strictly newer than everything indexed (a timestamp tie
        // with the previous batch could order dense ids differently from a
        // from-scratch build; within a batch ties are handled by sorting).
        let fast = sessions.iter().all(|(ts, ext, _)| {
            !self.known_sessions.contains(ext)
                && (self.timestamps.is_empty() || *ts > self.max_session_ts)
        });

        if fast {
            for (_, _, clicks) in &sessions {
                self.touched.extend(clicks.iter().map(|&(_, item)| item));
            }
            self.append_sessions(sessions)?;
        } else {
            // A modified session's timestamp moves, shifting the recency of
            // *every* item it contains — touch the sessions' full item sets
            // from the log, not just the items in this batch.
            let modified: FxHashSet<u64> = sessions.iter().map(|&(_, ext, _)| ext).collect();
            for c in &self.clicks {
                if modified.contains(&c.session_id) {
                    self.touched.insert(c.item_id);
                }
            }
            self.rebuilds += 1;
            self.rebuild()?;
        }
        self.enforce_retention()
    }

    /// Drains the accumulated touched-item set: the items whose postings may
    /// have changed since the previous drain. Publishers call this once per
    /// publish to bucket cache invalidation by epoch.
    pub fn drain_touched(&mut self) -> TouchedItems {
        TouchedItems::Items(std::mem::take(&mut self.touched))
    }

    /// Removes one session from the click log and the index, tombstoning its
    /// external id so later clicks cannot resurrect it. Returns `true` if
    /// the session was present (its clicks were removed and the index
    /// rebuilt), `false` if it was unknown (the tombstone is still laid).
    ///
    /// After this call [`IncrementalIndexer::snapshot`] is indistinguishable
    /// from a from-scratch build over a log that never contained the
    /// session — the unlearning contract of the differential suite.
    pub fn delete_session(&mut self, ext_id: u64) -> Result<bool, CoreError> {
        self.tombstones.insert(ext_id);
        if !self.known_sessions.contains(&ext_id) {
            return Ok(false);
        }
        let mut drop = FxHashSet::default();
        drop.insert(ext_id);
        self.remove_sessions(&drop)?;
        self.deletions += 1;
        Ok(true)
    }

    /// The single removal path shared by retention eviction and explicit
    /// deletion: records the removed sessions' items as touched, drops their
    /// clicks from the log and rebuilds over the retained suffix. Removing a
    /// session that is already gone is a no-op (no double-remove).
    fn remove_sessions(&mut self, drop: &FxHashSet<u64>) -> Result<(), CoreError> {
        let before = self.clicks.len();
        for c in &self.clicks {
            if drop.contains(&c.session_id) {
                self.touched.insert(c.item_id);
            }
        }
        self.clicks.retain(|c| !drop.contains(&c.session_id));
        if self.clicks.len() == before {
            return Ok(());
        }
        self.rebuild()
    }

    fn append_sessions(&mut self, sessions: Vec<PendingSession>) -> Result<(), CoreError> {
        if self.timestamps.len() + sessions.len() > u32::MAX as usize {
            return Err(CoreError::TooManySessions(self.timestamps.len() + sessions.len()));
        }
        for (ts, ext, clicks) in sessions {
            let sid = self.timestamps.len() as SessionId;
            self.timestamps.push(ts);
            self.known_sessions.insert(ext);
            self.max_session_ts = ts;
            self.seen_in_session.clear();
            for (_, item) in clicks {
                if !self.seen_in_session.insert(item) {
                    continue; // duplicate within this session
                }
                self.items_flat.push(item);
                *self.supports.entry(item).or_insert(0) += 1;
                let posting = self.postings.entry(item).or_default();
                posting.push(sid); // ascending: strictly newer than the rest
                if posting.len() >= self.m_max.saturating_mul(2) {
                    // Amortised O(1) bound: drop everything but the newest
                    // m_max entries in one drain instead of a memmove per
                    // click as the old insert(0)+truncate layout did.
                    let cut = posting.len() - self.m_max;
                    posting.drain(..cut);
                }
            }
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        Ok(())
    }

    fn rebuild(&mut self) -> Result<(), CoreError> {
        if self.clicks.is_empty() {
            // Everything was removed (e.g. the only session was deleted):
            // reset to the empty state instead of building an empty index.
            self.timestamps.clear();
            self.items_flat.clear();
            self.items_offsets = vec![0];
            self.postings.clear();
            self.supports.clear();
            self.known_sessions.clear();
            self.max_session_ts = 0;
            return Ok(());
        }
        let index = SessionIndex::build(&self.clicks, self.m_max)?;
        self.timestamps.clear();
        self.items_flat.clear();
        self.items_offsets = vec![0];
        self.postings.clear();
        self.supports.clear();
        self.known_sessions.clear();
        for sid in 0..index.num_sessions() as SessionId {
            self.timestamps.push(index.session_timestamp(sid));
            self.items_flat.extend_from_slice(index.session_items(sid));
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        self.max_session_ts = self.timestamps.last().copied().unwrap_or(0);
        for (item, posting) in index.postings_iter() {
            // The built index stores postings most recent first; internal
            // state keeps them ascending so the fast path can append.
            let mut ascending: Vec<SessionId> = posting.sessions().collect();
            ascending.reverse();
            self.postings.insert(item, ascending);
            self.supports.insert(item, posting.support);
        }
        // External ids must be re-derived from the click log.
        for c in &self.clicks {
            self.known_sessions.insert(c.session_id);
        }
        Ok(())
    }

    /// Enforces the click-log retention cap by dropping the oldest whole
    /// sessions (never the newest) and rebuilding over the retained suffix.
    fn enforce_retention(&mut self) -> Result<(), CoreError> {
        if self.clicks.len() <= self.max_retained_clicks {
            return Ok(());
        }
        // Per-session click counts and timestamps, ordered the same way
        // dense ids are assigned: ascending (session ts, external id).
        let mut counts: FxHashMap<u64, (Timestamp, usize)> = FxHashMap::default();
        for c in &self.clicks {
            let e = counts.entry(c.session_id).or_insert((0, 0));
            e.0 = e.0.max(c.timestamp);
            e.1 += 1;
        }
        let mut order: Vec<(Timestamp, u64, usize)> =
            counts.into_iter().map(|(ext, (ts, n))| (ts, ext, n)).collect();
        order.sort_unstable();

        let mut remaining = self.clicks.len();
        let mut dropped: FxHashSet<u64> = FxHashSet::default();
        for &(_, ext, n) in &order[..order.len().saturating_sub(1)] {
            if remaining <= self.max_retained_clicks {
                break;
            }
            dropped.insert(ext);
            remaining -= n;
        }
        if dropped.is_empty() {
            return Ok(()); // a single oversized session: keep it whole
        }
        self.compactions += 1;
        self.remove_sessions(&dropped)
    }

    /// Materialises the current state as a validated [`SessionIndex`].
    pub fn snapshot(&self) -> Result<SessionIndex, CoreError> {
        if self.timestamps.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut postings = FxHashMap::default();
        for (&item, sids) in &self.postings {
            // Internal order is ascending session id; the index wants the
            // `m_max` most recent, most recent first.
            let keep = sids.len().min(self.m_max);
            let mut sessions: Vec<SessionId> = sids[sids.len() - keep..].to_vec();
            sessions.reverse();
            postings.insert(
                item,
                Posting {
                    sessions: sessions.into_boxed_slice(),
                    support: self.supports[&item],
                },
            );
        }
        SessionIndex::from_parts(
            postings,
            self.timestamps.clone().into_boxed_slice(),
            self.items_flat.clone().into_boxed_slice(),
            self.items_offsets.clone().into_boxed_slice(),
            self.m_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(range: std::ops::Range<u64>, ts_base: u64) -> Vec<Click> {
        let mut out = Vec::new();
        for s in range {
            let ts = ts_base + s * 10;
            out.push(Click::new(s, s % 6, ts));
            out.push(Click::new(s, (s + 2) % 6, ts + 1));
        }
        out
    }

    fn assert_same(a: &SessionIndex, b: &SessionIndex) {
        assert_eq!(a.stats(), b.stats());
        for sid in 0..a.num_sessions() as SessionId {
            assert_eq!(a.session_timestamp(sid), b.session_timestamp(sid));
            assert_eq!(a.session_items(sid), b.session_items(sid));
        }
        for item in a.items() {
            assert_eq!(a.postings(item), b.postings(item), "item {item}");
            assert_eq!(a.item_support(item), b.item_support(item));
        }
    }

    #[test]
    fn append_only_batches_match_full_rebuild() {
        let b1 = batch(1..20, 1_000);
        let b2 = batch(20..35, 5_000);
        let b3 = batch(35..50, 9_000);
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        inc.apply_batch(&b3).unwrap();
        assert_eq!(inc.rebuild_count(), 0, "all batches should take the fast path");

        let mut all = b1;
        all.extend(b2);
        all.extend(b3);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn reappearing_session_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 1_000);
        // Session 5 reappears with later clicks.
        let b2 = vec![Click::new(5, 3, 9_000), Click::new(5, 4, 9_001)];
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert_eq!(inc.rebuild_count(), 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn out_of_order_batch_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 10_000);
        let b2 = batch(10..15, 1_000); // older than everything in b1
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert!(inc.rebuild_count() >= 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn posting_truncation_keeps_most_recent() {
        let mut inc = IncrementalIndexer::new(2).unwrap();
        // Item 0 appears in 5 consecutive sessions.
        for s in 1..=5u64 {
            inc.apply_batch(&[
                Click::new(s, 0, s * 100),
                Click::new(s, s, s * 100 + 1),
            ])
            .unwrap();
        }
        let idx = inc.snapshot().unwrap();
        assert_eq!(idx.posting_sessions(0).unwrap(), &[4, 3]); // sids of sessions 5, 4
        assert_eq!(idx.item_support(0), Some(5));
    }

    #[test]
    fn heavy_truncation_snapshot_matches_from_scratch_build() {
        // A hot item hits the posting-compaction path many times over; the
        // snapshot must still be indistinguishable from a from-scratch build
        // over the same log (the satellite-task equality guarantee).
        let m_max = 3;
        let mut inc = IncrementalIndexer::new(m_max).unwrap();
        let mut all = Vec::new();
        for s in 1..=40u64 {
            let b = vec![
                Click::new(s, 0, s * 100),           // hot item in every session
                Click::new(s, 1 + s % 4, s * 100 + 1),
            ];
            inc.apply_batch(&b).unwrap();
            all.extend(b);
        }
        assert_eq!(inc.rebuild_count(), 0);
        let reference = SessionIndex::build(&all, m_max).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn internal_posting_lists_stay_bounded() {
        // The amortised compaction must keep every internal posting list
        // within 2 * m_max entries no matter how many sessions touch it.
        let m_max = 4;
        let mut inc = IncrementalIndexer::new(m_max).unwrap();
        for s in 1..=200u64 {
            inc.apply_batch(&[Click::new(s, 0, s * 10), Click::new(s, 1, s * 10 + 1)])
                .unwrap();
        }
        for (item, posting) in &inc.postings {
            assert!(
                posting.len() < 2 * m_max,
                "posting for item {item} grew to {} entries",
                posting.len()
            );
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[]).unwrap();
        assert!(inc.snapshot().is_err());
        inc.apply_batch(&batch(1..3, 100)).unwrap();
        let before = inc.snapshot().unwrap().stats();
        inc.apply_batch(&[]).unwrap();
        assert_eq!(inc.snapshot().unwrap().stats(), before);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(IncrementalIndexer::new(0).is_err());
        assert!(IncrementalIndexer::with_retained_clicks_cap(5, 0).is_err());
    }

    #[test]
    fn timestamp_tie_with_previous_batch_forces_rebuild() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[Click::new(1, 0, 100)]).unwrap();
        // Same session timestamp as the previous max: would break the
        // tie-break invariant, so the slow path must run.
        inc.apply_batch(&[Click::new(2, 1, 100)]).unwrap();
        assert_eq!(inc.rebuild_count(), 1);
        let all = vec![Click::new(1, 0, 100), Click::new(2, 1, 100)];
        let reference = SessionIndex::build(&all, 5).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn retained_click_log_is_bounded() {
        // 200 append-only batches of 2 clicks against a 40-click cap: the
        // log (and the indexed session count) must stay bounded instead of
        // growing linearly with traffic.
        let cap = 40;
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(6, cap).unwrap();
        for s in 1..=200u64 {
            inc.apply_batch(&[Click::new(s, s % 6, s * 10), Click::new(s, (s + 2) % 6, s * 10 + 1)])
                .unwrap();
            assert!(
                inc.retained_clicks() <= cap,
                "log grew to {} clicks after session {s}",
                inc.retained_clicks()
            );
        }
        assert!(inc.compaction_count() > 0, "the cap must have been enforced");
        assert!(inc.num_sessions() <= cap, "indexed sessions follow the retained log");
    }

    #[test]
    fn retention_compaction_keeps_snapshot_consistent_with_retained_log() {
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(4, 30).unwrap();
        for s in 1..=100u64 {
            inc.apply_batch(&[Click::new(s, s % 5, s * 10), Click::new(s, (s + 1) % 5, s * 10 + 1)])
                .unwrap();
        }
        assert!(inc.compaction_count() > 0);
        // The documented sliding-window contract: the snapshot equals a
        // from-scratch build over exactly the retained suffix of the log.
        let reference = SessionIndex::build(inc.retained_log(), 4).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn delete_session_matches_build_without_it() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        let all = batch(1..20, 1_000);
        inc.apply_batch(&all).unwrap();
        assert!(inc.delete_session(5).unwrap());
        assert_eq!(inc.deletion_count(), 1);
        let without: Vec<Click> = all.iter().filter(|c| c.session_id != 5).copied().collect();
        let reference = SessionIndex::build(&without, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
        // A second delete of the same session is a no-op, not an error.
        assert!(!inc.delete_session(5).unwrap());
        assert_eq!(inc.deletion_count(), 1);
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn deleting_unknown_session_lays_a_tombstone() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&batch(1..5, 1_000)).unwrap();
        assert!(!inc.delete_session(99).unwrap());
        assert_eq!(inc.tombstone_count(), 1);
        assert_eq!(inc.deletion_count(), 0);
        // The pre-delete index is untouched...
        let reference = SessionIndex::build(&batch(1..5, 1_000), 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
        // ...and clicks for the tombstoned id arriving later are discarded.
        inc.apply_batch(&[Click::new(99, 3, 90_000)]).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn tombstoned_session_cannot_be_resurrected_by_later_batches() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        let all = batch(1..10, 1_000);
        inc.apply_batch(&all).unwrap();
        assert!(inc.delete_session(3).unwrap());
        // A mixed batch: the tombstoned session's clicks are dropped, the
        // rest applies normally.
        inc.apply_batch(&[Click::new(3, 1, 50_000), Click::new(40, 2, 50_001)]).unwrap();
        let mut expected: Vec<Click> =
            all.iter().filter(|c| c.session_id != 3).copied().collect();
        expected.push(Click::new(40, 2, 50_001));
        let reference = SessionIndex::build(&expected, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn eviction_and_deletion_share_one_removal_path() {
        // Delete a session that retention would also drop: neither path may
        // double-remove or resurrect it, and the sliding-window contract
        // must keep holding afterwards.
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(5, 20).unwrap();
        for s in 1..=10u64 {
            inc.apply_batch(&[Click::new(s, s % 4, s * 10), Click::new(s, (s + 1) % 4, s * 10 + 1)])
                .unwrap();
        }
        // Session 9 is still retained; delete it, then push more traffic so
        // retention compacts around the hole.
        assert!(inc.delete_session(9).unwrap());
        for s in 11..=30u64 {
            inc.apply_batch(&[Click::new(s, s % 4, s * 10), Click::new(s, (s + 1) % 4, s * 10 + 1)])
                .unwrap();
        }
        assert!(inc.compaction_count() > 0);
        assert!(inc.retained_log().iter().all(|c| c.session_id != 9));
        let reference = SessionIndex::build(inc.retained_log(), 5).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn deleting_the_only_session_empties_the_index() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[Click::new(1, 0, 100), Click::new(1, 1, 101)]).unwrap();
        assert!(inc.delete_session(1).unwrap());
        assert_eq!(inc.num_sessions(), 0);
        assert_eq!(inc.retained_clicks(), 0);
        assert!(inc.snapshot().is_err(), "empty index has no snapshot");
        // The indexer keeps working after emptying out.
        inc.apply_batch(&[Click::new(2, 2, 200)]).unwrap();
        assert_eq!(inc.num_sessions(), 1);
    }

    #[test]
    fn fast_path_touches_exactly_the_batch_items() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&[Click::new(1, 3, 100), Click::new(1, 5, 101)]).unwrap();
        match inc.drain_touched() {
            TouchedItems::Items(set) => {
                let mut items: Vec<_> = set.into_iter().collect();
                items.sort_unstable();
                assert_eq!(items, vec![3, 5]);
            }
            TouchedItems::All => panic!("fast path must report a precise set"),
        }
        // Draining resets the accumulator.
        assert!(inc.drain_touched().is_empty());
    }

    #[test]
    fn deletion_touches_the_deleted_sessions_items() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&[
            Click::new(1, 3, 100),
            Click::new(1, 5, 101),
            Click::new(2, 7, 200),
        ])
        .unwrap();
        inc.drain_touched();
        assert!(inc.delete_session(1).unwrap());
        let touched = inc.drain_touched();
        assert!(touched.contains(3) && touched.contains(5));
        assert!(!touched.contains(7), "unrelated session's item must not be touched");
    }

    #[test]
    fn reappearing_session_touches_its_old_items_too() {
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&[Click::new(1, 3, 100), Click::new(2, 9, 200)]).unwrap();
        inc.drain_touched();
        // Session 1 reappears with a new item: its old item 3 moves in
        // recency and must be reported as touched alongside the new item.
        inc.apply_batch(&[Click::new(1, 4, 300)]).unwrap();
        let touched = inc.drain_touched();
        assert!(touched.contains(3) && touched.contains(4));
        assert!(!touched.contains(9));
    }

    #[test]
    fn single_oversized_session_is_kept_whole() {
        // One session bigger than the cap: retention never splits a session
        // and always keeps the newest, so the log may exceed the cap here.
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(5, 3).unwrap();
        let b: Vec<Click> = (0..6).map(|i| Click::new(1, i, 100 + i)).collect();
        inc.apply_batch(&b).unwrap();
        assert_eq!(inc.retained_clicks(), 6);
        assert_eq!(inc.num_sessions(), 1);
    }
}
