//! Incremental index maintenance (future work, Section 7).
//!
//! The production pipeline rebuilds the full index once per day, so new
//! items only become recommendable with a one-day delay. An incremental
//! indexer closes that gap: click batches are folded into the index as they
//! arrive. Because dense session ids are assigned in ascending timestamp
//! order, an **append-only** batch (all sessions newer than everything seen
//! so far, no updates to existing sessions) extends every structure at the
//! edges: new timestamps append, new item lists append, and each touched
//! posting list gains entries at the *front* (it is ordered most recent
//! first) and is re-truncated to `m_max`.
//!
//! Batches that violate the append-only precondition (re-appearing session
//! ids, out-of-order timestamps) fall back to a full rebuild — correctness
//! first. The test suite verifies that any sequence of batches produces an
//! index identical to a from-scratch build over the concatenated log.

use serenade_core::index::Posting;
use serenade_core::{Click, CoreError, FxHashMap, FxHashSet, ItemId, SessionId, SessionIndex, Timestamp};

/// A batch session pending insertion: `(session ts, external id, clicks)`.
type PendingSession = (Timestamp, u64, Vec<(Timestamp, ItemId)>);

/// Stateful incremental index maintainer.
#[derive(Debug, Clone)]
pub struct IncrementalIndexer {
    m_max: usize,
    /// Full click log retained for rebuild fallbacks.
    clicks: Vec<Click>,
    /// External ids of sessions already indexed.
    known_sessions: FxHashSet<u64>,
    /// Largest session timestamp indexed so far.
    max_session_ts: Timestamp,
    timestamps: Vec<Timestamp>,
    items_flat: Vec<ItemId>,
    items_offsets: Vec<u32>,
    /// Posting lists, most recent first, truncated to `m_max`.
    postings: FxHashMap<ItemId, Vec<SessionId>>,
    supports: FxHashMap<ItemId, u32>,
    /// Number of batches that took the slow (rebuild) path — observability.
    rebuilds: usize,
}

impl IncrementalIndexer {
    /// Creates an empty indexer with the given posting capacity.
    pub fn new(m_max: usize) -> Result<Self, CoreError> {
        if m_max == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "m_max",
                reason: "posting-list capacity must be positive".into(),
            });
        }
        Ok(Self {
            m_max,
            clicks: Vec::new(),
            known_sessions: FxHashSet::default(),
            max_session_ts: 0,
            timestamps: Vec::new(),
            items_flat: Vec::new(),
            items_offsets: vec![0],
            postings: FxHashMap::default(),
            supports: FxHashMap::default(),
            rebuilds: 0,
        })
    }

    /// Number of sessions currently indexed.
    pub fn num_sessions(&self) -> usize {
        self.timestamps.len()
    }

    /// How many batches required a full rebuild.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Folds a batch of clicks into the index.
    pub fn apply_batch(&mut self, batch: &[Click]) -> Result<(), CoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.clicks.extend_from_slice(batch);

        // Group the batch into sessions.
        let mut by_session: FxHashMap<u64, Vec<(Timestamp, ItemId)>> = FxHashMap::default();
        for c in batch {
            by_session.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
        }
        let mut sessions: Vec<PendingSession> = by_session
            .into_iter()
            .map(|(ext, mut sc)| {
                sc.sort_unstable();
                let ts = sc.last().expect("non-empty").0;
                (ts, ext, sc)
            })
            .collect();
        sessions.sort_unstable_by_key(|s| (s.0, s.1));

        // Append-only precondition: no session id reappears, and every new
        // session is strictly newer than everything indexed (a timestamp tie
        // with the previous batch could order dense ids differently from a
        // from-scratch build; within a batch ties are handled by sorting).
        let fast = sessions.iter().all(|(ts, ext, _)| {
            !self.known_sessions.contains(ext)
                && (self.timestamps.is_empty() || *ts > self.max_session_ts)
        });

        if fast {
            self.append_sessions(sessions)?;
            Ok(())
        } else {
            self.rebuilds += 1;
            self.rebuild()
        }
    }

    fn append_sessions(&mut self, sessions: Vec<PendingSession>) -> Result<(), CoreError> {
        if self.timestamps.len() + sessions.len() > u32::MAX as usize {
            return Err(CoreError::TooManySessions(self.timestamps.len() + sessions.len()));
        }
        for (ts, ext, clicks) in sessions {
            let sid = self.timestamps.len() as SessionId;
            self.timestamps.push(ts);
            self.known_sessions.insert(ext);
            self.max_session_ts = ts;
            let start = self.items_flat.len();
            for (_, item) in clicks {
                if !self.items_flat[start..].contains(&item) {
                    self.items_flat.push(item);
                    *self.supports.entry(item).or_insert(0) += 1;
                    let posting = self.postings.entry(item).or_default();
                    posting.insert(0, sid); // most recent first
                    posting.truncate(self.m_max);
                }
            }
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        Ok(())
    }

    fn rebuild(&mut self) -> Result<(), CoreError> {
        let index = SessionIndex::build(&self.clicks, self.m_max)?;
        self.timestamps.clear();
        self.items_flat.clear();
        self.items_offsets = vec![0];
        self.postings.clear();
        self.supports.clear();
        self.known_sessions.clear();
        for sid in 0..index.num_sessions() as SessionId {
            self.timestamps.push(index.session_timestamp(sid));
            self.items_flat.extend_from_slice(index.session_items(sid));
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        self.max_session_ts = self.timestamps.last().copied().unwrap_or(0);
        for (item, posting) in index.postings_iter() {
            self.postings.insert(item, posting.sessions.to_vec());
            self.supports.insert(item, posting.support);
        }
        // External ids must be re-derived from the click log.
        for c in &self.clicks {
            self.known_sessions.insert(c.session_id);
        }
        Ok(())
    }

    /// Materialises the current state as a validated [`SessionIndex`].
    pub fn snapshot(&self) -> Result<SessionIndex, CoreError> {
        if self.timestamps.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut postings = FxHashMap::default();
        for (&item, sids) in &self.postings {
            postings.insert(
                item,
                Posting {
                    sessions: sids.clone().into_boxed_slice(),
                    support: self.supports[&item],
                },
            );
        }
        SessionIndex::from_parts(
            postings,
            self.timestamps.clone().into_boxed_slice(),
            self.items_flat.clone().into_boxed_slice(),
            self.items_offsets.clone().into_boxed_slice(),
            self.m_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(range: std::ops::Range<u64>, ts_base: u64) -> Vec<Click> {
        let mut out = Vec::new();
        for s in range {
            let ts = ts_base + s * 10;
            out.push(Click::new(s, s % 6, ts));
            out.push(Click::new(s, (s + 2) % 6, ts + 1));
        }
        out
    }

    fn assert_same(a: &SessionIndex, b: &SessionIndex) {
        assert_eq!(a.stats(), b.stats());
        for sid in 0..a.num_sessions() as SessionId {
            assert_eq!(a.session_timestamp(sid), b.session_timestamp(sid));
            assert_eq!(a.session_items(sid), b.session_items(sid));
        }
        for item in a.items() {
            assert_eq!(a.postings(item), b.postings(item), "item {item}");
            assert_eq!(a.item_support(item), b.item_support(item));
        }
    }

    #[test]
    fn append_only_batches_match_full_rebuild() {
        let b1 = batch(1..20, 1_000);
        let b2 = batch(20..35, 5_000);
        let b3 = batch(35..50, 9_000);
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        inc.apply_batch(&b3).unwrap();
        assert_eq!(inc.rebuild_count(), 0, "all batches should take the fast path");

        let mut all = b1;
        all.extend(b2);
        all.extend(b3);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn reappearing_session_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 1_000);
        // Session 5 reappears with later clicks.
        let b2 = vec![Click::new(5, 3, 9_000), Click::new(5, 4, 9_001)];
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert_eq!(inc.rebuild_count(), 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn out_of_order_batch_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 10_000);
        let b2 = batch(10..15, 1_000); // older than everything in b1
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert!(inc.rebuild_count() >= 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn posting_truncation_keeps_most_recent() {
        let mut inc = IncrementalIndexer::new(2).unwrap();
        // Item 0 appears in 5 consecutive sessions.
        for s in 1..=5u64 {
            inc.apply_batch(&[
                Click::new(s, 0, s * 100),
                Click::new(s, s, s * 100 + 1),
            ])
            .unwrap();
        }
        let idx = inc.snapshot().unwrap();
        assert_eq!(idx.postings(0).unwrap(), &[4, 3]); // sids of sessions 5, 4
        assert_eq!(idx.item_support(0), Some(5));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[]).unwrap();
        assert!(inc.snapshot().is_err());
        inc.apply_batch(&batch(1..3, 100)).unwrap();
        let before = inc.snapshot().unwrap().stats();
        inc.apply_batch(&[]).unwrap();
        assert_eq!(inc.snapshot().unwrap().stats(), before);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(IncrementalIndexer::new(0).is_err());
    }

    #[test]
    fn timestamp_tie_with_previous_batch_forces_rebuild() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[Click::new(1, 0, 100)]).unwrap();
        // Same session timestamp as the previous max: would break the
        // tie-break invariant, so the slow path must run.
        inc.apply_batch(&[Click::new(2, 1, 100)]).unwrap();
        assert_eq!(inc.rebuild_count(), 1);
        let all = vec![Click::new(1, 0, 100), Click::new(2, 1, 100)];
        let reference = SessionIndex::build(&all, 5).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }
}
