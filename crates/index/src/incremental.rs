//! Incremental index maintenance (future work, Section 7).
//!
//! The production pipeline rebuilds the full index once per day, so new
//! items only become recommendable with a one-day delay. An incremental
//! indexer closes that gap: click batches are folded into the index as they
//! arrive. Because dense session ids are assigned in ascending timestamp
//! order, an **append-only** batch (all sessions newer than everything seen
//! so far, no updates to existing sessions) extends every structure at the
//! edges: new timestamps append, new item lists append, and each touched
//! posting list gains entries at the *back* — postings are kept in ascending
//! session order internally (a strictly increasing append is O(1), where the
//! former most-recent-first layout paid an O(m) memmove per click) and are
//! reversed into the index's descending-recency order at [`snapshot`] time.
//! Posting lists are bounded by amortised compaction: once a list reaches
//! `2 * m_max` entries the oldest half is dropped in one O(m) drain, so the
//! per-click cost stays amortised O(1) and memory stays within `2 * m_max`
//! entries per item.
//!
//! Batches that violate the append-only precondition (re-appearing session
//! ids, out-of-order timestamps) fall back to a full rebuild — correctness
//! first. The test suite verifies that any sequence of batches produces an
//! index identical to a from-scratch build over the concatenated log.
//!
//! ## Click-log retention
//!
//! The rebuild fallback needs the click log, but retaining it forever grows
//! memory without bound. [`IncrementalIndexer::with_retained_clicks_cap`]
//! bounds the log: whenever it exceeds the cap, the oldest whole sessions
//! are dropped (never splitting a session, always keeping at least the
//! newest one) and the index is rebuilt over the retained suffix — i.e. the
//! indexer degrades to a **sliding window** over the most recent traffic,
//! which is exactly the regime session-based recommenders operate in. A
//! dropped session's external id is forgotten with it, so if that id
//! reappears later it is treated as a new session. [`retained_clicks`]
//! exposes the current log size for monitoring.
//!
//! [`snapshot`]: IncrementalIndexer::snapshot
//! [`retained_clicks`]: IncrementalIndexer::retained_clicks

use serenade_core::index::Posting;
use serenade_core::{Click, CoreError, FxHashMap, FxHashSet, ItemId, SessionId, SessionIndex, Timestamp};

/// A batch session pending insertion: `(session ts, external id, clicks)`.
type PendingSession = (Timestamp, u64, Vec<(Timestamp, ItemId)>);

/// Stateful incremental index maintainer.
#[derive(Debug, Clone)]
pub struct IncrementalIndexer {
    m_max: usize,
    /// Click log retained for rebuild fallbacks, bounded by
    /// `max_retained_clicks` (see the module docs on retention).
    clicks: Vec<Click>,
    /// Upper bound on `clicks.len()`; `usize::MAX` means unbounded.
    max_retained_clicks: usize,
    /// External ids of sessions already indexed.
    known_sessions: FxHashSet<u64>,
    /// Largest session timestamp indexed so far.
    max_session_ts: Timestamp,
    timestamps: Vec<Timestamp>,
    items_flat: Vec<ItemId>,
    items_offsets: Vec<u32>,
    /// Posting lists in **ascending** session order (append-only fast path
    /// pushes at the back in O(1)); compacted to the newest `m_max` entries
    /// whenever they reach `2 * m_max`, reversed + truncated at `snapshot`.
    postings: FxHashMap<ItemId, Vec<SessionId>>,
    supports: FxHashMap<ItemId, u32>,
    /// Reusable per-session dedup set for the append fast path (replaces an
    /// O(L²) scan over the session's flat-item suffix).
    seen_in_session: FxHashSet<ItemId>,
    /// Number of batches that took the slow (rebuild) path — observability.
    rebuilds: usize,
    /// Number of retention compactions (oldest-session drops) — observability.
    compactions: usize,
}

impl IncrementalIndexer {
    /// Creates an empty indexer with the given posting capacity and an
    /// unbounded click log.
    pub fn new(m_max: usize) -> Result<Self, CoreError> {
        Self::with_retained_clicks_cap(m_max, usize::MAX)
    }

    /// Creates an empty indexer whose retained click log is bounded by
    /// `max_retained_clicks` (see the module docs for the sliding-window
    /// semantics this implies).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `m_max == 0` or the cap is zero.
    pub fn with_retained_clicks_cap(
        m_max: usize,
        max_retained_clicks: usize,
    ) -> Result<Self, CoreError> {
        if m_max == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "m_max",
                reason: "posting-list capacity must be positive".into(),
            });
        }
        if max_retained_clicks == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "max_retained_clicks",
                reason: "click-log retention cap must be positive".into(),
            });
        }
        Ok(Self {
            m_max,
            clicks: Vec::new(),
            max_retained_clicks,
            known_sessions: FxHashSet::default(),
            max_session_ts: 0,
            timestamps: Vec::new(),
            items_flat: Vec::new(),
            items_offsets: vec![0],
            postings: FxHashMap::default(),
            supports: FxHashMap::default(),
            seen_in_session: FxHashSet::default(),
            rebuilds: 0,
            compactions: 0,
        })
    }

    /// Number of sessions currently indexed.
    pub fn num_sessions(&self) -> usize {
        self.timestamps.len()
    }

    /// How many batches required a full rebuild.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// How many retention compactions dropped old sessions from the log.
    pub fn compaction_count(&self) -> usize {
        self.compactions
    }

    /// Number of clicks currently retained for rebuild fallbacks.
    pub fn retained_clicks(&self) -> usize {
        self.clicks.len()
    }

    /// The retained click log (oldest first within the retained window).
    /// After a retention compaction this is the suffix of the traffic the
    /// index is equivalent to a from-scratch build over.
    pub fn retained_log(&self) -> &[Click] {
        &self.clicks
    }

    /// Folds a batch of clicks into the index.
    pub fn apply_batch(&mut self, batch: &[Click]) -> Result<(), CoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.clicks.extend_from_slice(batch);

        // Group the batch into sessions.
        let mut by_session: FxHashMap<u64, Vec<(Timestamp, ItemId)>> = FxHashMap::default();
        for c in batch {
            by_session.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
        }
        let mut sessions: Vec<PendingSession> = by_session
            .into_iter()
            .map(|(ext, mut sc)| {
                sc.sort_unstable();
                let ts = sc.last().expect("non-empty").0;
                (ts, ext, sc)
            })
            .collect();
        sessions.sort_unstable_by_key(|s| (s.0, s.1));

        // Append-only precondition: no session id reappears, and every new
        // session is strictly newer than everything indexed (a timestamp tie
        // with the previous batch could order dense ids differently from a
        // from-scratch build; within a batch ties are handled by sorting).
        let fast = sessions.iter().all(|(ts, ext, _)| {
            !self.known_sessions.contains(ext)
                && (self.timestamps.is_empty() || *ts > self.max_session_ts)
        });

        if fast {
            self.append_sessions(sessions)?;
        } else {
            self.rebuilds += 1;
            self.rebuild()?;
        }
        self.enforce_retention()
    }

    fn append_sessions(&mut self, sessions: Vec<PendingSession>) -> Result<(), CoreError> {
        if self.timestamps.len() + sessions.len() > u32::MAX as usize {
            return Err(CoreError::TooManySessions(self.timestamps.len() + sessions.len()));
        }
        for (ts, ext, clicks) in sessions {
            let sid = self.timestamps.len() as SessionId;
            self.timestamps.push(ts);
            self.known_sessions.insert(ext);
            self.max_session_ts = ts;
            self.seen_in_session.clear();
            for (_, item) in clicks {
                if !self.seen_in_session.insert(item) {
                    continue; // duplicate within this session
                }
                self.items_flat.push(item);
                *self.supports.entry(item).or_insert(0) += 1;
                let posting = self.postings.entry(item).or_default();
                posting.push(sid); // ascending: strictly newer than the rest
                if posting.len() >= self.m_max.saturating_mul(2) {
                    // Amortised O(1) bound: drop everything but the newest
                    // m_max entries in one drain instead of a memmove per
                    // click as the old insert(0)+truncate layout did.
                    let cut = posting.len() - self.m_max;
                    posting.drain(..cut);
                }
            }
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        Ok(())
    }

    fn rebuild(&mut self) -> Result<(), CoreError> {
        let index = SessionIndex::build(&self.clicks, self.m_max)?;
        self.timestamps.clear();
        self.items_flat.clear();
        self.items_offsets = vec![0];
        self.postings.clear();
        self.supports.clear();
        self.known_sessions.clear();
        for sid in 0..index.num_sessions() as SessionId {
            self.timestamps.push(index.session_timestamp(sid));
            self.items_flat.extend_from_slice(index.session_items(sid));
            self.items_offsets.push(self.items_flat.len() as u32);
        }
        self.max_session_ts = self.timestamps.last().copied().unwrap_or(0);
        for (item, posting) in index.postings_iter() {
            // The built index stores postings most recent first; internal
            // state keeps them ascending so the fast path can append.
            let mut ascending = posting.sessions.to_vec();
            ascending.reverse();
            self.postings.insert(item, ascending);
            self.supports.insert(item, posting.support);
        }
        // External ids must be re-derived from the click log.
        for c in &self.clicks {
            self.known_sessions.insert(c.session_id);
        }
        Ok(())
    }

    /// Enforces the click-log retention cap by dropping the oldest whole
    /// sessions (never the newest) and rebuilding over the retained suffix.
    fn enforce_retention(&mut self) -> Result<(), CoreError> {
        if self.clicks.len() <= self.max_retained_clicks {
            return Ok(());
        }
        // Per-session click counts and timestamps, ordered the same way
        // dense ids are assigned: ascending (session ts, external id).
        let mut counts: FxHashMap<u64, (Timestamp, usize)> = FxHashMap::default();
        for c in &self.clicks {
            let e = counts.entry(c.session_id).or_insert((0, 0));
            e.0 = e.0.max(c.timestamp);
            e.1 += 1;
        }
        let mut order: Vec<(Timestamp, u64, usize)> =
            counts.into_iter().map(|(ext, (ts, n))| (ts, ext, n)).collect();
        order.sort_unstable();

        let mut remaining = self.clicks.len();
        let mut dropped: FxHashSet<u64> = FxHashSet::default();
        for &(_, ext, n) in &order[..order.len().saturating_sub(1)] {
            if remaining <= self.max_retained_clicks {
                break;
            }
            dropped.insert(ext);
            remaining -= n;
        }
        if dropped.is_empty() {
            return Ok(()); // a single oversized session: keep it whole
        }
        self.compactions += 1;
        self.clicks.retain(|c| !dropped.contains(&c.session_id));
        self.rebuild()
    }

    /// Materialises the current state as a validated [`SessionIndex`].
    pub fn snapshot(&self) -> Result<SessionIndex, CoreError> {
        if self.timestamps.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let mut postings = FxHashMap::default();
        for (&item, sids) in &self.postings {
            // Internal order is ascending session id; the index wants the
            // `m_max` most recent, most recent first.
            let keep = sids.len().min(self.m_max);
            let mut sessions: Vec<SessionId> = sids[sids.len() - keep..].to_vec();
            sessions.reverse();
            postings.insert(
                item,
                Posting {
                    sessions: sessions.into_boxed_slice(),
                    support: self.supports[&item],
                },
            );
        }
        SessionIndex::from_parts(
            postings,
            self.timestamps.clone().into_boxed_slice(),
            self.items_flat.clone().into_boxed_slice(),
            self.items_offsets.clone().into_boxed_slice(),
            self.m_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(range: std::ops::Range<u64>, ts_base: u64) -> Vec<Click> {
        let mut out = Vec::new();
        for s in range {
            let ts = ts_base + s * 10;
            out.push(Click::new(s, s % 6, ts));
            out.push(Click::new(s, (s + 2) % 6, ts + 1));
        }
        out
    }

    fn assert_same(a: &SessionIndex, b: &SessionIndex) {
        assert_eq!(a.stats(), b.stats());
        for sid in 0..a.num_sessions() as SessionId {
            assert_eq!(a.session_timestamp(sid), b.session_timestamp(sid));
            assert_eq!(a.session_items(sid), b.session_items(sid));
        }
        for item in a.items() {
            assert_eq!(a.postings(item), b.postings(item), "item {item}");
            assert_eq!(a.item_support(item), b.item_support(item));
        }
    }

    #[test]
    fn append_only_batches_match_full_rebuild() {
        let b1 = batch(1..20, 1_000);
        let b2 = batch(20..35, 5_000);
        let b3 = batch(35..50, 9_000);
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        inc.apply_batch(&b3).unwrap();
        assert_eq!(inc.rebuild_count(), 0, "all batches should take the fast path");

        let mut all = b1;
        all.extend(b2);
        all.extend(b3);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn reappearing_session_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 1_000);
        // Session 5 reappears with later clicks.
        let b2 = vec![Click::new(5, 3, 9_000), Click::new(5, 4, 9_001)];
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert_eq!(inc.rebuild_count(), 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn out_of_order_batch_triggers_rebuild_and_stays_correct() {
        let b1 = batch(1..10, 10_000);
        let b2 = batch(10..15, 1_000); // older than everything in b1
        let mut inc = IncrementalIndexer::new(7).unwrap();
        inc.apply_batch(&b1).unwrap();
        inc.apply_batch(&b2).unwrap();
        assert!(inc.rebuild_count() >= 1);

        let mut all = b1;
        all.extend(b2);
        let reference = SessionIndex::build(&all, 7).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn posting_truncation_keeps_most_recent() {
        let mut inc = IncrementalIndexer::new(2).unwrap();
        // Item 0 appears in 5 consecutive sessions.
        for s in 1..=5u64 {
            inc.apply_batch(&[
                Click::new(s, 0, s * 100),
                Click::new(s, s, s * 100 + 1),
            ])
            .unwrap();
        }
        let idx = inc.snapshot().unwrap();
        assert_eq!(idx.postings(0).unwrap(), &[4, 3]); // sids of sessions 5, 4
        assert_eq!(idx.item_support(0), Some(5));
    }

    #[test]
    fn heavy_truncation_snapshot_matches_from_scratch_build() {
        // A hot item hits the posting-compaction path many times over; the
        // snapshot must still be indistinguishable from a from-scratch build
        // over the same log (the satellite-task equality guarantee).
        let m_max = 3;
        let mut inc = IncrementalIndexer::new(m_max).unwrap();
        let mut all = Vec::new();
        for s in 1..=40u64 {
            let b = vec![
                Click::new(s, 0, s * 100),           // hot item in every session
                Click::new(s, 1 + s % 4, s * 100 + 1),
            ];
            inc.apply_batch(&b).unwrap();
            all.extend(b);
        }
        assert_eq!(inc.rebuild_count(), 0);
        let reference = SessionIndex::build(&all, m_max).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn internal_posting_lists_stay_bounded() {
        // The amortised compaction must keep every internal posting list
        // within 2 * m_max entries no matter how many sessions touch it.
        let m_max = 4;
        let mut inc = IncrementalIndexer::new(m_max).unwrap();
        for s in 1..=200u64 {
            inc.apply_batch(&[Click::new(s, 0, s * 10), Click::new(s, 1, s * 10 + 1)])
                .unwrap();
        }
        for (item, posting) in &inc.postings {
            assert!(
                posting.len() < 2 * m_max,
                "posting for item {item} grew to {} entries",
                posting.len()
            );
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[]).unwrap();
        assert!(inc.snapshot().is_err());
        inc.apply_batch(&batch(1..3, 100)).unwrap();
        let before = inc.snapshot().unwrap().stats();
        inc.apply_batch(&[]).unwrap();
        assert_eq!(inc.snapshot().unwrap().stats(), before);
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(IncrementalIndexer::new(0).is_err());
        assert!(IncrementalIndexer::with_retained_clicks_cap(5, 0).is_err());
    }

    #[test]
    fn timestamp_tie_with_previous_batch_forces_rebuild() {
        let mut inc = IncrementalIndexer::new(5).unwrap();
        inc.apply_batch(&[Click::new(1, 0, 100)]).unwrap();
        // Same session timestamp as the previous max: would break the
        // tie-break invariant, so the slow path must run.
        inc.apply_batch(&[Click::new(2, 1, 100)]).unwrap();
        assert_eq!(inc.rebuild_count(), 1);
        let all = vec![Click::new(1, 0, 100), Click::new(2, 1, 100)];
        let reference = SessionIndex::build(&all, 5).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn retained_click_log_is_bounded() {
        // 200 append-only batches of 2 clicks against a 40-click cap: the
        // log (and the indexed session count) must stay bounded instead of
        // growing linearly with traffic.
        let cap = 40;
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(6, cap).unwrap();
        for s in 1..=200u64 {
            inc.apply_batch(&[Click::new(s, s % 6, s * 10), Click::new(s, (s + 2) % 6, s * 10 + 1)])
                .unwrap();
            assert!(
                inc.retained_clicks() <= cap,
                "log grew to {} clicks after session {s}",
                inc.retained_clicks()
            );
        }
        assert!(inc.compaction_count() > 0, "the cap must have been enforced");
        assert!(inc.num_sessions() <= cap, "indexed sessions follow the retained log");
    }

    #[test]
    fn retention_compaction_keeps_snapshot_consistent_with_retained_log() {
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(4, 30).unwrap();
        for s in 1..=100u64 {
            inc.apply_batch(&[Click::new(s, s % 5, s * 10), Click::new(s, (s + 1) % 5, s * 10 + 1)])
                .unwrap();
        }
        assert!(inc.compaction_count() > 0);
        // The documented sliding-window contract: the snapshot equals a
        // from-scratch build over exactly the retained suffix of the log.
        let reference = SessionIndex::build(inc.retained_log(), 4).unwrap();
        assert_same(&inc.snapshot().unwrap(), &reference);
    }

    #[test]
    fn single_oversized_session_is_kept_whole() {
        // One session bigger than the cap: retention never splits a session
        // and always keeps the newest, so the log may exceed the cap here.
        let mut inc = IncrementalIndexer::with_retained_clicks_cap(5, 3).unwrap();
        let b: Vec<Click> = (0..6).map(|i| Click::new(1, i, 100 + i)).collect();
        inc.apply_batch(&b).unwrap();
        assert_eq!(inc.retained_clicks(), 6);
        assert_eq!(inc.num_sessions(), 1);
    }
}
