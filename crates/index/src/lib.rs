//! # serenade-index — offline index generation and maintenance
//!
//! The paper builds the session-similarity index once per day with a
//! data-parallel Spark job over the last 180 days of click data, ships it as
//! a compressed artefact, and loads it into every serving machine
//! (Section 4.2). Section 7 lists two future-work directions: querying a
//! **compressed** index and **incrementally** maintaining it.
//!
//! This crate implements all of that in-process:
//!
//! * [`builder`] — a multi-threaded partition/shuffle/merge pipeline (the
//!   same relational plan as the Spark job: group-by session → group-by item
//!   → sort by recency → truncate to `m`), verified to produce exactly the
//!   same index as the sequential reference builder;
//! * [`binfmt`] — a compact little-endian binary serialisation of the index
//!   (the paper uses Avro; the format here is purpose-built and versioned);
//! * [`varint`] — LEB128 variable-length integers used by the compressed
//!   format;
//! * [`compressed`] — a delta+varint compressed index representation with
//!   on-the-fly decoding queries (future work, Section 7);
//! * [`incremental`] — an incremental indexer that folds new click batches
//!   into the index without a full rebuild, supports GDPR-style session
//!   deletion, and tracks touched items per publish (future work,
//!   Section 7);
//! * [`diff`] — semantic (dense-id-independent) snapshot diffing used to
//!   verify the touched-item tracking that drives epoch-bucketed cache
//!   invalidation.

#![warn(missing_docs)]

pub mod binfmt;
pub mod builder;
pub mod compressed;
pub mod diff;
pub mod incremental;
pub mod varint;

pub use binfmt::{read_index, write_index, BinError};
pub use builder::{build_parallel, BuilderConfig};
pub use compressed::CompressedIndex;
pub use diff::changed_items;
pub use incremental::{IncrementalIndexer, TouchedItems};
