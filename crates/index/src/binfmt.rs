//! Versioned binary serialisation of the session index.
//!
//! The paper ships the Spark-built index as compressed Avro files that the
//! serving pods ingest at startup. Here the artefact is a purpose-built
//! little-endian format with a magic header, a version byte, an FNV-1a
//! checksum over the payload, and a length/checksum **trailer** repeated at
//! the end of the stream, so a corrupted or truncated artefact is rejected
//! before it can serve garbage. Structural invariants are re-validated on
//! load via [`SessionIndex::from_parts`].
//!
//! # Hostile-input posture
//!
//! This is the artifact-*distribution* format: the router tier pushes these
//! bytes over sockets to serving nodes, so [`read_index`] must treat its
//! input as attacker-controlled (the fuzz-style suite in
//! `tests/binfmt_hostile.rs` drives this):
//!
//! * the declared payload length is capped ([`MAX_PAYLOAD_BYTES`]) and the
//!   payload is read incrementally, so a hostile length cannot force a
//!   huge up-front allocation;
//! * every count-derived size is computed with checked arithmetic and
//!   validated against the bytes actually present *before* any allocation
//!   sized from it;
//! * the trailer must agree with the header on both payload length and
//!   checksum, which catches a stream truncated exactly at a frame
//!   boundary as well as header/trailer mismatches;
//! * every failure is a clean [`BinError`] — never a panic or abort — and
//!   a node that rejects an artefact keeps serving its old generation.

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serenade_core::index::Posting;
use serenade_core::{CoreError, FxHashMap, ItemId, SessionIndex};

const MAGIC: &[u8; 8] = b"SRNIDX\x02\x00";

/// End-of-stream trailer magic (version-locked to [`MAGIC`]).
const TRAILER_MAGIC: &[u8; 8] = b"SRNEND\x02\x00";

/// Upper bound on a declared payload. A hostile header cannot make the
/// reader allocate more than this; real artefacts (even the 180M-click
/// synthetic e-commerce profile) stay far below it.
pub const MAX_PAYLOAD_BYTES: u64 = 1 << 30;

/// Errors raised when reading or writing an index artefact.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid artefact (bad magic, truncation, checksum).
    Corrupt(String),
    /// The decoded parts violated an index invariant.
    Core(CoreError),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "i/o error: {e}"),
            BinError::Corrupt(m) => write!(f, "corrupt index artefact: {m}"),
            BinError::Core(e) => write!(f, "invalid index contents: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

impl From<CoreError> for BinError {
    fn from(e: CoreError) -> Self {
        BinError::Core(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialises an index to a writer.
pub fn write_index(index: &SessionIndex, mut writer: impl Write) -> std::io::Result<()> {
    let mut payload = BytesMut::with_capacity(1 << 16);
    payload.put_u64_le(index.m_max() as u64);
    payload.put_u64_le(index.num_sessions() as u64);
    for sid in 0..index.num_sessions() as u32 {
        payload.put_u64_le(index.session_timestamp(sid));
    }
    // CSR item lists.
    let mut offset = 0u32;
    let mut offsets = Vec::with_capacity(index.num_sessions() + 1);
    offsets.push(0u32);
    for sid in 0..index.num_sessions() as u32 {
        offset += index.session_items(sid).len() as u32;
        offsets.push(offset);
    }
    for &o in &offsets {
        payload.put_u32_le(o);
    }
    payload.put_u64_le(u64::from(offset));
    for sid in 0..index.num_sessions() as u32 {
        for &item in index.session_items(sid) {
            payload.put_u64_le(item);
        }
    }
    // Postings, in sorted item order for a deterministic artefact.
    let mut items: Vec<ItemId> = index.items().collect();
    items.sort_unstable();
    payload.put_u64_le(items.len() as u64);
    for item in items {
        let entries = index.postings(item).expect("item is indexed");
        let support = index.item_support(item).expect("item is indexed");
        payload.put_u64_le(item);
        payload.put_u32_le(support);
        payload.put_u32_le(entries.len() as u32);
        // Wire format stores session ids only; the inlined timestamps are
        // derived data and are re-inlined by `SessionIndex::from_parts`.
        for e in entries {
            payload.put_u32_le(e.session);
        }
    }

    let checksum = fnv1a(&payload);
    writer.write_all(MAGIC)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&checksum.to_le_bytes())?;
    writer.write_all(&payload)?;
    // Length/checksum trailer: a reader that got this far knows the stream
    // was not cut at a frame boundary, and a header corrupted in transit
    // cannot agree with an honest trailer by accident.
    writer.write_all(TRAILER_MAGIC)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&checksum.to_le_bytes())?;
    writer.flush()
}

/// `count * size`, rejected as corrupt on overflow. Every allocation in
/// [`read_index`] is sized through this plus a `need` check against the
/// bytes actually present, so declared counts can never out-allocate the
/// real payload.
fn counted(count: usize, size: usize) -> Result<usize, BinError> {
    count
        .checked_mul(size)
        .ok_or_else(|| BinError::Corrupt("declared count overflows the address space".into()))
}

/// Deserialises an index from a reader, verifying magic, checksum, the
/// length/checksum trailer and all structural invariants. Safe on hostile
/// bytes: allocation is bounded by the bytes actually present (capped at
/// [`MAX_PAYLOAD_BYTES`]) and every malformation is a clean [`BinError`].
pub fn read_index(mut reader: impl Read) -> Result<SessionIndex, BinError> {
    let mut header = [0u8; 8 + 8 + 8];
    reader.read_exact(&mut header).map_err(|_| BinError::Corrupt("short header".into()))?;
    if &header[..8] != MAGIC {
        return Err(BinError::Corrupt("bad magic / unsupported version".into()));
    }
    let declared_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if declared_len > MAX_PAYLOAD_BYTES {
        return Err(BinError::Corrupt(format!(
            "declared payload of {declared_len} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte cap"
        )));
    }
    let len = declared_len as usize;
    // Incremental read (not `vec![0; len]` + read_exact): a hostile length
    // only costs as much memory as bytes actually arrive.
    let mut payload = Vec::new();
    (&mut reader)
        .take(declared_len)
        .read_to_end(&mut payload)
        .map_err(|_| BinError::Corrupt("truncated payload".into()))?;
    if payload.len() != len {
        return Err(BinError::Corrupt("truncated payload".into()));
    }
    if fnv1a(&payload) != checksum {
        return Err(BinError::Corrupt("checksum mismatch".into()));
    }
    let mut trailer = [0u8; 8 + 8 + 8];
    reader.read_exact(&mut trailer).map_err(|_| BinError::Corrupt("missing trailer".into()))?;
    if &trailer[..8] != TRAILER_MAGIC {
        return Err(BinError::Corrupt("bad trailer magic".into()));
    }
    if u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes")) != declared_len
        || u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes")) != checksum
    {
        return Err(BinError::Corrupt("trailer disagrees with header".into()));
    }

    let mut buf = Bytes::from(payload);
    let need = |buf: &Bytes, n: usize| -> Result<(), BinError> {
        if buf.remaining() < n {
            Err(BinError::Corrupt("payload shorter than declared structure".into()))
        } else {
            Ok(())
        }
    };

    need(&buf, 16)?;
    let m_max = buf.get_u64_le() as usize;
    let num_sessions = buf.get_u64_le() as usize;
    if num_sessions > u32::MAX as usize {
        return Err(BinError::Corrupt("session count exceeds u32 space".into()));
    }
    need(&buf, counted(num_sessions, 8)?)?;
    let timestamps: Vec<u64> = (0..num_sessions).map(|_| buf.get_u64_le()).collect();
    need(&buf, counted(num_sessions + 1, 4)?)?;
    let offsets: Vec<u32> = (0..=num_sessions).map(|_| buf.get_u32_le()).collect();
    need(&buf, 8)?;
    let flat_len = buf.get_u64_le() as usize;
    need(&buf, counted(flat_len, 8)?)?;
    let items_flat: Vec<ItemId> = (0..flat_len).map(|_| buf.get_u64_le()).collect();
    need(&buf, 8)?;
    let num_postings = buf.get_u64_le() as usize;
    // Each posting occupies ≥ 16 bytes, so a count the remaining payload
    // cannot hold is rejected *before* the map reserve sized from it.
    need(&buf, counted(num_postings, 16)?)?;
    let mut postings: FxHashMap<ItemId, Posting> = FxHashMap::default();
    postings.reserve(num_postings);
    for _ in 0..num_postings {
        need(&buf, 16)?;
        let item = buf.get_u64_le();
        let support = buf.get_u32_le();
        let plen = buf.get_u32_le() as usize;
        need(&buf, counted(plen, 4)?)?;
        let sessions: Vec<u32> = (0..plen).map(|_| buf.get_u32_le()).collect();
        postings.insert(item, Posting { sessions: sessions.into_boxed_slice(), support });
    }
    if buf.has_remaining() {
        return Err(BinError::Corrupt("trailing bytes after payload".into()));
    }

    Ok(SessionIndex::from_parts(
        postings,
        timestamps.into_boxed_slice(),
        items_flat.into_boxed_slice(),
        offsets.into_boxed_slice(),
        m_max,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::Click;

    fn sample_index() -> SessionIndex {
        let mut clicks = Vec::new();
        for s in 0..30u64 {
            clicks.push(Click::new(s + 1, s % 5, 100 + s * 10));
            clicks.push(Click::new(s + 1, (s + 1) % 5, 101 + s * 10));
        }
        SessionIndex::build(&clicks, 8).unwrap()
    }

    fn serialise(index: &SessionIndex) -> Vec<u8> {
        let mut out = Vec::new();
        write_index(index, &mut out).unwrap();
        out
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let bytes = serialise(&index);
        let loaded = read_index(&bytes[..]).unwrap();
        assert_eq!(loaded.stats(), index.stats());
        assert_eq!(loaded.m_max(), index.m_max());
        for sid in 0..index.num_sessions() as u32 {
            assert_eq!(loaded.session_timestamp(sid), index.session_timestamp(sid));
            assert_eq!(loaded.session_items(sid), index.session_items(sid));
        }
        for item in index.items() {
            assert_eq!(loaded.postings(item), index.postings(item));
            assert_eq!(loaded.item_support(item), index.item_support(item));
        }
    }

    #[test]
    fn serialisation_is_deterministic() {
        let index = sample_index();
        assert_eq!(serialise(&index), serialise(&index));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = serialise(&sample_index());
        bytes[0] ^= 0xFF;
        assert!(matches!(read_index(&bytes[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = serialise(&sample_index());
        // Last payload byte sits just before the 24-byte trailer.
        let last_payload = bytes.len() - 25;
        bytes[last_payload] ^= 0x01;
        let err = read_index(&bytes[..]).unwrap_err();
        assert!(matches!(err, BinError::Corrupt(m) if m.contains("checksum")));
    }

    #[test]
    fn flipped_trailer_byte_is_rejected() {
        // A flip confined to the trailer (header and payload intact) must
        // still fail: header and trailer have to agree byte for byte.
        let pristine = serialise(&sample_index());
        for offset in 1..=24 {
            let mut bytes = pristine.clone();
            let pos = bytes.len() - offset;
            bytes[pos] ^= 0x01;
            assert!(
                matches!(read_index(&bytes[..]), Err(BinError::Corrupt(_))),
                "trailer flip at len-{offset} was accepted"
            );
        }
    }

    #[test]
    fn truncated_artefact_is_rejected() {
        let bytes = serialise(&sample_index());
        for cut in [0, 5, 20, bytes.len() - 3] {
            assert!(
                matches!(read_index(&bytes[..cut]), Err(BinError::Corrupt(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = serialise(&sample_index());
        // Extend the declared payload length over garbage bytes.
        bytes.extend_from_slice(&[0u8; 4]);
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) + 4;
        bytes[8..16].copy_from_slice(&declared.to_le_bytes());
        // Checksum now mismatches (payload changed length).
        assert!(matches!(read_index(&bytes[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn error_display_variants() {
        let io = BinError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(BinError::Corrupt("x".into()).to_string().contains('x'));
    }
}
