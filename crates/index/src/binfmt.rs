//! Versioned binary serialisation of the session index.
//!
//! The paper ships the Spark-built index as compressed Avro files that the
//! serving pods ingest at startup. Here the artefact is a purpose-built
//! little-endian format with a magic header, a version byte and an FNV-1a
//! checksum over the payload, so a corrupted or truncated artefact is
//! rejected before it can serve garbage. Structural invariants are
//! re-validated on load via [`SessionIndex::from_parts`].

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serenade_core::index::Posting;
use serenade_core::{CoreError, FxHashMap, ItemId, SessionIndex};

const MAGIC: &[u8; 8] = b"SRNIDX\x01\x00";

/// Errors raised when reading or writing an index artefact.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid artefact (bad magic, truncation, checksum).
    Corrupt(String),
    /// The decoded parts violated an index invariant.
    Core(CoreError),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "i/o error: {e}"),
            BinError::Corrupt(m) => write!(f, "corrupt index artefact: {m}"),
            BinError::Core(e) => write!(f, "invalid index contents: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

impl From<CoreError> for BinError {
    fn from(e: CoreError) -> Self {
        BinError::Core(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Serialises an index to a writer.
pub fn write_index(index: &SessionIndex, mut writer: impl Write) -> std::io::Result<()> {
    let mut payload = BytesMut::with_capacity(1 << 16);
    payload.put_u64_le(index.m_max() as u64);
    payload.put_u64_le(index.num_sessions() as u64);
    for sid in 0..index.num_sessions() as u32 {
        payload.put_u64_le(index.session_timestamp(sid));
    }
    // CSR item lists.
    let mut offset = 0u32;
    let mut offsets = Vec::with_capacity(index.num_sessions() + 1);
    offsets.push(0u32);
    for sid in 0..index.num_sessions() as u32 {
        offset += index.session_items(sid).len() as u32;
        offsets.push(offset);
    }
    for &o in &offsets {
        payload.put_u32_le(o);
    }
    payload.put_u64_le(u64::from(offset));
    for sid in 0..index.num_sessions() as u32 {
        for &item in index.session_items(sid) {
            payload.put_u64_le(item);
        }
    }
    // Postings, in sorted item order for a deterministic artefact.
    let mut items: Vec<ItemId> = index.items().collect();
    items.sort_unstable();
    payload.put_u64_le(items.len() as u64);
    for item in items {
        let sessions = index.postings(item).expect("item is indexed");
        let support = index.item_support(item).expect("item is indexed");
        payload.put_u64_le(item);
        payload.put_u32_le(support);
        payload.put_u32_le(sessions.len() as u32);
        for &sid in sessions {
            payload.put_u32_le(sid);
        }
    }

    writer.write_all(MAGIC)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&fnv1a(&payload).to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// Deserialises an index from a reader, verifying magic, checksum and all
/// structural invariants.
pub fn read_index(mut reader: impl Read) -> Result<SessionIndex, BinError> {
    let mut header = [0u8; 8 + 8 + 8];
    reader.read_exact(&mut header).map_err(|_| BinError::Corrupt("short header".into()))?;
    if &header[..8] != MAGIC {
        return Err(BinError::Corrupt("bad magic / unsupported version".into()));
    }
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).map_err(|_| BinError::Corrupt("truncated payload".into()))?;
    if fnv1a(&payload) != checksum {
        return Err(BinError::Corrupt("checksum mismatch".into()));
    }

    let mut buf = Bytes::from(payload);
    let need = |buf: &Bytes, n: usize| -> Result<(), BinError> {
        if buf.remaining() < n {
            Err(BinError::Corrupt("payload shorter than declared structure".into()))
        } else {
            Ok(())
        }
    };

    need(&buf, 16)?;
    let m_max = buf.get_u64_le() as usize;
    let num_sessions = buf.get_u64_le() as usize;
    if num_sessions > u32::MAX as usize {
        return Err(BinError::Corrupt("session count exceeds u32 space".into()));
    }
    need(&buf, num_sessions * 8)?;
    let timestamps: Vec<u64> = (0..num_sessions).map(|_| buf.get_u64_le()).collect();
    need(&buf, (num_sessions + 1) * 4)?;
    let offsets: Vec<u32> = (0..=num_sessions).map(|_| buf.get_u32_le()).collect();
    need(&buf, 8)?;
    let flat_len = buf.get_u64_le() as usize;
    need(&buf, flat_len * 8)?;
    let items_flat: Vec<ItemId> = (0..flat_len).map(|_| buf.get_u64_le()).collect();
    need(&buf, 8)?;
    let num_postings = buf.get_u64_le() as usize;
    let mut postings: FxHashMap<ItemId, Posting> = FxHashMap::default();
    postings.reserve(num_postings);
    for _ in 0..num_postings {
        need(&buf, 16)?;
        let item = buf.get_u64_le();
        let support = buf.get_u32_le();
        let plen = buf.get_u32_le() as usize;
        need(&buf, plen * 4)?;
        let sessions: Vec<u32> = (0..plen).map(|_| buf.get_u32_le()).collect();
        postings.insert(item, Posting { sessions: sessions.into_boxed_slice(), support });
    }
    if buf.has_remaining() {
        return Err(BinError::Corrupt("trailing bytes after payload".into()));
    }

    Ok(SessionIndex::from_parts(
        postings,
        timestamps.into_boxed_slice(),
        items_flat.into_boxed_slice(),
        offsets.into_boxed_slice(),
        m_max,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serenade_core::Click;

    fn sample_index() -> SessionIndex {
        let mut clicks = Vec::new();
        for s in 0..30u64 {
            clicks.push(Click::new(s + 1, s % 5, 100 + s * 10));
            clicks.push(Click::new(s + 1, (s + 1) % 5, 101 + s * 10));
        }
        SessionIndex::build(&clicks, 8).unwrap()
    }

    fn serialise(index: &SessionIndex) -> Vec<u8> {
        let mut out = Vec::new();
        write_index(index, &mut out).unwrap();
        out
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let bytes = serialise(&index);
        let loaded = read_index(&bytes[..]).unwrap();
        assert_eq!(loaded.stats(), index.stats());
        assert_eq!(loaded.m_max(), index.m_max());
        for sid in 0..index.num_sessions() as u32 {
            assert_eq!(loaded.session_timestamp(sid), index.session_timestamp(sid));
            assert_eq!(loaded.session_items(sid), index.session_items(sid));
        }
        for item in index.items() {
            assert_eq!(loaded.postings(item), index.postings(item));
            assert_eq!(loaded.item_support(item), index.item_support(item));
        }
    }

    #[test]
    fn serialisation_is_deterministic() {
        let index = sample_index();
        assert_eq!(serialise(&index), serialise(&index));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = serialise(&sample_index());
        bytes[0] ^= 0xFF;
        assert!(matches!(read_index(&bytes[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = serialise(&sample_index());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = read_index(&bytes[..]).unwrap_err();
        assert!(matches!(err, BinError::Corrupt(m) if m.contains("checksum")));
    }

    #[test]
    fn truncated_artefact_is_rejected() {
        let bytes = serialise(&sample_index());
        for cut in [0, 5, 20, bytes.len() - 3] {
            assert!(
                matches!(read_index(&bytes[..cut]), Err(BinError::Corrupt(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = serialise(&sample_index());
        // Extend the declared payload length over garbage bytes.
        bytes.extend_from_slice(&[0u8; 4]);
        let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) + 4;
        bytes[8..16].copy_from_slice(&declared.to_le_bytes());
        // Checksum now mismatches (payload changed length).
        assert!(matches!(read_index(&bytes[..]), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn error_display_variants() {
        let io = BinError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(BinError::Corrupt("x".into()).to_string().contains('x'));
    }
}
