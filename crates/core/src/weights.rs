//! Weighting functions of VS-kNN / VMIS-kNN.
//!
//! Three families of weights shape the final item scores (Section 2/3 of the
//! paper):
//!
//! * the **decay function π** assigns a weight to each item of the evolving
//!   session based on its insertion order — more recent items contribute more
//!   to the session similarity;
//! * the **match weight λ** weighs a neighbour session's contribution by the
//!   position of the *most recent shared item* between the evolving session
//!   and the neighbour;
//! * the **idf weighting** de-emphasises highly frequent items when scoring
//!   candidate items (a classic information-retrieval technique). VS-kNN uses
//!   `1 + log(|H|/h_i)`; VMIS-kNN simplifies this to `log(|H|/h_i)`, which
//!   the authors found to perform better on held-out data.

use serde::{Deserialize, Serialize};

/// Decay function π applied to the insertion order of evolving-session items.
///
/// Positions are 1-based insertion orders: in a session of length `n`, the
/// oldest item has position 1 and the most recent position `n` (the toy
/// example in Section 2: `ω(s) = [.. 1 2 .. 3]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecayFunction {
    /// `π(pos) = pos / n` — the paper's default ("divide the insertion time
    /// by the session length").
    LinearByPosition,
    /// `π(pos) = (pos / n)²` — emphasises recent items more sharply.
    Quadratic,
    /// `π(pos) = 1 / (n - pos + 1)` — harmonic decay from the session end.
    Harmonic,
    /// `π(pos) = 1 / log₂(n - pos + 2)` — logarithmic decay from the end.
    Logarithmic,
    /// `π(pos) = 1` — no decay; every item contributes equally.
    Uniform,
}

impl DecayFunction {
    /// Weight of the item at 1-based position `pos` in a session of length `n`.
    ///
    /// `pos` must satisfy `1 <= pos <= n`.
    #[inline]
    pub fn weight(self, pos: usize, n: usize) -> f32 {
        debug_assert!(pos >= 1 && pos <= n, "position {pos} out of range 1..={n}");
        match self {
            DecayFunction::LinearByPosition => pos as f32 / n as f32,
            DecayFunction::Quadratic => {
                let w = pos as f32 / n as f32;
                w * w
            }
            DecayFunction::Harmonic => 1.0 / (n - pos + 1) as f32,
            DecayFunction::Logarithmic => 1.0 / ((n - pos + 2) as f32).log2(),
            DecayFunction::Uniform => 1.0,
        }
    }
}

/// Match weight λ applied to the insertion position of the most recent item
/// shared between the evolving session and a neighbour session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchWeight {
    /// The paper's default: `λ(x) = 1 − 0.1·x` for insertion times `x < 10`,
    /// and zero otherwise (Section 2, toy example: `λ(3) = 0.7`).
    ///
    /// Because λ vanishes for positions ≥ 10 this weight presumes the
    /// evolving session is capped (the paper caps the number of considered
    /// items; see `VmisConfig::max_session_len`).
    PaperLinear,
    /// `λ(x) = max(0, 1 − 0.1·(n − x))` — linear decay measured from the
    /// *end* of the session, as used by the session-rec reference code: the
    /// most recent shared item gets weight 1.0, ten-or-more steps back gets 0.
    LinearFromEnd,
    /// `λ(x) = (x / n)²` — quadratic in the relative position.
    Quadratic,
    /// `λ(x) = 1` — neighbour contributions are not position-weighted.
    Uniform,
}

impl MatchWeight {
    /// Weight for a most-recent shared item at 1-based position `pos` in an
    /// evolving session of length `n`.
    #[inline]
    pub fn weight(self, pos: usize, n: usize) -> f32 {
        debug_assert!(pos >= 1 && pos <= n, "position {pos} out of range 1..={n}");
        match self {
            MatchWeight::PaperLinear => {
                if pos < 10 {
                    1.0 - 0.1 * pos as f32
                } else {
                    0.0
                }
            }
            MatchWeight::LinearFromEnd => {
                let back = (n - pos) as f32;
                (1.0 - 0.1 * back).max(0.0)
            }
            MatchWeight::Quadratic => {
                let w = pos as f32 / n as f32;
                w * w
            }
            MatchWeight::Uniform => 1.0,
        }
    }
}

/// Inverse-document-frequency weighting applied to candidate items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdfWeighting {
    /// `log(|H| / h_i)` — VMIS-kNN's simplified weighting (Section 3).
    Log,
    /// `1 + log(|H| / h_i)` — the original VS-kNN weighting (Section 2).
    OnePlusLog,
    /// No idf weighting; every item weighs 1.
    None,
}

impl IdfWeighting {
    /// Weight for an item occurring in `h_i` of `num_sessions` historical
    /// sessions. `h_i` must be ≥ 1 (the item occurs in at least one session,
    /// otherwise it could not be scored).
    #[inline]
    pub fn weight(self, h_i: usize, num_sessions: usize) -> f32 {
        debug_assert!(h_i >= 1 && h_i <= num_sessions);
        match self {
            IdfWeighting::Log => (num_sessions as f32 / h_i as f32).ln(),
            IdfWeighting::OnePlusLog => 1.0 + (num_sessions as f32 / h_i as f32).ln(),
            IdfWeighting::None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-6;

    #[test]
    fn linear_decay_matches_paper_toy_example() {
        // Section 2 toy example: session [1, 2, 4], π(ω) = [1/3, 2/3, 3/3].
        let d = DecayFunction::LinearByPosition;
        assert!((d.weight(1, 3) - 1.0 / 3.0).abs() < EPS);
        assert!((d.weight(2, 3) - 2.0 / 3.0).abs() < EPS);
        assert!((d.weight(3, 3) - 1.0).abs() < EPS);
    }

    #[test]
    fn paper_linear_match_weight_matches_toy_example() {
        // Section 2 toy example: λ(3) = 1 − 0.1·3 = 0.7.
        assert!((MatchWeight::PaperLinear.weight(3, 3) - 0.7).abs() < EPS);
    }

    #[test]
    fn paper_linear_is_zero_from_position_ten() {
        assert!((MatchWeight::PaperLinear.weight(9, 20) - 0.1).abs() < EPS);
        assert_eq!(MatchWeight::PaperLinear.weight(10, 20), 0.0);
        assert_eq!(MatchWeight::PaperLinear.weight(15, 20), 0.0);
    }

    #[test]
    fn linear_from_end_favours_recent_items() {
        let w = MatchWeight::LinearFromEnd;
        assert!((w.weight(5, 5) - 1.0).abs() < EPS); // most recent
        assert!((w.weight(4, 5) - 0.9).abs() < EPS);
        assert_eq!(w.weight(1, 20), 0.0); // 19 steps back -> clamped
    }

    #[test]
    fn decay_weights_are_monotone_in_position() {
        for d in [
            DecayFunction::LinearByPosition,
            DecayFunction::Quadratic,
            DecayFunction::Harmonic,
            DecayFunction::Logarithmic,
        ] {
            for n in [1usize, 2, 5, 17] {
                for pos in 1..n {
                    assert!(
                        d.weight(pos, n) <= d.weight(pos + 1, n) + EPS,
                        "{d:?} not monotone at pos={pos}, n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn decay_weights_are_in_unit_interval() {
        for d in [
            DecayFunction::LinearByPosition,
            DecayFunction::Quadratic,
            DecayFunction::Harmonic,
            DecayFunction::Logarithmic,
            DecayFunction::Uniform,
        ] {
            for n in [1usize, 3, 10, 100] {
                for pos in 1..=n {
                    let w = d.weight(pos, n);
                    assert!((0.0..=1.0).contains(&w), "{d:?}({pos},{n}) = {w}");
                }
            }
        }
    }

    #[test]
    fn idf_log_vs_one_plus_log() {
        let n = 100;
        for h in [1usize, 10, 50, 100] {
            let log = IdfWeighting::Log.weight(h, n);
            let oplus = IdfWeighting::OnePlusLog.weight(h, n);
            assert!((oplus - log - 1.0).abs() < EPS);
        }
        assert_eq!(IdfWeighting::None.weight(7, n), 1.0);
    }

    #[test]
    fn idf_decreases_with_frequency() {
        let n = 1000;
        let rare = IdfWeighting::Log.weight(1, n);
        let common = IdfWeighting::Log.weight(900, n);
        assert!(rare > common);
        // An item in every session has idf log(1) = 0.
        assert!(IdfWeighting::Log.weight(n, n).abs() < EPS);
    }
}
