//! FxHash-style fast hashing for hot-path hash maps.
//!
//! The default `SipHash 1-3` hasher of the standard library trades speed for
//! HashDoS resistance. The VMIS-kNN inner loops perform one hash-map probe
//! per `(item, historical session)` pair — up to `|s| · m` probes per request
//! — so hashing cost directly bounds the serving latency. We use the FxHash
//! multiply-rotate scheme (as popularised by rustc and recommended by the
//! Rust Performance Book) implemented locally to stay within the approved
//! dependency set. Keys are internal integer identifiers, never
//! attacker-controlled strings, so HashDoS is not a concern here.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx (Firefox/rustc) hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for integer-keyed maps.
///
/// Identical scheme to `rustc-hash`'s `FxHasher`: for every 8-byte word `w`,
/// `state = (state.rotate_left(5) ^ w) * SEED`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Creates an [`FxHashMap`] with at least `capacity` slots preallocated.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Creates an [`FxHashSet`] with at least `capacity` slots preallocated.
pub fn fx_set_with_capacity<K>(capacity: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Not a collision-resistance claim; just a sanity check that the
        // multiply actually mixes.
        let h: Vec<u64> = (0u64..64).map(hash_one).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "nearby integers must not collide");
    }

    #[test]
    fn partial_words_are_hashed() {
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([1u8; 9]), hash_one([1u8; 10]));
    }

    #[test]
    fn map_and_set_are_usable() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(8);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<u64> = fx_set_with_capacity(8);
        s.insert(5);
        assert!(s.contains(&5));
        assert!(!s.contains(&6));
    }
}
