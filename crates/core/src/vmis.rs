//! The VMIS-kNN online computation (Algorithm 2 of the paper).
//!
//! Given an evolving session and the prebuilt [`SessionIndex`], VMIS-kNN
//! computes the `k` most similar historical sessions out of the `m` most
//! recent sessions sharing at least one item, then scores all items occurring
//! in those neighbours. Intermediate state is bounded: a similarity hash map
//! `r` of at most `m` entries, a recency min-heap `b_t` of capacity `m`
//! driving eviction of the oldest candidate, and a top-k min-heap `N_s`.
//!
//! Because each posting list is sorted by descending recency, the session
//! loop can **early-stop** as soon as the current historical session is no
//! more recent than the oldest session tracked in the full heap `b_t` — no
//! later entry of the posting list can be admitted either.
//!
//! ## Tie-breaking refinement
//!
//! The paper compares raw timestamps (`t_j > t_l`). We order candidates by
//! the composite key `(timestamp, session id)`, which is a *strict* total
//! order (dense ids are assigned in ascending timestamp order). This makes
//! eviction deterministic under timestamp ties and makes early stopping
//! **exact**: VMIS-kNN with and without early stopping, and the scan-based
//! VS-kNN baseline, all return identical neighbour sets — a property the test
//! suite verifies.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::hash::{fx_map_with_capacity, FxHashMap, FxHasher};
use crate::heap::RuntimeDaryHeap;
use crate::index::SessionIndex;
use crate::types::{ItemId, ItemScore, SessionId, Timestamp};
use crate::weights::{DecayFunction, IdfWeighting, MatchWeight};

/// Arity of the heaps used by the online computation.
///
/// The paper leverages octonary heaps (d = 8) instead of binary heaps as a
/// micro-optimisation: flatter trees mean cheaper insertions, which dominate
/// this workload. The `A1` ablation benchmark sweeps this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapArity {
    /// Classic binary heap (d = 2).
    Binary,
    /// Quaternary heap (d = 4).
    Quaternary,
    /// Octonary heap (d = 8) — the paper's default.
    Octonary,
    /// 16-ary heap.
    Sedenary,
}

impl HeapArity {
    /// Number of children per node.
    #[inline]
    pub fn d(self) -> usize {
        match self {
            HeapArity::Binary => 2,
            HeapArity::Quaternary => 4,
            HeapArity::Octonary => 8,
            HeapArity::Sedenary => 16,
        }
    }
}

/// Hyperparameters and implementation knobs of VMIS-kNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmisConfig {
    /// Sample size `m`: how many of the most recent matching historical
    /// sessions to consider. Must not exceed the index's `m_max`.
    pub m: usize,
    /// Number of nearest neighbour sessions `k`.
    pub k: usize,
    /// How many recommendations to return (the paper's frontend needs 21).
    pub how_many: usize,
    /// Maximum number of (most recent) evolving-session items to consider.
    /// The paper caps this to bound the per-request latency.
    pub max_session_len: usize,
    /// Decay function π over evolving-session positions.
    pub decay: DecayFunction,
    /// Match weight λ over the position of the most recent shared item.
    pub match_weight: MatchWeight,
    /// Idf weighting of candidate items.
    pub idf: IdfWeighting,
    /// Multiply similarities by `1/|s|` as in original VS-kNN. VMIS-kNN drops
    /// this constant factor (it does not change the ranking); enable it to
    /// reproduce VS-kNN scores bit-for-bit.
    pub normalize_by_session_length: bool,
    /// Early stopping on the recency-sorted posting lists (Section 3).
    pub early_stopping: bool,
    /// Heap arity for `b_t` and `N_s`.
    pub heap_arity: HeapArity,
    /// Remove items that already occur in the evolving session from the
    /// recommendation list (typically desired when serving product pages).
    pub exclude_session_items: bool,
}

impl Default for VmisConfig {
    /// Paper-flavoured defaults: `m = 500`, `k = 100`, 21 recommendations,
    /// session cap 9 (keeps the paper's λ non-zero across the window),
    /// linear decay, the paper's linear match weight, `log(|H|/h_i)` idf,
    /// early stopping on, octonary heaps.
    fn default() -> Self {
        Self {
            m: 500,
            k: 100,
            how_many: 21,
            max_session_len: 9,
            decay: DecayFunction::LinearByPosition,
            match_weight: MatchWeight::PaperLinear,
            idf: IdfWeighting::Log,
            normalize_by_session_length: false,
            early_stopping: true,
            heap_arity: HeapArity::Octonary,
            exclude_session_items: false,
        }
    }
}

impl VmisConfig {
    /// Validates the configuration against an index.
    pub fn validate(&self, index: &SessionIndex) -> Result<(), CoreError> {
        self.validate_with_m_max(index.m_max())
    }

    /// Validates the configuration against a posting capacity `m_max` without
    /// a materialised [`SessionIndex`]. Every query path — [`VmisKnn::new`],
    /// the compressed index, the incremental snapshots — routes through this
    /// helper so all of them accept and reject exactly the same configs.
    pub fn validate_with_m_max(&self, m_max: usize) -> Result<(), CoreError> {
        fn positive(name: &'static str, v: usize) -> Result<(), CoreError> {
            if v == 0 {
                Err(CoreError::InvalidConfig {
                    parameter: name,
                    reason: "must be positive".into(),
                })
            } else {
                Ok(())
            }
        }
        positive("m", self.m)?;
        positive("k", self.k)?;
        positive("how_many", self.how_many)?;
        positive("max_session_len", self.max_session_len)?;
        if self.m > m_max {
            return Err(CoreError::InvalidConfig {
                parameter: "m",
                reason: format!(
                    "sample size {} exceeds the index posting capacity m_max = {m_max}",
                    self.m,
                ),
            });
        }
        Ok(())
    }
}

/// Composite recency key: strictly totally ordered even under timestamp ties.
type RecencyKey = (Timestamp, SessionId);

/// Fx hash of a capped window, used as the batch dedupe fast path.
#[inline]
fn window_hash(window: &[ItemId]) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    for &item in window {
        h.write_u64(item);
    }
    h.finish()
}

/// Reusable per-thread buffers for the online computation.
///
/// A production recommendation server keeps one `Scratch` per worker thread
/// so that steady-state requests perform no heap allocation (Rust Performance
/// Book: reuse workhorse collections).
#[derive(Debug)]
pub struct Scratch {
    /// Temporary similarity scores `r`.
    r: FxHashMap<SessionId, f32>,
    /// Min-heap `b_t` over recency keys of the sessions in `r`.
    bt: RuntimeDaryHeap<RecencyKey, ()>,
    /// Min-heap `N_s` over (similarity, recency) for the top-k neighbours.
    topk: RuntimeDaryHeap<(f32, Timestamp, SessionId), ()>,
    /// Latest 1-based position of each item in the capped evolving session.
    pos: FxHashMap<ItemId, usize>,
    /// Candidate item scores `d`, as a dense epoch-stamped accumulator
    /// indexed by the recommender's per-item slot (first appearance order in
    /// the flat CSR storage). `acc[s]` is only meaningful when
    /// `acc_epoch[s] == epoch`; stale slots cost nothing to "clear".
    acc: Vec<f32>,
    /// Epoch stamp per accumulator slot.
    acc_epoch: Vec<u32>,
    /// Current request epoch. Starts at 1 and is bumped by `clear()`; 0 is
    /// reserved for "never touched" so freshly grown slots are always stale.
    epoch: u32,
    /// Slots touched this epoch, in first-touch order — the worklist
    /// `take_top` extracts from.
    touched: Vec<u32>,
    /// Neighbours in canonical (ascending session id) order for scoring.
    neighbors: Vec<(SessionId, f32)>,
    /// Scored output buffer.
    out: Vec<ItemScore>,
}

impl Scratch {
    /// Creates scratch buffers sized for the default configuration. Buffers
    /// grow on demand, so a `Scratch` works with any [`VmisKnn`]; sizing for
    /// the actual config ([`Scratch::for_config`]) merely avoids the first
    /// few reallocations.
    pub fn new() -> Self {
        Self::for_config(&VmisConfig::default())
    }

    /// Creates scratch buffers sized for `config`.
    pub fn for_config(config: &VmisConfig) -> Self {
        let d = config.heap_arity.d();
        Self {
            r: fx_map_with_capacity(config.m * 2),
            bt: RuntimeDaryHeap::with_arity_and_capacity(d, config.m),
            topk: RuntimeDaryHeap::with_arity_and_capacity(d, config.k),
            pos: fx_map_with_capacity(config.max_session_len * 2),
            // The accumulator is sized by the *index* (one slot per distinct
            // item), which a config-only constructor cannot know — it grows
            // to the recommender's slot count on first use and stays there.
            acc: Vec::new(),
            acc_epoch: Vec::new(),
            epoch: 1,
            touched: Vec::new(),
            neighbors: Vec::with_capacity(config.k),
            out: Vec::with_capacity(config.how_many),
        }
    }

    fn clear(&mut self) {
        self.r.clear();
        self.bt.clear();
        self.topk.clear();
        self.pos.clear();
        self.touched.clear();
        // Advancing the epoch invalidates every accumulator slot in O(1).
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.acc_epoch.fill(0);
            self.epoch = 1;
        }
        self.neighbors.clear();
        self.out.clear();
    }

    /// Grows the accumulator to cover `slots` distinct items. New slots carry
    /// epoch 0, which never matches a live epoch.
    #[inline]
    fn ensure_slots(&mut self, slots: usize) {
        if self.acc.len() < slots {
            self.acc.resize(slots, 0.0);
            self.acc_epoch.resize(slots, 0);
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable buffers for [`VmisKnn::recommend_batch`]: one [`Scratch`] per
/// *unique* capped window in the batch plus the dedupe and scheduling state
/// of the shared traversal. Buffers grow to the largest batch seen and are
/// reused across batches, so a steady-state batching worker allocates
/// nothing per batch beyond the returned result lists.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Per-unique-window kernel state.
    slots: Vec<Scratch>,
    /// Owned copies of the unique capped windows (the dedupe keys). Entries
    /// beyond the current batch's unique count are stale capacity.
    windows: Vec<Vec<ItemId>>,
    /// Fx hash of each unique window, parallel to `windows` — the dedupe
    /// scan compares hashes first and touches the item slices only on a
    /// hash match.
    hashes: Vec<u64>,
    /// Last request index using each unique slot; that requester takes the
    /// result by move instead of cloning.
    last_use: Vec<usize>,
    /// Traversal plan per unique window: `(item, π)` steps in the exact
    /// order the sequential kernel would process them.
    plans: Vec<Vec<(ItemId, f32)>>,
    /// Request index → unique-window index.
    assign: Vec<usize>,
    /// Per-unique-window scored output of the current batch.
    results: Vec<Vec<ItemScore>>,
}

/// A neighbour session together with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Dense id of the historical session.
    pub session: SessionId,
    /// Decayed dot-product similarity `r_n`.
    pub similarity: f32,
}

/// The VMIS-kNN recommender: a session index plus hyperparameters.
#[derive(Debug, Clone)]
pub struct VmisKnn {
    index: Arc<SessionIndex>,
    config: VmisConfig,
    /// Idf weight of every entry of the index's flat CSR item storage:
    /// `idf_flat[i]` weighs the item at flat position `i`, so the scoring
    /// loop walks it in lockstep with `session_items` instead of hashing
    /// each (neighbour, item) pair. Values are identical to the former
    /// per-item map (same `config.idf.weight`, same 1.0 fallback for items
    /// without a posting), keeping the output bit-identical.
    idf_flat: Box<[f32]>,
    /// Dense accumulator slot of every entry of the flat CSR item storage:
    /// `slot_flat[i]` is the per-item slot of the item at flat position `i`
    /// (slots assigned in first-appearance order). Walked in lockstep with
    /// `idf_flat`, it turns the scoring loop's per-item hash probe into an
    /// array index into [`Scratch::acc`].
    slot_flat: Box<[u32]>,
    /// Item id of each accumulator slot (the inverse of `slot_flat`).
    slot_items: Box<[ItemId]>,
}

impl VmisKnn {
    /// Creates a recommender over `index` with the given configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if a parameter is out of range or `m`
    /// exceeds the index's posting capacity.
    pub fn new(index: impl Into<Arc<SessionIndex>>, config: VmisConfig) -> Result<Self, CoreError> {
        let index = index.into();
        config.validate(&index)?;
        let num_sessions = index.num_sessions();
        let mut idf_by_item: FxHashMap<ItemId, f32> = fx_map_with_capacity(index.num_items());
        for (item, posting) in index.postings_iter() {
            idf_by_item.insert(item, config.idf.weight(posting.support as usize, num_sessions));
        }
        let mut idf_flat = Vec::with_capacity(index.total_item_entries());
        let mut slot_flat = Vec::with_capacity(index.total_item_entries());
        let mut slot_of: FxHashMap<ItemId, u32> = fx_map_with_capacity(index.num_items());
        let mut slot_items: Vec<ItemId> = Vec::with_capacity(index.num_items());
        for sid in 0..num_sessions as SessionId {
            for item in index.session_items(sid) {
                idf_flat.push(idf_by_item.get(item).copied().unwrap_or(1.0));
                let slot = *slot_of.entry(*item).or_insert_with(|| {
                    slot_items.push(*item);
                    (slot_items.len() - 1) as u32
                });
                slot_flat.push(slot);
            }
        }
        Ok(Self {
            index,
            config,
            idf_flat: idf_flat.into_boxed_slice(),
            slot_flat: slot_flat.into_boxed_slice(),
            slot_items: slot_items.into_boxed_slice(),
        })
    }

    /// The underlying index.
    pub fn index(&self) -> &SessionIndex {
        &self.index
    }

    /// A clone of the shared index handle.
    pub fn index_handle(&self) -> Arc<SessionIndex> {
        Arc::clone(&self.index)
    }

    /// The active configuration.
    pub fn config(&self) -> &VmisConfig {
        &self.config
    }

    /// Creates scratch buffers sized for this recommender.
    pub fn scratch(&self) -> Scratch {
        Scratch::for_config(&self.config)
    }

    /// Computes next-item recommendations for an evolving session, allocating
    /// fresh scratch buffers. Prefer [`recommend_with_scratch`] on hot paths.
    ///
    /// [`recommend_with_scratch`]: Self::recommend_with_scratch
    pub fn recommend(&self, session: &[ItemId]) -> Vec<ItemScore> {
        let mut scratch = self.scratch();
        self.recommend_with_scratch(session, &mut scratch)
    }

    /// Computes next-item recommendations reusing caller-provided buffers.
    ///
    /// Returns at most `config.how_many` items, sorted by descending score
    /// (ties broken by ascending item id for determinism); items with a
    /// non-positive score are omitted. An empty or unknown-items-only session
    /// yields an empty list.
    pub fn recommend_with_scratch(
        &self,
        session: &[ItemId],
        scratch: &mut Scratch,
    ) -> Vec<ItemScore> {
        self.fill_neighbors(session, scratch);
        self.score_items(scratch);
        self.take_top(scratch)
    }

    /// Non-personalised variant (Section 4.2 "Depersonalisation"): only the
    /// currently displayed item is used for the prediction.
    ///
    /// This is the cache-miss path behind the serving layer's prediction
    /// cache and the router's failover path, so it is specialised end to
    /// end: one posting walk, no position map, no decay loop — a one-item
    /// window pins `ω = {item ↦ 1}`, `|s| = 1` and thus `norm = 1`, so
    /// every per-position lookup of the generic kernel becomes a constant.
    /// Output is bit-identical to `recommend(&[current_item])`; the
    /// differential suite checks this on random logs and configs.
    pub fn recommend_depersonalised(
        &self,
        current_item: ItemId,
        scratch: &mut Scratch,
    ) -> Vec<ItemScore> {
        let cfg = &self.config;
        scratch.clear();
        // Generic kernel on a one-item window: π(1, 1) is the only decay
        // weight and the position map would hold exactly {current_item ↦ 1}.
        self.intersect_item(current_item, cfg.decay.weight(1, 1), scratch);
        self.select_topk(scratch);

        // Scoring with wlen = 1: max_pos is 1 for every true neighbour, so
        // λ(1, 1) hoists out of the loop, and norm = 1 whether or not
        // session-length normalisation is on.
        let lambda = cfg.match_weight.weight(1, 1);
        if lambda > 0.0 {
            self.ensure_scratch_slots(scratch);
            let Scratch { topk, acc, acc_epoch, epoch, touched, neighbors, .. } = scratch;
            let e = *epoch;
            neighbors.extend(topk.iter().map(|&((sim, _, sid), ())| (sid, sim)));
            neighbors.sort_unstable_by_key(|&(sid, _)| sid);
            for &(sid, similarity) in neighbors.iter() {
                let span = self.index.session_span(sid);
                let items = self.index.session_items(sid);
                if !items.contains(&current_item) {
                    continue; // cannot happen for true neighbours; defensive
                }
                let session_weight = lambda * similarity;
                for ((&item, &idf), &slot) in
                    items.iter().zip(&self.idf_flat[span.clone()]).zip(&self.slot_flat[span])
                {
                    if cfg.exclude_session_items && item == current_item {
                        continue;
                    }
                    let s = slot as usize;
                    if acc_epoch[s] == e {
                        acc[s] += session_weight * idf;
                    } else {
                        acc_epoch[s] = e;
                        acc[s] = session_weight * idf;
                        touched.push(slot);
                    }
                }
            }
        }
        self.take_top(scratch)
    }

    /// Computes only the `k` nearest neighbour sessions (the
    /// `neighbor_sessions_from_index` function of Algorithm 2). Exposed for
    /// the index-design microbenchmark (Figure 3a, bottom).
    pub fn neighbors_with_scratch(
        &self,
        session: &[ItemId],
        scratch: &mut Scratch,
    ) -> Vec<Neighbor> {
        self.fill_neighbors(session, scratch);
        scratch
            .topk
            .iter()
            .map(|&((sim, _, sid), ())| Neighbor { session: sid, similarity: sim })
            .collect()
    }

    /// Caps an evolving session to its most recent `max_session_len` items.
    #[inline]
    fn cap_window<'a>(&self, session: &'a [ItemId]) -> &'a [ItemId] {
        let cap = self.config.max_session_len;
        if session.len() > cap {
            &session[session.len() - cap..]
        } else {
            session
        }
    }

    /// Grows `scratch`'s dense accumulator to this recommender's slot count.
    #[inline]
    fn ensure_scratch_slots(&self, scratch: &mut Scratch) {
        scratch.ensure_slots(self.slot_items.len());
    }

    /// One step of the item-intersection loop: merges `item`'s posting list
    /// into the candidate set `r`/`b_t` with decay weight `pi`. State
    /// transitions depend only on `scratch`'s own prior contents, so steps
    /// for *different* scratches can be interleaved freely (the batch path
    /// relies on this).
    ///
    /// The posting stores the composite recency key inline
    /// ([`crate::index::PostingEntry`]), so the walk is a straight-line scan
    /// of one contiguous array — no per-entry timestamp lookup.
    #[inline]
    fn intersect_item(&self, item: ItemId, pi: f32, scratch: &mut Scratch) {
        let cfg = &self.config;
        let Some(posting) = self.index.postings(item) else {
            return; // item unseen in the historical data
        };
        for &entry in posting {
            let j = entry.session;
            if let Some(rj) = scratch.r.get_mut(&j) {
                *rj += pi;
                continue;
            }
            let key: RecencyKey = (entry.timestamp, j);
            if scratch.r.len() < cfg.m {
                scratch.r.insert(j, pi);
                scratch.bt.push(key, ());
            } else {
                let &(root, ()) = scratch.bt.peek().expect("bt non-empty when r full");
                if key > root {
                    let ((_, evicted), ()) = scratch.bt.replace_root(key, ());
                    scratch.r.remove(&evicted);
                    scratch.r.insert(j, pi);
                } else if cfg.early_stopping {
                    // Posting lists are strictly descending in the
                    // composite recency key: nothing further can enter.
                    break;
                }
            }
        }
    }

    /// Top-k similarity loop over the temporary similarity scores `r`.
    fn select_topk(&self, scratch: &mut Scratch) {
        let cfg = &self.config;
        for (&j, &rj) in &scratch.r {
            let key = (rj, self.index.session_timestamp(j), j);
            if scratch.topk.len() < cfg.k {
                scratch.topk.push(key, ());
            } else {
                let &(root, ()) = scratch.topk.peek().expect("topk non-empty when full");
                if key > root {
                    scratch.topk.replace_root(key, ());
                }
            }
        }
    }

    /// Runs the item-intersection and top-k similarity loops, leaving the
    /// neighbour heap `N_s` and the position map populated in `scratch`.
    fn fill_neighbors(&self, session: &[ItemId], scratch: &mut Scratch) {
        scratch.clear();
        let window = self.cap_window(session);
        if window.is_empty() {
            return;
        }
        let wlen = window.len();

        // ω: latest 1-based position per item (later occurrences overwrite).
        for (i, &item) in window.iter().enumerate() {
            scratch.pos.insert(item, i + 1);
        }

        // Item intersection loop: reverse insertion order, duplicates skipped
        // by only processing an item at its latest occurrence.
        for (i, &item) in window.iter().enumerate().rev() {
            if scratch.pos[&item] != i + 1 {
                continue; // duplicate; already processed at a later position
            }
            self.intersect_item(item, self.config.decay.weight(i + 1, wlen), scratch);
        }

        self.select_topk(scratch);
    }

    /// Creates batch scratch buffers for [`recommend_batch`].
    ///
    /// [`recommend_batch`]: Self::recommend_batch
    pub fn batch_scratch(&self) -> BatchScratch {
        BatchScratch::default()
    }

    /// Scores a batch of evolving sessions in one shared pass, returning one
    /// recommendation list per session in input order — **bit-identical** to
    /// calling [`recommend_with_scratch`] once per session.
    ///
    /// Two levels of sharing amortise the per-request cost of a coalesced
    /// batch:
    ///
    /// * **window dedupe** — sessions whose capped windows are identical
    ///   (the common case for concurrently coalesced traffic on a hot
    ///   product page) run the kernel once and share the result;
    /// * **interleaved posting traversal** — the item-intersection loops of
    ///   the distinct windows advance round-robin by position, so a posting
    ///   list shared across windows is rewalked while still cache-resident.
    ///
    /// Each window's own operations (candidate admission, heap eviction, f32
    /// accumulation) happen in exactly the sequential kernel's order on its
    /// own scratch slot; the rounds only interleave *across* slots. That is
    /// the whole bit-identity argument, and the differential suite checks it
    /// on random logs, configs and batches.
    ///
    /// [`recommend_with_scratch`]: Self::recommend_with_scratch
    pub fn recommend_batch(
        &self,
        sessions: &[&[ItemId]],
        scratch: &mut BatchScratch,
    ) -> Vec<Vec<ItemScore>> {
        let cfg = &self.config;
        let BatchScratch { slots, windows, hashes, last_use, plans, assign, results } = scratch;

        // Dedupe capped windows; `assign[i]` maps request i to its slot. The
        // scan compares window hashes first and falls back to the item
        // slices only on a hash match, so a batch of distinct windows costs
        // one u64 comparison per (request, unique) pair instead of a slice
        // walk — and hash collisions stay correct, merely slower.
        assign.clear();
        let mut n_unique = 0usize;
        for &session in sessions {
            let window = self.cap_window(session);
            let hash = window_hash(window);
            let u = match (0..n_unique)
                .find(|&u| hashes[u] == hash && windows[u].as_slice() == window)
            {
                Some(u) => u,
                None => {
                    if n_unique == windows.len() {
                        windows.push(Vec::with_capacity(window.len()));
                        hashes.push(0);
                    }
                    windows[n_unique].clear();
                    windows[n_unique].extend_from_slice(window);
                    hashes[n_unique] = hash;
                    n_unique += 1;
                    n_unique - 1
                }
            };
            assign.push(u);
        }
        while slots.len() < n_unique {
            slots.push(Scratch::for_config(cfg));
        }
        plans.resize_with(n_unique.max(plans.len()), Vec::new);
        results.resize_with(n_unique.max(results.len()), Vec::new);

        // Per-window positions and traversal plans: the `(item, π)` steps in
        // exactly the order the sequential kernel would take them.
        let mut rounds = 0usize;
        for u in 0..n_unique {
            let slot = &mut slots[u];
            slot.clear();
            let window = &windows[u];
            let wlen = window.len();
            for (i, &item) in window.iter().enumerate() {
                slot.pos.insert(item, i + 1);
            }
            let plan = &mut plans[u];
            plan.clear();
            for (i, &item) in window.iter().enumerate().rev() {
                if slot.pos[&item] != i + 1 {
                    continue; // duplicate; already processed at a later position
                }
                plan.push((item, cfg.decay.weight(i + 1, wlen)));
            }
            rounds = rounds.max(plan.len());
        }

        // Shared traversal: round t advances every window's t-th step.
        for t in 0..rounds {
            for u in 0..n_unique {
                if let Some(&(item, pi)) = plans[u].get(t) {
                    self.intersect_item(item, pi, &mut slots[u]);
                }
            }
        }

        // Per-window top-k, scoring and extraction.
        for (u, result) in results.iter_mut().enumerate().take(n_unique) {
            let slot = &mut slots[u];
            self.select_topk(slot);
            self.score_items(slot);
            *result = self.take_top(slot);
        }

        // The last requester of each unique slot takes the result by move;
        // earlier duplicates clone. A batch with no duplicate windows
        // therefore allocates nothing here.
        last_use.clear();
        last_use.resize(n_unique, usize::MAX);
        for (i, &u) in assign.iter().enumerate() {
            last_use[u] = i;
        }
        assign
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                if last_use[u] == i {
                    std::mem::take(&mut results[u])
                } else {
                    results[u].clone()
                }
            })
            .collect()
    }

    /// Scores all items occurring in the neighbour sessions (Algorithm 2,
    /// lines 6–7): `d_i = Σ_n 1_n(i) · λ(max(ω(s)⊙n)) · r_n · idf_i`.
    ///
    /// Accumulation goes into the dense epoch-stamped array: the `slot_flat`
    /// side-array resolves every CSR entry to its item's accumulator slot in
    /// lockstep with the `idf_flat` walk, replacing the former per-item
    /// `scores.entry()` hash probe. First touch of a slot *assigns* (as
    /// `or_insert(0.0)` followed by `+=` did), so the f32 operations — and
    /// hence the output bits — are unchanged.
    fn score_items(&self, scratch: &mut Scratch) {
        let cfg = &self.config;
        let wlen = scratch.pos.values().copied().max().unwrap_or(0);
        if wlen == 0 {
            return;
        }
        let norm =
            if cfg.normalize_by_session_length { 1.0 / wlen as f32 } else { 1.0 };

        self.ensure_scratch_slots(scratch);
        // Canonical (ascending session id) iteration order: keeps the f32
        // summation order identical across all implementation variants, so
        // their outputs can be compared bit-for-bit.
        let Scratch { topk, pos, acc, acc_epoch, epoch, touched, neighbors, .. } = scratch;
        let e = *epoch;
        neighbors.extend(topk.iter().map(|&((sim, _, sid), ())| (sid, sim)));
        neighbors.sort_unstable_by_key(|&(sid, _)| sid);
        for &(sid, similarity) in neighbors.iter() {
            let span = self.index.session_span(sid);
            let items = self.index.session_items(sid);
            // Position of the most recent shared item between s and n.
            let max_pos = items.iter().filter_map(|it| pos.get(it)).copied().max();
            let Some(max_pos) = max_pos else {
                continue; // cannot happen for true neighbours; defensive
            };
            let lambda = cfg.match_weight.weight(max_pos, wlen);
            if lambda <= 0.0 {
                continue;
            }
            let session_weight = lambda * similarity * norm;
            for ((&item, &idf), &slot) in
                items.iter().zip(&self.idf_flat[span.clone()]).zip(&self.slot_flat[span])
            {
                if cfg.exclude_session_items && pos.contains_key(&item) {
                    continue;
                }
                let s = slot as usize;
                if acc_epoch[s] == e {
                    acc[s] += session_weight * idf;
                } else {
                    acc_epoch[s] = e;
                    acc[s] = session_weight * idf;
                    touched.push(slot);
                }
            }
        }
    }

    /// Extracts the `how_many` highest-scored items, descending.
    fn take_top(&self, scratch: &mut Scratch) -> Vec<ItemScore> {
        let Scratch { acc, touched, out, .. } = scratch;
        out.extend(touched.iter().filter_map(|&slot| {
            let score = acc[slot as usize];
            (score > 0.0).then(|| ItemScore { item: self.slot_items[slot as usize], score })
        }));
        let n = self.config.how_many.min(out.len());
        if n == 0 {
            return Vec::new();
        }
        // Partial selection then sort of only the head: descending score,
        // ascending item id on ties for deterministic output. `total_cmp`
        // is a total order, so the ranking cannot panic on any f32.
        let cmp = |a: &ItemScore, b: &ItemScore| {
            b.score.total_cmp(&a.score).then(a.item.cmp(&b.item))
        };
        if n < out.len() {
            out.select_nth_unstable_by(n - 1, cmp);
            out.truncate(n);
        }
        out.sort_unstable_by(cmp);
        std::mem::take(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Click;

    /// History of four sessions over six items; timestamps strictly increase.
    fn history() -> Vec<Click> {
        vec![
            // session A (oldest): items 1, 2
            Click::new(10, 1, 100),
            Click::new(10, 2, 110),
            // session B: items 2, 3
            Click::new(20, 2, 200),
            Click::new(20, 3, 210),
            // session C: items 1, 3, 4
            Click::new(30, 1, 300),
            Click::new(30, 3, 310),
            Click::new(30, 4, 320),
            // session D (newest): items 2, 4, 5
            Click::new(40, 2, 400),
            Click::new(40, 4, 410),
            Click::new(40, 5, 420),
        ]
    }

    fn knn(config: VmisConfig) -> VmisKnn {
        let index = SessionIndex::build(&history(), 500).unwrap();
        VmisKnn::new(index, config).unwrap()
    }

    #[test]
    fn empty_session_yields_no_recommendations() {
        let v = knn(VmisConfig::default());
        assert!(v.recommend(&[]).is_empty());
    }

    #[test]
    fn unknown_items_yield_no_recommendations() {
        let v = knn(VmisConfig::default());
        assert!(v.recommend(&[999, 888]).is_empty());
    }

    #[test]
    fn recommendations_are_sorted_and_bounded() {
        let mut cfg = VmisConfig::default();
        cfg.how_many = 2;
        let v = knn(cfg);
        let recs = v.recommend(&[1, 2]);
        assert!(recs.len() <= 2);
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(recs.iter().all(|r| r.score > 0.0 && r.score.is_finite()));
    }

    #[test]
    fn neighbors_respect_k() {
        let mut cfg = VmisConfig::default();
        cfg.k = 2;
        let v = knn(cfg);
        let mut scratch = v.scratch();
        let n = v.neighbors_with_scratch(&[2], &mut scratch);
        assert_eq!(n.len(), 2);
        // Item 2 occurs in sessions A, B, D; the two most similar with equal
        // similarity are the most recent: B and D.
        let ids: Vec<SessionId> = {
            let mut ids: Vec<_> = n.iter().map(|x| x.session).collect();
            ids.sort_unstable();
            ids
        };
        // Dense ids: A=0, B=1, C=2, D=3.
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn similarity_matches_hand_computation() {
        // Session [1, 2]: π(1) = 1/2, π(2) = 2/2 = 1.
        // Session A = {1, 2}: r = 1/2 + 1 = 3/2.
        // Session B = {2, 3}: r = 1.   Session C = {1,3,4}: r = 1/2.
        // Session D = {2,4,5}: r = 1.
        let v = knn(VmisConfig::default());
        let mut scratch = v.scratch();
        let mut n = v.neighbors_with_scratch(&[1, 2], &mut scratch);
        n.sort_by_key(|x| x.session);
        let sims: Vec<f32> = n.iter().map(|x| x.similarity).collect();
        assert_eq!(n.len(), 4);
        assert!((sims[0] - 1.5).abs() < 1e-6, "A: {}", sims[0]);
        assert!((sims[1] - 1.0).abs() < 1e-6, "B: {}", sims[1]);
        assert!((sims[2] - 0.5).abs() < 1e-6, "C: {}", sims[2]);
        assert!((sims[3] - 1.0).abs() < 1e-6, "D: {}", sims[3]);
    }

    #[test]
    fn m_bounds_the_candidate_set_to_most_recent() {
        let mut cfg = VmisConfig::default();
        cfg.m = 2;
        let v = knn(cfg);
        let mut scratch = v.scratch();
        let n = v.neighbors_with_scratch(&[1, 2], &mut scratch);
        // Only the 2 most recent matching sessions may survive in r.
        assert!(n.len() <= 2);
        let mut ids: Vec<SessionId> = n.iter().map(|x| x.session).collect();
        ids.sort_unstable();
        // Most recent sessions containing 1 or 2 are C (id 2) and D (id 3).
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn early_stopping_does_not_change_results() {
        let mut with = VmisConfig::default();
        with.m = 2;
        with.early_stopping = true;
        let mut without = with.clone();
        without.early_stopping = false;

        let v_with = knn(with);
        let v_without = knn(without);
        for session in [&[1u64, 2] as &[u64], &[2, 3], &[4], &[5, 1, 3]] {
            let a = v_with.recommend(session);
            let b = v_without.recommend(session);
            assert_eq!(a, b, "session {session:?}");
        }
    }

    #[test]
    fn heap_arity_does_not_change_results() {
        let base = VmisConfig::default();
        let reference = knn(base.clone()).recommend(&[1, 2, 3]);
        for arity in [HeapArity::Binary, HeapArity::Quaternary, HeapArity::Sedenary] {
            let mut cfg = base.clone();
            cfg.heap_arity = arity;
            assert_eq!(knn(cfg).recommend(&[1, 2, 3]), reference, "{arity:?}");
        }
    }

    #[test]
    fn exclude_session_items_filters_inputs() {
        let mut cfg = VmisConfig::default();
        cfg.exclude_session_items = true;
        let v = knn(cfg);
        let recs = v.recommend(&[1, 2]);
        assert!(recs.iter().all(|r| r.item != 1 && r.item != 2));
    }

    #[test]
    fn depersonalised_equals_single_item_session() {
        let v = knn(VmisConfig::default());
        let mut scratch = v.scratch();
        let a = v.recommend_depersonalised(2, &mut scratch);
        let b = v.recommend(&[2]);
        assert_eq!(a, b);
    }

    #[test]
    fn session_cap_uses_most_recent_items() {
        let mut cfg = VmisConfig::default();
        cfg.max_session_len = 1;
        let v = knn(cfg);
        // With cap 1 only the most recent item (2) is considered.
        let capped = v.recommend(&[1, 2]);
        let single = v.recommend(&[2]);
        assert_eq!(capped, single);
    }

    #[test]
    fn duplicate_items_use_latest_position() {
        let v = knn(VmisConfig::default());
        // [2, 1, 2] should equal [1, 2] in terms of the item set, with item 2
        // at the latest position — same as session [1, 2] for scoring.
        let a = v.recommend(&[2, 1, 2]);
        let b = v.recommend(&[1, 2]);
        // Positions differ (lengths 3 vs 2) so scores differ, but the two
        // must recommend the same item set ordering-independently.
        let items =
            |r: &[ItemScore]| { let mut v: Vec<_> = r.iter().map(|x| x.item).collect(); v.sort_unstable(); v };
        assert_eq!(items(&a), items(&b));
    }

    #[test]
    fn scratch_reuse_is_idempotent() {
        let v = knn(VmisConfig::default());
        let mut scratch = v.scratch();
        let first = v.recommend_with_scratch(&[1, 2], &mut scratch);
        let second = v.recommend_with_scratch(&[1, 2], &mut scratch);
        assert_eq!(first, second);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let index = SessionIndex::build(&history(), 10).unwrap();
        for (param, cfg) in [
            ("m", VmisConfig { m: 0, ..VmisConfig::default() }),
            ("k", VmisConfig { k: 0, ..VmisConfig::default() }),
            ("how_many", VmisConfig { how_many: 0, ..VmisConfig::default() }),
            ("max_session_len", VmisConfig { max_session_len: 0, ..VmisConfig::default() }),
            ("m", VmisConfig { m: 11, ..VmisConfig::default() }), // > m_max = 10
        ] {
            let err = VmisKnn::new(index.clone(), cfg).unwrap_err();
            match err {
                CoreError::InvalidConfig { parameter, .. } => assert_eq!(parameter, param),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn batch_matches_sequential_on_mixed_windows() {
        let v = knn(VmisConfig::default());
        let sessions: Vec<Vec<ItemId>> = vec![
            vec![1, 2],
            vec![2],
            vec![2],          // duplicate window of the previous request
            vec![],           // empty session
            vec![999],        // unknown item
            vec![5, 1, 3],
            vec![2, 1, 2],    // dup item inside the window
            vec![1, 2],       // duplicate of the first
        ];
        let refs: Vec<&[ItemId]> = sessions.iter().map(Vec::as_slice).collect();
        let mut batch_scratch = v.batch_scratch();
        let batch = v.recommend_batch(&refs, &mut batch_scratch);
        assert_eq!(batch.len(), sessions.len());
        let mut scratch = v.scratch();
        for (i, s) in sessions.iter().enumerate() {
            let seq = v.recommend_with_scratch(s, &mut scratch);
            assert_eq!(batch[i], seq, "request {i} ({s:?}) diverged");
        }
    }

    #[test]
    fn batch_scratch_reuse_is_idempotent() {
        let v = knn(VmisConfig::default());
        let mut scratch = v.batch_scratch();
        // A large first batch, then a smaller one: stale slots, windows and
        // plans from the first call must not leak into the second.
        let big: Vec<Vec<ItemId>> = vec![vec![1, 2], vec![2, 3], vec![4], vec![5, 1, 3]];
        let refs: Vec<&[ItemId]> = big.iter().map(Vec::as_slice).collect();
        let first = v.recommend_batch(&refs, &mut scratch);
        let small: Vec<&[ItemId]> = vec![&[2, 3]];
        let second = v.recommend_batch(&small, &mut scratch);
        assert_eq!(second[0], first[1], "reused scratch changed a result");
        let again = v.recommend_batch(&refs, &mut scratch);
        assert_eq!(again, first);
    }

    #[test]
    fn batch_of_identical_windows_shares_one_kernel_run() {
        let v = knn(VmisConfig::default());
        let mut scratch = v.batch_scratch();
        let refs: Vec<&[ItemId]> = vec![&[2]; 16];
        let out = v.recommend_batch(&refs, &mut scratch);
        let reference = v.recommend(&[2]);
        assert!(out.iter().all(|r| *r == reference));
        // Dedupe is observable through the scratch: one slot was planned.
        assert_eq!(scratch.plans.iter().filter(|p| !p.is_empty()).count(), 1);
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let v = knn(VmisConfig::default());
        let mut scratch = v.batch_scratch();
        assert!(v.recommend_batch(&[], &mut scratch).is_empty());
    }

    #[test]
    fn vs_knn_faithful_mode_changes_scores_not_ranking() {
        let vmis = knn(VmisConfig::default());
        let mut faithful_cfg = VmisConfig::default();
        faithful_cfg.normalize_by_session_length = true;
        let faithful = knn(faithful_cfg);
        let a = vmis.recommend(&[1, 2]);
        let b = faithful.recommend(&[1, 2]);
        let items = |r: &[ItemScore]| r.iter().map(|x| x.item).collect::<Vec<_>>();
        assert_eq!(items(&a), items(&b), "1/|s| is ranking-neutral");
        // But the absolute scores shrink by the factor 1/2.
        for (x, y) in a.iter().zip(&b) {
            assert!((y.score * 2.0 - x.score).abs() < 1e-5);
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::types::Click;

    #[test]
    fn k_may_exceed_m() {
        let clicks = vec![
            Click::new(1, 1, 10),
            Click::new(1, 2, 11),
            Click::new(2, 1, 20),
            Click::new(2, 3, 21),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let mut cfg = VmisConfig::default();
        cfg.m = 1;
        cfg.k = 50; // more neighbours requested than the sample can hold
        let v = VmisKnn::new(index, cfg).unwrap();
        let mut scratch = v.scratch();
        let n = v.neighbors_with_scratch(&[1], &mut scratch);
        assert_eq!(n.len(), 1, "at most m sessions can be neighbours");
    }

    #[test]
    fn how_many_larger_than_candidate_pool() {
        let clicks = vec![Click::new(1, 1, 10), Click::new(1, 2, 11)];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let mut cfg = VmisConfig::default();
        cfg.how_many = 1_000;
        cfg.idf = IdfWeighting::OnePlusLog; // keep single-session idf positive
        let v = VmisKnn::new(index, cfg).unwrap();
        let recs = v.recommend(&[1]);
        assert!(recs.len() <= 2, "cannot recommend more items than exist");
        assert!(!recs.is_empty());
    }

    #[test]
    fn items_in_every_session_score_zero_under_log_idf() {
        // log(|H|/h_i) = 0 when h_i = |H| — ubiquitous items are suppressed
        // entirely under the VMIS simplification (and kept under 1+log).
        let clicks = vec![
            Click::new(1, 1, 10),
            Click::new(1, 2, 11),
            Click::new(2, 1, 20),
            Click::new(2, 3, 21),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let log_variant = VmisKnn::new(index.clone(), VmisConfig::default()).unwrap();
        let recs = log_variant.recommend(&[2]);
        assert!(recs.iter().all(|r| r.item != 1), "ubiquitous item must score 0");
        let mut cfg = VmisConfig::default();
        cfg.idf = IdfWeighting::OnePlusLog;
        let vs_variant = VmisKnn::new(index, cfg).unwrap();
        let recs = vs_variant.recommend(&[2]);
        assert!(recs.iter().any(|r| r.item == 1), "1+log keeps it");
    }

    #[test]
    fn long_sessions_are_capped_to_window() {
        let mut clicks = Vec::new();
        for s in 0..10u64 {
            clicks.push(Click::new(s + 1, s % 4, 100 + s * 10));
            clicks.push(Click::new(s + 1, (s + 1) % 4, 101 + s * 10));
        }
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = VmisKnn::new(index, VmisConfig::default()).unwrap();
        // A 30-item session: only the final max_session_len items matter.
        let long: Vec<ItemId> = (0..30).map(|i| i % 4).collect();
        let window = long[long.len() - v.config().max_session_len..].to_vec();
        assert_eq!(v.recommend(&long), v.recommend(&window));
    }

    #[test]
    fn scratch_pool_sizes_follow_config() {
        let clicks = vec![Click::new(1, 1, 10), Click::new(1, 2, 11)];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let mut cfg = VmisConfig::default();
        cfg.heap_arity = HeapArity::Quaternary;
        let v = VmisKnn::new(index, cfg).unwrap();
        let scratch = v.scratch();
        // Indirect check: the scratch works for this config.
        let mut scratch = scratch;
        let _ = v.recommend_with_scratch(&[1], &mut scratch);
    }
}
