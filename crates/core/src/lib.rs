//! # serenade-core — VMIS-kNN session-based recommendation
//!
//! This crate implements **Vector-Multiplication-Indexed-Session-kNN
//! (VMIS-kNN)**, the core contribution of *"Serenade — Low-Latency
//! Session-Based Recommendation in e-Commerce at Scale"* (SIGMOD 2022).
//!
//! Given an evolving user session (a sequence of item interactions) the goal
//! is to predict the next item(s) the user will interact with. VMIS-kNN is an
//! index-based adaptation of the state-of-the-art nearest-neighbour method
//! VS-kNN: a prebuilt index `(M, t)` maps every item to the `m` most recent
//! historical sessions containing it (stored in descending session-timestamp
//! order) and records one integer timestamp per historical session. The
//! online computation is a joint execution of a join between the evolving
//! session and the historical sessions on matching items, plus two
//! aggregations (the `m` most recent matching sessions, and their similarity
//! scores), with intermediate state bounded by `O(m)` and early stopping on
//! the timestamp-sorted posting lists.
//!
//! ## Quick start
//!
//! ```
//! use serenade_core::{Click, SessionIndex, VmisConfig, VmisKnn};
//!
//! // Historical click log: (session, item, timestamp).
//! let clicks = vec![
//!     Click::new(1, 10, 100), Click::new(1, 11, 101),
//!     Click::new(2, 10, 200), Click::new(2, 12, 201),
//!     Click::new(3, 11, 300), Click::new(3, 12, 301),
//! ];
//! let index = SessionIndex::build(&clicks, 500).unwrap();
//! let vmis = VmisKnn::new(index, VmisConfig::default()).unwrap();
//!
//! // Evolving session: the user has looked at items 10 and 11.
//! let recs = vmis.recommend(&[10, 11]);
//! assert!(!recs.is_empty());
//! assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
//! ```
//!
//! ## Module map
//!
//! * [`types`] — item/session/timestamp identifiers and the [`Click`] record.
//! * [`hash`] — an FxHash-style fast hasher used for all hot-path hash maps.
//! * [`heap`] — d-ary min-heaps (the paper's "octonary heap" micro-optimisation).
//! * [`weights`] — the decay function π, the match weight λ and idf weighting.
//! * [`index`] — the `(M, t)` session-similarity index.
//! * [`vmis`] — the VMIS-kNN online computation (Algorithm 2 of the paper).
//! * [`error`] — crate error types.

#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod heap;
pub mod index;
pub mod recommender;
pub mod types;
pub mod vmis;
pub mod weights;

pub use error::CoreError;
pub use recommender::Recommender;
pub use hash::{FxHashMap, FxHashSet};
pub use index::{IndexStats, PostingEntry, SessionIndex};
pub use types::{Click, ItemId, ItemScore, SessionId, SessionRef, Timestamp};
pub use vmis::{BatchScratch, HeapArity, Scratch, VmisConfig, VmisKnn};
pub use weights::{DecayFunction, IdfWeighting, MatchWeight};
