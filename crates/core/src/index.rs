//! The VMIS-kNN session-similarity index `(M, t)`.
//!
//! The index (Section 3 of the paper) consists of:
//!
//! * the inverted index `M`: a hash map from an item `i` to the array `m_i`
//!   of the (at most) `m` most recent historical sessions containing `i`,
//!   stored in **descending session-timestamp order** so the most recent
//!   session is the first entry — this enables early stopping;
//! * the timestamp array `t`: one integer timestamp per historical session,
//!   indexed by dense [`SessionId`], giving constant-time random access;
//! * per-session item lists (needed for the final item-scoring step) stored
//!   in CSR layout to avoid per-session allocations;
//! * per-item support counts `h_i` (the number of historical sessions
//!   containing the item) for the idf weighting.
//!
//! Sessions receive dense ids in ascending timestamp order, so a larger
//! [`SessionId`] always denotes a more recent session; ties on identical
//! timestamps are broken by external session id for determinism.

use crate::error::CoreError;
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::types::{Click, ExternalSessionId, ItemId, SessionId, SessionRef, Timestamp};

/// Posting list of an item: the `m` most recent sessions containing it, plus
/// the total support count `h_i` over *all* historical sessions.
///
/// This is the **transport** form of a posting — session ids only, as the
/// parallel builder produces them and the binary format stores them. The
/// in-memory index inlines the session timestamps next to the ids (see
/// [`PostingEntry`]) so the traversal kernel never leaves the posting array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Session ids in strictly descending timestamp order (ties broken by
    /// descending id), truncated to the index's `m_max`.
    pub sessions: Box<[SessionId]>,
    /// `h_i`: number of historical sessions containing the item (before
    /// truncation to `m_max`).
    pub support: u32,
}

/// One stored posting entry: the composite recency key of a historical
/// session, inlined into the posting array.
///
/// Field order matters twice over: the derived `Ord` is lexicographic, so it
/// equals the tuple order of the kernel's `(timestamp, session)` recency key,
/// and `timestamp` first keeps the 16-byte layout free of padding. Storing
/// the key inline turns the traversal's per-entry `session_timestamp(j)`
/// random access into a contiguous scan of one array.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PostingEntry {
    /// Timestamp `t_j` of the session (major key).
    pub timestamp: Timestamp,
    /// Dense session id `j` (minor key; unique, so the order is strict).
    pub session: SessionId,
}

/// The in-memory storage form of a posting list: recency-descending
/// [`PostingEntry`] records plus the item's full historical support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredPosting {
    /// `(timestamp, session)` entries in strictly descending key order,
    /// truncated to the index's `m_max`.
    pub entries: Box<[PostingEntry]>,
    /// `h_i`: number of historical sessions containing the item (before
    /// truncation to `m_max`).
    pub support: u32,
}

impl StoredPosting {
    /// Projects the session ids, descending by recency (the transport view).
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.entries.iter().map(|e| e.session)
    }

    /// Inlines session timestamps into a transport [`Posting`].
    fn inline(posting: Posting, timestamps: &[Timestamp]) -> Self {
        let entries = posting
            .sessions
            .iter()
            .map(|&sid| PostingEntry { timestamp: timestamps[sid as usize], session: sid })
            .collect();
        Self { entries, support: posting.support }
    }

    /// Projects back to the transport form (for serialisation).
    fn to_transport(&self) -> Posting {
        Posting { sessions: self.sessions().collect(), support: self.support }
    }
}

/// Aggregate statistics of a built index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of historical sessions (|H|).
    pub num_sessions: usize,
    /// Number of distinct items (|I|).
    pub num_items: usize,
    /// Total number of posting entries across all items.
    pub posting_entries: usize,
    /// Length of the longest posting list (≤ m_max).
    pub max_posting_len: usize,
    /// Total number of (session, item) pairs stored for scoring.
    pub session_item_entries: usize,
    /// Approximate resident memory of the index payload in bytes.
    pub approx_bytes: usize,
}

/// Raw parts of a [`SessionIndex`]: postings, timestamps, CSR item storage
/// (flat array + offsets) and the posting capacity `m_max`.
pub type IndexParts =
    (FxHashMap<ItemId, Posting>, Box<[Timestamp]>, Box<[ItemId]>, Box<[u32]>, usize);

/// The prebuilt `(M, t)` index over historical sessions.
#[derive(Debug, Clone)]
pub struct SessionIndex {
    postings: FxHashMap<ItemId, StoredPosting>,
    /// `t`: timestamp per session, indexed by dense `SessionId`.
    timestamps: Box<[Timestamp]>,
    /// CSR storage of deduplicated per-session items (first-occurrence order).
    items_flat: Box<[ItemId]>,
    items_offsets: Box<[u32]>,
    m_max: usize,
}

impl SessionIndex {
    /// Builds the index from a click log.
    ///
    /// `m_max` is the maximum posting-list length — the recency-sample upper
    /// bound `m` that the online algorithm may request. Sessions are formed
    /// by grouping clicks on their external session id; a session's timestamp
    /// is the maximum click timestamp it contains; within a session items are
    /// ordered chronologically and deduplicated to their first occurrence.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if `m_max == 0`.
    /// * [`CoreError::EmptyDataset`] if `clicks` yields no sessions.
    /// * [`CoreError::TooManySessions`] if there are more than `u32::MAX`
    ///   distinct sessions.
    pub fn build(clicks: &[Click], m_max: usize) -> Result<Self, CoreError> {
        if m_max == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "m_max",
                reason: "posting-list capacity must be positive".into(),
            });
        }
        if clicks.is_empty() {
            return Err(CoreError::EmptyDataset);
        }

        // Group clicks per external session.
        let mut by_session: FxHashMap<ExternalSessionId, Vec<(Timestamp, ItemId)>> =
            fx_map_with_capacity(clicks.len() / 4);
        for c in clicks {
            by_session.entry(c.session_id).or_default().push((c.timestamp, c.item_id));
        }
        let num_sessions = by_session.len();
        if num_sessions > u32::MAX as usize {
            return Err(CoreError::TooManySessions(num_sessions));
        }

        // Order sessions by (timestamp, external id) ascending and assign ids.
        let mut order: Vec<(Timestamp, ExternalSessionId)> = by_session
            .iter()
            .map(|(&ext, clicks)| {
                let ts = clicks.iter().map(|&(t, _)| t).max().expect("non-empty session");
                (ts, ext)
            })
            .collect();
        order.sort_unstable();

        let mut timestamps = Vec::with_capacity(num_sessions);
        let mut items_flat: Vec<ItemId> = Vec::with_capacity(clicks.len());
        let mut items_offsets: Vec<u32> = Vec::with_capacity(num_sessions + 1);
        items_offsets.push(0);

        // Support counts and ascending-recency posting accumulation.
        let mut supports: FxHashMap<ItemId, u32> = fx_map_with_capacity(1024);

        for &(ts, ext) in &order {
            let mut session_clicks = by_session.remove(&ext).expect("session present");
            session_clicks.sort_unstable();
            timestamps.push(ts);
            let start = items_flat.len();
            for (_, item) in session_clicks {
                // Deduplicate to first occurrence: linear scan over the (short)
                // current session — the median e-commerce session has < 5 items.
                if !items_flat[start..].contains(&item) {
                    items_flat.push(item);
                    *supports.entry(item).or_insert(0) += 1;
                }
            }
            items_offsets.push(items_flat.len() as u32);
        }

        // Build posting lists: iterate sessions ascending (oldest→newest) and
        // push; keep only the last `m_max` entries, reversed to descending.
        let mut ascending: FxHashMap<ItemId, Vec<SessionId>> =
            fx_map_with_capacity(supports.len());
        for sid in 0..num_sessions {
            let s = items_offsets[sid] as usize;
            let e = items_offsets[sid + 1] as usize;
            for &item in &items_flat[s..e] {
                ascending.entry(item).or_default().push(sid as SessionId);
            }
        }
        let mut postings: FxHashMap<ItemId, StoredPosting> =
            fx_map_with_capacity(ascending.len());
        for (item, mut sessions) in ascending {
            let support = sessions.len() as u32;
            if sessions.len() > m_max {
                sessions.drain(..sessions.len() - m_max);
            }
            sessions.reverse();
            let entries = sessions
                .into_iter()
                .map(|sid| PostingEntry { timestamp: timestamps[sid as usize], session: sid })
                .collect();
            postings.insert(item, StoredPosting { entries, support });
        }

        Ok(Self {
            postings,
            timestamps: timestamps.into_boxed_slice(),
            items_flat: items_flat.into_boxed_slice(),
            items_offsets: items_offsets.into_boxed_slice(),
            m_max,
        })
    }

    /// Assembles an index from pre-built parts (parallel builder,
    /// deserialisation), validating all structural invariants.
    ///
    /// `items_offsets` must have length `timestamps.len() + 1`, start at 0,
    /// be monotone and end at `items_flat.len()`. Posting lists must be in
    /// descending `(timestamp, session id)` order, contain valid session ids,
    /// be no longer than `m_max` and no longer than their support.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptIndex`] describing the first violated invariant.
    pub fn from_parts(
        postings: FxHashMap<ItemId, Posting>,
        timestamps: Box<[Timestamp]>,
        items_flat: Box<[ItemId]>,
        items_offsets: Box<[u32]>,
        m_max: usize,
    ) -> Result<Self, CoreError> {
        let n = timestamps.len();
        if m_max == 0 {
            return Err(CoreError::CorruptIndex("m_max must be positive".into()));
        }
        if items_offsets.len() != n + 1 {
            return Err(CoreError::CorruptIndex(format!(
                "items_offsets has length {} but expected {}",
                items_offsets.len(),
                n + 1
            )));
        }
        if items_offsets.first() != Some(&0)
            || items_offsets.last().copied() != Some(items_flat.len() as u32)
        {
            return Err(CoreError::CorruptIndex("items_offsets endpoints invalid".into()));
        }
        if items_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(CoreError::CorruptIndex("items_offsets not monotone".into()));
        }
        for (item, posting) in &postings {
            if posting.sessions.len() > m_max {
                return Err(CoreError::CorruptIndex(format!(
                    "posting list of item {item} longer than m_max"
                )));
            }
            if (posting.support as usize) < posting.sessions.len() {
                return Err(CoreError::CorruptIndex(format!(
                    "posting list of item {item} longer than its support"
                )));
            }
            for w in posting.sessions.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a as usize >= n || b as usize >= n {
                    return Err(CoreError::CorruptIndex(format!(
                        "posting list of item {item} references unknown session"
                    )));
                }
                let (ta, tb) = (timestamps[a as usize], timestamps[b as usize]);
                if ta < tb || (ta == tb && a <= b) {
                    return Err(CoreError::CorruptIndex(format!(
                        "posting list of item {item} not in descending recency order"
                    )));
                }
            }
            if let Some(&s) = posting.sessions.first() {
                if s as usize >= n {
                    return Err(CoreError::CorruptIndex(format!(
                        "posting list of item {item} references unknown session"
                    )));
                }
            }
        }
        // All invariants hold; inline the recency keys into the storage form.
        let postings = postings
            .into_iter()
            .map(|(item, posting)| (item, StoredPosting::inline(posting, &timestamps)))
            .collect();
        Ok(Self { postings, timestamps, items_flat, items_offsets, m_max })
    }

    /// Posting list `m_i` of `item`: the most recent sessions containing it,
    /// descending by recency, with each session's timestamp inlined so the
    /// traversal reads the whole composite recency key from one contiguous
    /// array. `None` if the item never occurred.
    #[inline]
    pub fn postings(&self, item: ItemId) -> Option<&[PostingEntry]> {
        self.postings.get(&item).map(|p| &*p.entries)
    }

    /// Session ids of `item`'s posting list, descending by recency — the
    /// transport projection of [`SessionIndex::postings`] for consumers that
    /// only need the ids.
    pub fn posting_sessions(&self, item: ItemId) -> Option<Vec<SessionId>> {
        self.postings.get(&item).map(|p| p.sessions().collect())
    }

    /// Support `h_i` of `item` (sessions containing it), if it occurred.
    #[inline]
    pub fn item_support(&self, item: ItemId) -> Option<u32> {
        self.postings.get(&item).map(|p| p.support)
    }

    /// Timestamp `t_h` of a historical session (constant-time array access).
    #[inline]
    pub fn session_timestamp(&self, session: SessionId) -> Timestamp {
        self.timestamps[session as usize]
    }

    /// Deduplicated items of a historical session, first-occurrence order.
    #[inline]
    pub fn session_items(&self, session: SessionId) -> &[ItemId] {
        let s = self.items_offsets[session as usize] as usize;
        let e = self.items_offsets[session as usize + 1] as usize;
        &self.items_flat[s..e]
    }

    /// CSR range of a session's items inside the flat item storage:
    /// `session_items(s)` equals `items_flat[session_span(s)]`. Exposed so
    /// consumers can maintain side-arrays parallel to the flat storage (the
    /// per-occurrence idf weights in `VmisKnn` index with this range).
    #[inline]
    pub fn session_span(&self, session: SessionId) -> std::ops::Range<usize> {
        let s = self.items_offsets[session as usize] as usize;
        let e = self.items_offsets[session as usize + 1] as usize;
        s..e
    }

    /// Total number of `(session, item)` entries in the flat CSR storage —
    /// the exclusive upper bound of every [`SessionIndex::session_span`].
    #[inline]
    pub fn total_item_entries(&self) -> usize {
        self.items_flat.len()
    }

    /// Borrowed view of one historical session.
    pub fn session(&self, session: SessionId) -> SessionRef<'_> {
        SessionRef {
            id: session,
            items: self.session_items(session),
            timestamp: self.session_timestamp(session),
        }
    }

    /// Number of historical sessions `|H|`.
    #[inline]
    pub fn num_sessions(&self) -> usize {
        self.timestamps.len()
    }

    /// Number of distinct items `|I|`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.postings.len()
    }

    /// The maximum posting-list length this index was built for.
    #[inline]
    pub fn m_max(&self) -> usize {
        self.m_max
    }

    /// Iterates over all indexed items in unspecified order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.postings.keys().copied()
    }

    /// Iterates over `(item, posting)` pairs in unspecified order.
    pub fn postings_iter(&self) -> impl Iterator<Item = (ItemId, &StoredPosting)> {
        self.postings.iter().map(|(&i, p)| (i, p))
    }

    /// Computes aggregate statistics (sizes, approximate memory).
    pub fn stats(&self) -> IndexStats {
        let posting_entries: usize = self.postings.values().map(|p| p.entries.len()).sum();
        let max_posting_len = self.postings.values().map(|p| p.entries.len()).max().unwrap_or(0);
        let approx_bytes = posting_entries * std::mem::size_of::<PostingEntry>()
            + self.postings.len()
                * (std::mem::size_of::<ItemId>() + std::mem::size_of::<StoredPosting>())
            + self.timestamps.len() * std::mem::size_of::<Timestamp>()
            + self.items_flat.len() * std::mem::size_of::<ItemId>()
            + self.items_offsets.len() * std::mem::size_of::<u32>();
        IndexStats {
            num_sessions: self.num_sessions(),
            num_items: self.num_items(),
            posting_entries,
            max_posting_len,
            session_item_entries: self.items_flat.len(),
            approx_bytes,
        }
    }

    /// Decomposes the index into its raw parts (for serialisation). Postings
    /// are projected back to their transport form — the inlined timestamps
    /// are derived data and are re-inlined by [`SessionIndex::from_parts`].
    pub fn into_parts(self) -> IndexParts {
        let postings =
            self.postings.into_iter().map(|(item, p)| (item, p.to_transport())).collect();
        (postings, self.timestamps, self.items_flat, self.items_offsets, self.m_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small deterministic click log: three sessions with increasing
    /// timestamps and overlapping items.
    fn sample_clicks() -> Vec<Click> {
        vec![
            Click::new(100, 1, 10),
            Click::new(100, 2, 11),
            Click::new(100, 1, 12), // duplicate item in session
            Click::new(200, 2, 20),
            Click::new(200, 3, 21),
            Click::new(300, 1, 30),
            Click::new(300, 3, 31),
        ]
    }

    #[test]
    fn build_assigns_dense_ids_in_timestamp_order() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        assert_eq!(idx.num_sessions(), 3);
        // Session timestamps ascending with the dense id.
        assert_eq!(idx.session_timestamp(0), 12);
        assert_eq!(idx.session_timestamp(1), 21);
        assert_eq!(idx.session_timestamp(2), 31);
    }

    #[test]
    fn session_items_are_deduplicated_in_order() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        assert_eq!(idx.session_items(0), &[1, 2]); // dup of item 1 removed
        assert_eq!(idx.session_items(1), &[2, 3]);
        assert_eq!(idx.session_items(2), &[1, 3]);
    }

    #[test]
    fn postings_are_descending_by_recency() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        assert_eq!(idx.posting_sessions(1).unwrap(), &[2, 0]);
        assert_eq!(idx.posting_sessions(2).unwrap(), &[1, 0]);
        assert_eq!(idx.posting_sessions(3).unwrap(), &[2, 1]);
        assert_eq!(idx.postings(999), None);
        // The inlined recency keys agree with the timestamp array and are
        // strictly descending.
        for (_, posting) in idx.postings_iter() {
            for e in posting.entries.iter() {
                assert_eq!(e.timestamp, idx.session_timestamp(e.session));
            }
            for w in posting.entries.windows(2) {
                assert!(w[0] > w[1], "entries not strictly descending");
            }
        }
    }

    #[test]
    fn postings_truncate_to_m_max_keeping_most_recent() {
        let idx = SessionIndex::build(&sample_clicks(), 1).unwrap();
        // Only the most recent session per item is kept...
        assert_eq!(idx.posting_sessions(1).unwrap(), &[2]);
        // ...but supports still count all containing sessions.
        assert_eq!(idx.item_support(1), Some(2));
        assert_eq!(idx.item_support(3), Some(2));
    }

    #[test]
    fn support_counts_sessions_not_clicks() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        // Item 1 appears twice in session 100 but once in the support count.
        assert_eq!(idx.item_support(1), Some(2));
        assert_eq!(idx.item_support(2), Some(2));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(SessionIndex::build(&[], 10), Err(CoreError::EmptyDataset)));
    }

    #[test]
    fn zero_m_max_is_rejected() {
        let err = SessionIndex::build(&sample_clicks(), 0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { parameter: "m_max", .. }));
    }

    #[test]
    fn stats_are_consistent() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        let stats = idx.stats();
        assert_eq!(stats.num_sessions, 3);
        assert_eq!(stats.num_items, 3);
        assert_eq!(stats.posting_entries, 6);
        assert_eq!(stats.session_item_entries, 6);
        assert_eq!(stats.max_posting_len, 2);
        assert!(stats.approx_bytes > 0);
    }

    #[test]
    fn timestamp_ties_are_broken_deterministically() {
        // Two sessions with identical timestamps: ordered by external id.
        let clicks = vec![
            Click::new(2, 7, 100),
            Click::new(1, 8, 100),
        ];
        let idx = SessionIndex::build(&clicks, 10).unwrap();
        assert_eq!(idx.session_items(0), &[8]); // external 1 first
        assert_eq!(idx.session_items(1), &[7]);
    }

    #[test]
    fn roundtrip_through_parts_preserves_index() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        let stats_before = idx.stats();
        let (p, t, f, o, m) = idx.into_parts();
        let idx2 = SessionIndex::from_parts(p, t, f, o, m).unwrap();
        assert_eq!(idx2.stats(), stats_before);
        assert_eq!(idx2.posting_sessions(1).unwrap(), &[2, 0]);
    }

    #[test]
    fn from_parts_rejects_bad_offsets() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        let (p, t, f, mut o, m) = idx.into_parts();
        o[1] = 100; // out of range / non-monotone
        let err = SessionIndex::from_parts(p, t, f, o, m).unwrap_err();
        assert!(matches!(err, CoreError::CorruptIndex(_)));
    }

    #[test]
    fn from_parts_rejects_unsorted_postings() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        let (mut p, t, f, o, m) = idx.into_parts();
        p.get_mut(&1).unwrap().sessions = vec![0, 2].into_boxed_slice(); // ascending: wrong
        let err = SessionIndex::from_parts(p, t, f, o, m).unwrap_err();
        assert!(matches!(err, CoreError::CorruptIndex(_)));
    }

    #[test]
    fn from_parts_rejects_posting_longer_than_support() {
        let idx = SessionIndex::build(&sample_clicks(), 10).unwrap();
        let (mut p, t, f, o, m) = idx.into_parts();
        p.get_mut(&1).unwrap().support = 1; // posting has 2 entries
        let err = SessionIndex::from_parts(p, t, f, o, m).unwrap_err();
        assert!(matches!(err, CoreError::CorruptIndex(_)));
    }

    #[test]
    fn single_session_dataset_builds() {
        let clicks = vec![Click::new(1, 5, 1), Click::new(1, 6, 2)];
        let idx = SessionIndex::build(&clicks, 500).unwrap();
        assert_eq!(idx.num_sessions(), 1);
        assert_eq!(idx.posting_sessions(5).unwrap(), &[0]);
        assert_eq!(idx.session(0).items, &[5, 6]);
    }
}
