//! d-ary min-heaps.
//!
//! VMIS-kNN maintains two bounded heaps per request: `b_t`, a capacity-`m`
//! min-heap over session timestamps used to evict the oldest candidate
//! session, and `N_s`, a capacity-`k` min-heap over similarity scores used to
//! keep the top-k neighbours. The workload is insertion-heavy (every
//! candidate either pushes or replaces the root), and the paper notes that
//! **octonary heaps** (d = 8) outperform binary heaps here because a flatter
//! tree means fewer levels to sift through on insert, at the cost of more
//! comparisons on (rarer) removals.
//!
//! The heap is a min-heap over a key type `K` with an attached payload `V`.
//! Keys only need [`PartialOrd`]: the recommendation scores are `f32` and are
//! guaranteed finite by construction (weights and idf are finite, sums of
//! finitely many finite terms), so the partial order is total on the values
//! that actually occur. A `NaN` key would be rejected in debug builds.

/// A d-ary min-heap with payloads.
///
/// `D` is the arity; `D = 2` is a classic binary heap, `D = 8` the paper's
/// octonary heap. The root (returned by [`peek`](Self::peek) /
/// [`pop`](Self::pop)) is the entry with the **smallest** key.
#[derive(Debug, Clone)]
pub struct DaryHeap<K, V, const D: usize> {
    data: Vec<(K, V)>,
}

impl<K: PartialOrd + Copy, V: Copy, const D: usize> Default for DaryHeap<K, V, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PartialOrd + Copy, V: Copy, const D: usize> DaryHeap<K, V, D> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        Self { data: Vec::new() }
    }

    /// Creates an empty heap with space for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The minimum entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<&(K, V)> {
        self.data.first()
    }

    /// Inserts an entry in `O(log_D n)`.
    #[inline]
    pub fn push(&mut self, key: K, value: V) {
        debug_assert!(key.partial_cmp(&key).is_some(), "heap keys must not be NaN");
        self.data.push((key, value));
        self.sift_up(self.data.len() - 1);
    }

    /// Removes and returns the minimum entry in `O(D · log_D n)`.
    pub fn pop(&mut self) -> Option<(K, V)> {
        let last = self.data.len().checked_sub(1)?;
        self.data.swap(0, last);
        let out = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// Replaces the root with a new entry and restores the heap property,
    /// returning the old root. Equivalent to `pop` followed by `push`, but
    /// with a single sift. Panics if the heap is empty.
    pub fn replace_root(&mut self, key: K, value: V) -> (K, V) {
        debug_assert!(key.partial_cmp(&key).is_some(), "heap keys must not be NaN");
        let old = self.data[0];
        self.data[0] = (key, value);
        self.sift_down(0);
        old
    }

    /// Iterates over entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.data.iter()
    }

    /// Consumes the heap and returns entries sorted by ascending key.
    pub fn into_sorted_vec(mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.data.len());
        while let Some(entry) = self.pop() {
            out.push(entry);
        }
        out
    }

    #[inline]
    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / D;
            if self.data[idx].0 < self.data[parent].0 {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.data.len();
        loop {
            let first_child = idx * D + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + D).min(len);
            // Find the smallest child.
            let mut min_child = first_child;
            for child in first_child + 1..last_child {
                if self.data[child].0 < self.data[min_child].0 {
                    min_child = child;
                }
            }
            if self.data[min_child].0 < self.data[idx].0 {
                self.data.swap(idx, min_child);
                idx = min_child;
            } else {
                break;
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn is_valid_heap(&self) -> bool {
        (1..self.data.len()).all(|i| self.data[(i - 1) / D].0 <= self.data[i].0)
    }
}

/// Binary heap alias (d = 2).
pub type BinaryHeap2<K, V> = DaryHeap<K, V, 2>;
/// Octonary heap alias (d = 8), the paper's default.
pub type OctonaryHeap<K, V> = DaryHeap<K, V, 8>;

/// A d-ary min-heap whose arity is chosen at runtime.
///
/// Used by the VMIS-kNN pipeline so that heap arity can be an ordinary
/// configuration knob (the `A1` ablation benchmark sweeps it) without
/// monomorphising the whole recommendation path per arity. The const-generic
/// [`DaryHeap`] remains available where the arity is statically known.
#[derive(Debug, Clone)]
pub struct RuntimeDaryHeap<K, V> {
    data: Vec<(K, V)>,
    d: usize,
}

impl<K: PartialOrd + Copy, V: Copy> RuntimeDaryHeap<K, V> {
    /// Creates an empty heap of arity `d` (≥ 2) with preallocated `capacity`.
    pub fn with_arity_and_capacity(d: usize, capacity: usize) -> Self {
        assert!(d >= 2, "heap arity must be at least 2");
        Self { data: Vec::with_capacity(capacity), d }
    }

    /// The configured arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.d
    }

    /// Number of entries currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all entries, keeping the allocation and arity.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The minimum entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<&(K, V)> {
        self.data.first()
    }

    /// Inserts an entry.
    #[inline]
    pub fn push(&mut self, key: K, value: V) {
        debug_assert!(key.partial_cmp(&key).is_some(), "heap keys must not be NaN");
        self.data.push((key, value));
        let mut idx = self.data.len() - 1;
        while idx > 0 {
            let parent = (idx - 1) / self.d;
            if self.data[idx].0 < self.data[parent].0 {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(K, V)> {
        let last = self.data.len().checked_sub(1)?;
        self.data.swap(0, last);
        let out = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// Replaces the root, returning the old root. Panics if empty.
    pub fn replace_root(&mut self, key: K, value: V) -> (K, V) {
        debug_assert!(key.partial_cmp(&key).is_some(), "heap keys must not be NaN");
        let old = self.data[0];
        self.data[0] = (key, value);
        self.sift_down(0);
        old
    }

    /// Iterates over entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &(K, V)> {
        self.data.iter()
    }

    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.data.len();
        loop {
            let first_child = idx * self.d + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + self.d).min(len);
            let mut min_child = first_child;
            for child in first_child + 1..last_child {
                if self.data[child].0 < self.data[min_child].0 {
                    min_child = child;
                }
            }
            if self.data[min_child].0 < self.data[idx].0 {
                self.data.swap(idx, min_child);
                idx = min_child;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_sorted<const D: usize>(mut h: DaryHeap<u64, u32, D>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        out
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut h: OctonaryHeap<u64, u32> = DaryHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek(), None);
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn pop_yields_ascending_order_binary() {
        let mut h: BinaryHeap2<u64, u32> = DaryHeap::new();
        for k in [5u64, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            h.push(k, k as u32);
        }
        assert_eq!(drain_sorted(h), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_yields_ascending_order_octonary() {
        let mut h: OctonaryHeap<u64, u32> = DaryHeap::new();
        for k in (0..100).rev() {
            h.push(k, 0);
        }
        assert_eq!(drain_sorted(h), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn replace_root_returns_old_minimum() {
        let mut h: OctonaryHeap<u64, u32> = DaryHeap::new();
        h.push(10, 1);
        h.push(20, 2);
        h.push(5, 3);
        let (old_key, old_val) = h.replace_root(15, 4);
        assert_eq!((old_key, old_val), (5, 3));
        assert_eq!(h.peek().map(|&(k, _)| k), Some(10));
        assert!(h.is_valid_heap());
    }

    #[test]
    fn replace_root_with_new_minimum_stays_at_root() {
        let mut h: BinaryHeap2<u64, u32> = DaryHeap::new();
        h.push(10, 1);
        h.push(20, 2);
        h.replace_root(1, 9);
        assert_eq!(h.peek(), Some(&(1, 9)));
    }

    #[test]
    fn duplicate_keys_are_allowed() {
        let mut h: DaryHeap<u64, u32, 4> = DaryHeap::new();
        for v in 0..5 {
            h.push(7, v);
        }
        assert_eq!(h.len(), 5);
        let mut payloads: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn float_keys_work() {
        let mut h: OctonaryHeap<f32, u64> = DaryHeap::new();
        h.push(0.5, 1);
        h.push(0.25, 2);
        h.push(0.75, 3);
        assert_eq!(h.pop(), Some((0.25, 2)));
        assert_eq!(h.pop(), Some((0.5, 1)));
        assert_eq!(h.pop(), Some((0.75, 3)));
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut h: OctonaryHeap<u64, u32> = DaryHeap::with_capacity(16);
        for k in 0..16 {
            h.push(k, 0);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn into_sorted_vec_is_ascending() {
        let mut h: DaryHeap<u64, u32, 16> = DaryHeap::new();
        for k in [4u64, 1, 3, 2] {
            h.push(k, 0);
        }
        let keys: Vec<u64> = h.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
    }

    #[test]
    fn runtime_heap_matches_const_heap_behaviour() {
        for d in [2usize, 3, 4, 8, 16] {
            let mut h = RuntimeDaryHeap::<u64, u32>::with_arity_and_capacity(d, 8);
            assert_eq!(h.arity(), d);
            for k in [9u64, 2, 7, 4, 11, 0, 5] {
                h.push(k, k as u32);
            }
            let mut got = Vec::new();
            while let Some((k, _)) = h.pop() {
                got.push(k);
            }
            assert_eq!(got, vec![0, 2, 4, 5, 7, 9, 11], "arity {d}");
        }
    }

    #[test]
    fn runtime_heap_replace_root() {
        let mut h = RuntimeDaryHeap::<u64, u32>::with_arity_and_capacity(8, 4);
        h.push(3, 30);
        h.push(1, 10);
        h.push(2, 20);
        assert_eq!(h.replace_root(5, 50), (1, 10));
        assert_eq!(h.pop(), Some((2, 20)));
        assert_eq!(h.pop(), Some((3, 30)));
        assert_eq!(h.pop(), Some((5, 50)));
        assert!(h.is_empty());
        h.clear();
        assert_eq!(h.peek(), None);
    }

    #[test]
    fn heap_property_maintained_under_mixed_ops() {
        let mut h: DaryHeap<u64, u32, 4> = DaryHeap::new();
        for i in 0..50 {
            h.push((i * 37) % 101, i as u32);
            if i % 3 == 0 {
                h.pop();
            }
            if i % 7 == 0 && !h.is_empty() {
                h.replace_root(i, 0);
            }
            assert!(h.is_valid_heap(), "violated at step {i}");
        }
    }
}
