//! Fundamental identifier types and the click record shared across crates.
//!
//! External identifiers (as found in click logs) are 64-bit; the index
//! remaps historical sessions to dense 32-bit [`SessionId`]s so that the
//! timestamp array `t` and the per-session item lists allow constant-time
//! random access (Section 3 of the paper).

use serde::{Deserialize, Serialize};

/// External item identifier as it appears in a click log.
pub type ItemId = u64;

/// Dense internal identifier of a historical session.
///
/// Assigned in ascending session-timestamp order during index construction,
/// so a larger `SessionId` always denotes a more recent session. This makes
/// recency tie-breaks cheap and keeps the timestamp array `t` contiguous.
pub type SessionId = u32;

/// Integer timestamp (seconds or any monotone unit) of a click or session.
pub type Timestamp = u64;

/// External session identifier as it appears in a click log.
pub type ExternalSessionId = u64;

/// One user-item interaction from the click log.
///
/// Datasets in the paper (Table 1) consist of exactly these tuples:
/// `(session_id, item_id, timestamp)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Click {
    /// External session identifier.
    pub session_id: ExternalSessionId,
    /// External item identifier.
    pub item_id: ItemId,
    /// Click timestamp; larger is more recent.
    pub timestamp: Timestamp,
}

impl Click {
    /// Creates a click record.
    pub const fn new(session_id: ExternalSessionId, item_id: ItemId, timestamp: Timestamp) -> Self {
        Self { session_id, item_id, timestamp }
    }
}

/// A scored recommendation, as returned by [`crate::VmisKnn::recommend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemScore {
    /// Recommended item.
    pub item: ItemId,
    /// Relevance score; higher is better. Always finite and non-negative.
    pub score: f32,
}

impl ItemScore {
    /// Creates a scored item.
    pub const fn new(item: ItemId, score: f32) -> Self {
        Self { item, score }
    }
}

/// Borrowed view of a historical session inside the index: its deduplicated
/// items (in first-occurrence order) and its timestamp.
#[derive(Debug, Clone, Copy)]
pub struct SessionRef<'a> {
    /// Dense internal identifier.
    pub id: SessionId,
    /// Items the session interacted with, first occurrence order.
    pub items: &'a [ItemId],
    /// Session timestamp (maximum click timestamp in the session).
    pub timestamp: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn click_construction_roundtrips_fields() {
        let c = Click::new(7, 42, 1_000);
        assert_eq!(c.session_id, 7);
        assert_eq!(c.item_id, 42);
        assert_eq!(c.timestamp, 1_000);
    }

    #[test]
    fn item_score_ordering_by_score() {
        let a = ItemScore::new(1, 0.5);
        let b = ItemScore::new(2, 0.25);
        assert!(a.score > b.score);
    }
}
