//! The common interface all session-based recommenders implement.
//!
//! The evaluation harness, the baselines, the neural comparator and the
//! serving layer all speak this trait, so every experiment of the paper can
//! swap algorithms freely.

use crate::types::{ItemId, ItemScore};
use crate::vmis::{BatchScratch, Scratch, VmisKnn};

/// A next-item recommender over evolving sessions.
///
/// Implementations must be `Sync` so evaluation can fan out across threads;
/// recommenders are immutable once fitted (the paper rebuilds indices
/// offline, Section 4.1).
pub trait Recommender: Sync {
    /// Scores the most likely next items for an evolving session, best
    /// first. At most `how_many` items; fewer (or none) when the session
    /// shares nothing with the model's history.
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore>;

    /// Like [`Recommender::recommend`], but reusing caller-provided scratch
    /// buffers so steady-state callers (the serving hot path, tight
    /// evaluation loops) allocate nothing per request. The default
    /// implementation ignores the scratch; allocation-aware recommenders
    /// override it.
    fn recommend_with(
        &self,
        session: &[ItemId],
        how_many: usize,
        _scratch: &mut Scratch,
    ) -> Vec<ItemScore> {
        self.recommend(session, how_many)
    }

    /// Scores a batch of sessions in one call, returning one list per
    /// session in input order. The default implementation is the obvious
    /// loop; recommenders with a genuine batch kernel (VMIS-kNN) override it
    /// with a shared-traversal path whose output is bit-identical to the
    /// loop — the contract batching servers rely on when they coalesce
    /// concurrent requests.
    fn recommend_batch_with(
        &self,
        sessions: &[&[ItemId]],
        how_many: usize,
        _scratch: &mut BatchScratch,
    ) -> Vec<Vec<ItemScore>> {
        sessions.iter().map(|s| self.recommend(s, how_many)).collect()
    }

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &str;
}

impl Recommender for VmisKnn {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let mut recs = VmisKnn::recommend(self, session);
        recs.truncate(how_many);
        recs
    }

    fn recommend_with(
        &self,
        session: &[ItemId],
        how_many: usize,
        scratch: &mut Scratch,
    ) -> Vec<ItemScore> {
        let mut recs = self.recommend_with_scratch(session, scratch);
        recs.truncate(how_many);
        recs
    }

    fn recommend_batch_with(
        &self,
        sessions: &[&[ItemId]],
        how_many: usize,
        scratch: &mut BatchScratch,
    ) -> Vec<Vec<ItemScore>> {
        let mut lists = VmisKnn::recommend_batch(self, sessions, scratch);
        for list in &mut lists {
            list.truncate(how_many);
        }
        lists
    }

    fn name(&self) -> &str {
        "vmis-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SessionIndex;
    use crate::types::Click;
    use crate::vmis::VmisConfig;

    #[test]
    fn vmisknn_implements_recommender() {
        let clicks = vec![
            Click::new(1, 10, 100),
            Click::new(1, 11, 101),
            Click::new(2, 10, 200),
            Click::new(2, 12, 201),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = VmisKnn::new(index, VmisConfig::default()).unwrap();
        let r: &dyn Recommender = &v;
        let recs = r.recommend(&[10], 1);
        assert!(recs.len() <= 1);
        assert_eq!(r.name(), "vmis-knn");
    }

    #[test]
    fn recommend_batch_with_matches_per_session_calls() {
        let clicks = vec![
            Click::new(1, 10, 100),
            Click::new(1, 11, 101),
            Click::new(2, 10, 200),
            Click::new(2, 12, 201),
            Click::new(3, 11, 300),
            Click::new(3, 12, 301),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = VmisKnn::new(index, VmisConfig::default()).unwrap();
        let r: &dyn Recommender = &v;
        let sessions: Vec<&[u64]> = vec![&[10], &[10, 11], &[12, 10], &[10]];
        let mut scratch = BatchScratch::default();
        let batch = r.recommend_batch_with(&sessions, 2, &mut scratch);
        assert_eq!(batch.len(), sessions.len());
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(batch[i], r.recommend(s, 2), "session {s:?}");
            assert!(batch[i].len() <= 2, "how_many must cap batch lists too");
        }
    }

    #[test]
    fn recommend_with_reuses_scratch_and_matches_recommend() {
        let clicks = vec![
            Click::new(1, 10, 100),
            Click::new(1, 11, 101),
            Click::new(2, 10, 200),
            Click::new(2, 12, 201),
            Click::new(3, 11, 300),
            Click::new(3, 12, 301),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = VmisKnn::new(index, VmisConfig::default()).unwrap();
        let mut scratch = crate::vmis::Scratch::new();
        for session in [&[10u64][..], &[10, 11], &[12, 10]] {
            assert_eq!(
                Recommender::recommend_with(&v, session, 5, &mut scratch),
                Recommender::recommend(&v, session, 5),
                "scratch reuse must not change results",
            );
        }
    }
}
