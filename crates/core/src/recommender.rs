//! The common interface all session-based recommenders implement.
//!
//! The evaluation harness, the baselines, the neural comparator and the
//! serving layer all speak this trait, so every experiment of the paper can
//! swap algorithms freely.

use crate::types::{ItemId, ItemScore};
use crate::vmis::VmisKnn;

/// A next-item recommender over evolving sessions.
///
/// Implementations must be `Sync` so evaluation can fan out across threads;
/// recommenders are immutable once fitted (the paper rebuilds indices
/// offline, Section 4.1).
pub trait Recommender: Sync {
    /// Scores the most likely next items for an evolving session, best
    /// first. At most `how_many` items; fewer (or none) when the session
    /// shares nothing with the model's history.
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore>;

    /// A short human-readable name used in experiment reports.
    fn name(&self) -> &str;
}

impl Recommender for VmisKnn {
    fn recommend(&self, session: &[ItemId], how_many: usize) -> Vec<ItemScore> {
        let mut recs = VmisKnn::recommend(self, session);
        recs.truncate(how_many);
        recs
    }

    fn name(&self) -> &str {
        "vmis-knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SessionIndex;
    use crate::types::Click;
    use crate::vmis::VmisConfig;

    #[test]
    fn vmisknn_implements_recommender() {
        let clicks = vec![
            Click::new(1, 10, 100),
            Click::new(1, 11, 101),
            Click::new(2, 10, 200),
            Click::new(2, 12, 201),
        ];
        let index = SessionIndex::build(&clicks, 500).unwrap();
        let v = VmisKnn::new(index, VmisConfig::default()).unwrap();
        let r: &dyn Recommender = &v;
        let recs = r.recommend(&[10], 1);
        assert!(recs.len() <= 1);
        assert_eq!(r.name(), "vmis-knn");
    }
}
