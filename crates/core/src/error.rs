//! Error types for index construction and configuration validation.

use std::fmt;

/// Errors raised by `serenade-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The click log contained no usable sessions (e.g. it was empty or all
    /// sessions were filtered out).
    EmptyDataset,
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// The number of historical sessions exceeded the dense-id space
    /// (`u32::MAX` sessions).
    TooManySessions(usize),
    /// An index assembled from pre-built parts (deserialisation, parallel
    /// build) violated a structural invariant.
    CorruptIndex(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDataset => {
                write!(f, "click log contains no usable sessions")
            }
            CoreError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration: {parameter}: {reason}")
            }
            CoreError::TooManySessions(n) => {
                write!(f, "{n} historical sessions exceed the 32-bit session-id space")
            }
            CoreError::CorruptIndex(detail) => {
                write!(f, "corrupt session index: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CoreError::EmptyDataset.to_string().contains("no usable sessions"));
        let e = CoreError::InvalidConfig { parameter: "m", reason: "must be positive".into() };
        assert!(e.to_string().contains('m'));
        assert!(e.to_string().contains("positive"));
        assert!(CoreError::TooManySessions(5).to_string().contains('5'));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<CoreError>();
    }
}
