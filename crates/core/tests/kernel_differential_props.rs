//! Randomized differential testing of the scoring-kernel hot path.
//!
//! The cache-conscious kernel layout — recency keys inlined into posting
//! storage, the dense epoch-stamped score accumulator, and the specialised
//! depersonalised single-item path — is an *internal* rearrangement: its
//! correctness contract is bit-identical output to the straightforward
//! formulation. This suite samples that contract over random click logs and
//! configs, leaning on the shapes that stress the layout specifically:
//! timestamp ties (the composite-key tie-break order), `m` at or near the
//! posting length (the early-stop boundary), and single-item windows (the
//! specialised path).

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_core::{Click, SessionIndex, VmisConfig, VmisKnn};

/// Random click logs over a small id space; the timestamp range is a
/// parameter so callers can force heavy ties.
fn clicks_strategy(max_ts: u64) -> impl Strategy<Value = Vec<Click>> {
    vec((1u64..=20, 1u64..=12, 0u64..=max_ts), 1..120).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(session, item, ts)| Click::new(session, item, ts))
            .collect()
    })
}

/// Random-but-valid configs spanning the knobs the kernel layout touches.
/// `m` stays small so it regularly lands exactly on a posting length — the
/// early-stop/heap-eviction boundary.
fn config_strategy() -> impl Strategy<Value = VmisConfig> {
    (1usize..=12, 1usize..=8, 1usize..=10, 1usize..=6, any::<bool>(), any::<bool>()).prop_map(
        |(m, k, how_many, max_session_len, early_stopping, exclude)| VmisConfig {
            m,
            k,
            how_many,
            max_session_len,
            early_stopping,
            exclude_session_items: exclude,
            ..VmisConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    // The inlined posting layout is an exact rewrite of the old
    // sid-only layout: reconstructing each recency key the old way — a
    // `session_timestamp` lookup per stored sid — yields the same key
    // sequence the entries now carry inline, in the same order.
    #[test]
    fn inlined_postings_match_timestamp_chased_reconstruction(
        clicks in clicks_strategy(300),
        m_max in 1usize..8,
    ) {
        let index = SessionIndex::build(&clicks, m_max).expect("non-empty log");
        for item in index.items() {
            let entries = index.postings(item).expect("listed item has a posting");
            let sids = index.posting_sessions(item).expect("transport projection");
            prop_assert_eq!(entries.len(), sids.len());
            let inline: Vec<(u64, u32)> =
                entries.iter().map(|e| (e.timestamp, e.session)).collect();
            let chased: Vec<(u64, u32)> =
                sids.iter().map(|&j| (index.session_timestamp(j), j)).collect();
            prop_assert_eq!(inline, chased, "item {} layout diverged", item);
        }
    }

    // The specialised depersonalised path is bit-identical to the generic
    // kernel fed a one-item window — for known and unknown items, across
    // scratch reuse.
    #[test]
    fn depersonalised_path_matches_generic_single_item_window(
        clicks in clicks_strategy(300),
        config in config_strategy(),
        probes in vec(0u64..=15, 1..12),
    ) {
        let index = SessionIndex::build(&clicks, config.m.max(4)).expect("non-empty log");
        let vmis = VmisKnn::new(index, config).expect("valid config");
        let mut fast = vmis.scratch();
        let mut generic = vmis.scratch();
        for &item in &probes {
            prop_assert_eq!(
                vmis.recommend_depersonalised(item, &mut fast),
                vmis.recommend_with_scratch(&[item], &mut generic),
                "item {} diverged", item
            );
        }
    }

    // Heavy timestamp ties: with only four distinct timestamps the
    // composite `(timestamp, session)` order is decided almost entirely by
    // the session-id tie-break, so any layout bug in the inlined key
    // ordering shows up here first.
    #[test]
    fn timestamp_ties_keep_all_paths_identical(
        clicks in clicks_strategy(3),
        config in config_strategy(),
        session in vec(1u64..=14, 0..6),
    ) {
        let index = SessionIndex::build(&clicks, config.m.max(4)).expect("non-empty log");
        let vmis = VmisKnn::new(index, config).expect("valid config");
        let mut scratch = vmis.scratch();
        let reference = vmis.recommend(&session);
        prop_assert_eq!(vmis.recommend_with_scratch(&session, &mut scratch), reference.clone());
        if let [item] = session[..] {
            prop_assert_eq!(vmis.recommend_depersonalised(item, &mut scratch), reference);
        }
    }

    // Early stopping is a pure optimisation at every `m`-vs-posting-length
    // boundary, on both the generic and the specialised path.
    #[test]
    fn early_stop_boundary_is_output_invariant(
        clicks in clicks_strategy(50),
        config in config_strategy(),
        session in vec(1u64..=14, 1..6),
    ) {
        let index = std::sync::Arc::new(
            SessionIndex::build(&clicks, config.m.max(4)).expect("non-empty log"),
        );
        let mut on = config.clone();
        on.early_stopping = true;
        let mut off = config;
        off.early_stopping = false;
        let vmis_on = VmisKnn::new(std::sync::Arc::clone(&index), on).expect("valid config");
        let vmis_off = VmisKnn::new(index, off).expect("valid config");
        prop_assert_eq!(vmis_on.recommend(&session), vmis_off.recommend(&session));
        let mut s_on = vmis_on.scratch();
        let mut s_off = vmis_off.scratch();
        prop_assert_eq!(
            vmis_on.recommend_depersonalised(session[0], &mut s_on),
            vmis_off.recommend_depersonalised(session[0], &mut s_off)
        );
    }
}
