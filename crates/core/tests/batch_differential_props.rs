//! Randomized differential testing of the batch VMIS-kNN kernel.
//!
//! The batching server coalesces concurrently-arriving requests and scores
//! them through [`VmisKnn::recommend_batch`]; its correctness contract is
//! that the batch path is **bit-identical** to N sequential
//! [`VmisKnn::recommend_with_scratch`] calls — same items, same f32 scores,
//! same order — for every batch composition. This suite samples that
//! contract over random click logs, configs and batches, including the
//! duplicate-heavy single-item batches the coalescing path produces for hot
//! product pages (shrinking yields a minimal counterexample on failure).

use proptest::collection::vec;
use proptest::prelude::*;
use serenade_core::{Click, ItemId, SessionIndex, VmisConfig, VmisKnn};

/// Random click logs: small id spaces force collisions (shared items across
/// sessions, duplicate items within a session, timestamp ties).
fn clicks_strategy() -> impl Strategy<Value = Vec<Click>> {
    vec((1u64..=20, 1u64..=12, 0u64..=300), 1..120).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(session, item, ts)| Click::new(session, item, ts))
            .collect()
    })
}

/// Random-but-valid configs spanning the knobs that alter the scoring path.
fn config_strategy() -> impl Strategy<Value = VmisConfig> {
    (1usize..=12, 1usize..=8, 1usize..=10, 1usize..=6, any::<bool>(), any::<bool>()).prop_map(
        |(m, k, how_many, max_session_len, early_stopping, exclude)| VmisConfig {
            m,
            k,
            how_many,
            max_session_len,
            early_stopping,
            exclude_session_items: exclude,
            ..VmisConfig::default()
        },
    )
}

/// Random batches of evolving sessions. Sessions may be empty (a coalesced
/// request whose session expired) and the item space overlaps the history's
/// only partially, so unknown-item windows occur too.
fn batch_strategy() -> impl Strategy<Value = Vec<Vec<ItemId>>> {
    vec(vec(1u64..=14, 0..8), 0..24)
}

/// Duplicate-heavy batches: single-item windows drawn from a tiny item
/// space, the shape the per-pod coalescing path produces under a flash
/// crowd. Exercises the window-dedupe arm of the batch kernel.
fn hot_batch_strategy() -> impl Strategy<Value = Vec<Vec<ItemId>>> {
    vec(vec(1u64..=4, 1..2), 1..32)
}

fn assert_batch_matches_sequential(
    vmis: &VmisKnn,
    batches: &[Vec<Vec<ItemId>>],
) -> Result<(), String> {
    let mut batch_scratch = vmis.batch_scratch();
    let mut scratch = vmis.scratch();
    // One shared BatchScratch across all batches: reuse must not leak state.
    for batch in batches {
        let refs: Vec<&[ItemId]> = batch.iter().map(Vec::as_slice).collect();
        let out = vmis.recommend_batch(&refs, &mut batch_scratch);
        prop_assert_eq!(out.len(), batch.len());
        for (i, session) in batch.iter().enumerate() {
            let reference = vmis.recommend_with_scratch(session, &mut scratch);
            prop_assert_eq!(
                &out[i], &reference,
                "batch member {} ({:?}) diverged from the sequential kernel", i, session
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn batch_kernel_is_bit_identical_to_sequential(
        clicks in clicks_strategy(),
        config in config_strategy(),
        batches in vec(batch_strategy(), 1..4),
    ) {
        let index = SessionIndex::build(&clicks, config.m.max(4)).expect("non-empty log");
        let vmis = VmisKnn::new(index, config).expect("valid config");
        assert_batch_matches_sequential(&vmis, &batches)?;
    }

    #[test]
    fn duplicate_heavy_batches_are_bit_identical_too(
        clicks in clicks_strategy(),
        config in config_strategy(),
        batches in vec(hot_batch_strategy(), 1..4),
    ) {
        let index = SessionIndex::build(&clicks, config.m.max(4)).expect("non-empty log");
        let vmis = VmisKnn::new(index, config).expect("valid config");
        assert_batch_matches_sequential(&vmis, &batches)?;
    }
}
