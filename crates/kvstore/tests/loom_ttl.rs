//! Model check for the TTL store's expiry-vs-read race.
//!
//! Run with `cargo test -p serenade-kvstore --features loom`. The scenario
//! mirrors the serving incident class this store must exclude: a session
//! expires (30 minutes idle in production, 10 ms here), and the next click
//! on that session (`update_or_insert`, which restarts the session from
//! scratch) races a concurrent read (`get`, which lazily removes the
//! expired entry). No interleaving may ever surface the *stale pre-expiry
//! value*: the reader sees either nothing or the restarted session.

#![cfg(feature = "loom")]

use serenade_kvstore::{ManualClock, StoreConfig, TtlStore};
use std::sync::Arc as StdArc;

fn expired_session_model() {
    let clock = ManualClock::new();
    let cfg = StoreConfig { shards: 1, ttl_ms: 10, touch_on_read: false };
    let store = StdArc::new(TtlStore::with_clock(cfg, clock.clone()));

    // A session that has gone idle past its TTL before the race begins.
    store.put(7u64, vec![1u64]);
    clock.advance_ms(20);

    let restarter = {
        let store = StdArc::clone(&store);
        loom::thread::spawn(move || {
            // The next click: restart the expired session and append.
            store.update_or_insert(7, Vec::new, |items| items.push(2));
        })
    };
    let observed = store.get(&7);
    restarter.join().unwrap();

    assert!(
        observed.is_none() || observed == Some(vec![2]),
        "reader surfaced the stale pre-expiry session: {observed:?}"
    );
    // After both operations the restarted session is live regardless of
    // which side won the shard lock.
    assert_eq!(store.get(&7), Some(vec![2]), "restarted session must survive the race");
}

#[test]
fn expiry_racing_read_never_surfaces_stale_session() {
    let mut builder = loom::Builder::default();
    builder.preemption_bound = 3;
    let report = builder.explore(expired_session_model);
    assert!(
        report.failure.is_none(),
        "checker found a bad schedule: {}",
        report.failure.unwrap()
    );
    assert!(report.exhausted, "exploration must finish within the iteration budget");
    assert!(report.iterations > 1, "the model must actually branch");
}
