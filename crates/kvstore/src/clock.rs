//! Injectable time source for deterministic TTL testing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A monotone-enough millisecond clock.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since an arbitrary epoch.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system time after the unix epoch")
            .as_millis() as u64
    }
}

/// A hand-driven clock for tests: starts at 0 and only moves when told to.
#[derive(Debug, Default, Clone)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set_ms(&self, ms: u64) {
        self.now.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone_enough() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000); // after 2020
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(500);
        assert_eq!(c.now_ms(), 500);
        c.set_ms(10);
        assert_eq!(c.now_ms(), 10);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.advance_ms(7);
        assert_eq!(c2.now_ms(), 7);
    }
}
