//! The sharded TTL hash store.
//!
//! Keys are hashed (FxHash scheme, same as `serenade-core`) to one of `2^s`
//! shards, each guarded by its own `parking_lot::Mutex`. Contention is
//! therefore bounded by the shard count, and single-shard operations are a
//! lock + one hash-map probe — microseconds, matching the paper's RocksDB
//! measurements for this workload shape.
//!
//! Expiry is lazy (an expired entry encountered on `get`/`update` is treated
//! as absent and removed) plus an explicit [`TtlStore::evict_expired`] sweep
//! that a maintenance thread can call periodically — mirroring how the paper
//! "configures RocksDB to remove the data for a session after 30 minutes of
//! inactivity".

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

use crate::clock::{Clock, SystemClock};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// FxHash-style hasher (local copy; `serenade-kvstore` is dependency-free).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Configuration of a [`TtlStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of shards, rounded up to a power of two. More shards, less
    /// lock contention, slightly more memory.
    pub shards: usize,
    /// Entry time-to-live in milliseconds (paper: 30 minutes).
    pub ttl_ms: u64,
    /// Whether a read refreshes the TTL ("inactivity" semantics — the paper
    /// expires sessions 30 minutes after the *last* access).
    pub touch_on_read: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { shards: 64, ttl_ms: 30 * 60 * 1_000, touch_on_read: true }
    }
}

/// Aggregate store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (non-expired) entries at the time of the call.
    pub live_entries: usize,
    /// Number of shards.
    pub shards: usize,
    /// Entries reclaimed lazily: found expired during a read/write/remove
    /// and dropped (or restarted) on the spot, since startup.
    pub expired: u64,
    /// Entries reclaimed eagerly by [`TtlStore::evict_expired`] sweeps,
    /// since startup.
    pub swept: u64,
}

struct Entry<V> {
    value: V,
    expires_at_ms: u64,
}

type Shard<K, V> = HashMap<K, Entry<V>, FxBuildHasher>;

/// Sharded in-memory key-value store with per-entry TTL.
pub struct TtlStore<K, V, C: Clock = SystemClock> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    mask: u64,
    config: StoreConfig,
    clock: C,
    hasher: FxBuildHasher,
    /// Entries reclaimed lazily (found expired on access).
    expired: AtomicU64,
    /// Entries reclaimed by explicit [`TtlStore::evict_expired`] sweeps.
    swept: AtomicU64,
}

impl<K: Hash + Eq, V> TtlStore<K, V, SystemClock> {
    /// Creates a store with the wall clock.
    pub fn new(config: StoreConfig) -> Self {
        Self::with_clock(config, SystemClock)
    }
}

impl<K: Hash + Eq, V, C: Clock> TtlStore<K, V, C> {
    /// Creates a store with an explicit clock (tests use [`crate::ManualClock`]).
    pub fn with_clock(config: StoreConfig, clock: C) -> Self {
        let shards = config.shards.next_power_of_two().max(1);
        let mut v = Vec::with_capacity(shards);
        for _ in 0..shards {
            v.push(Mutex::new(Shard::default()));
        }
        Self {
            shards: v.into_boxed_slice(),
            mask: shards as u64 - 1,
            config,
            clock,
            hasher: FxBuildHasher::default(),
            expired: AtomicU64::new(0),
            swept: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h & self.mask) as usize]
    }

    /// Inserts or replaces; the entry's TTL starts now.
    pub fn put(&self, key: K, value: V) {
        let expires = self.clock.now_ms() + self.config.ttl_ms;
        let mut shard = self.shard_of(&key).lock();
        shard.insert(key, Entry { value, expires_at_ms: expires });
    }

    /// Removes an entry, returning its value if it was live.
    pub fn remove(&self, key: &K) -> Option<V> {
        let now = self.clock.now_ms();
        let mut shard = self.shard_of(key).lock();
        let entry = shard.remove(key)?;
        if entry.expires_at_ms > now {
            Some(entry.value)
        } else {
            drop(shard);
            // ORDERING: statistical counter with no partner; readers take
            // racy snapshots (see `expiry_counts`).
            self.expired.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// `true` if a live entry exists (does not refresh the TTL).
    pub fn contains(&self, key: &K) -> bool {
        let now = self.clock.now_ms();
        let shard = self.shard_of(key).lock();
        shard.get(key).is_some_and(|e| e.expires_at_ms > now)
    }

    /// Runs `f` on the live value, if any; refreshes the TTL when
    /// `touch_on_read` is set. Expired entries are removed.
    pub fn with_value<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        let now = self.clock.now_ms();
        let mut shard = self.shard_of(key).lock();
        match shard.get_mut(key) {
            Some(entry) if entry.expires_at_ms > now => {
                if self.config.touch_on_read {
                    entry.expires_at_ms = now + self.config.ttl_ms;
                }
                Some(f(&entry.value))
            }
            Some(_) => {
                shard.remove(key);
                drop(shard);
                // ORDERING: statistical counter, partner: none.
                self.expired.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    /// Mutates the live value in place (inserting `default()` if absent or
    /// expired) and refreshes the TTL. Returns the closure's result.
    ///
    /// This is the serving fast path: "append the clicked item to the
    /// session and read the session back" is one lock acquisition.
    pub fn update_or_insert<T>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> T,
    ) -> T {
        let now = self.clock.now_ms();
        let expires = now + self.config.ttl_ms;
        let mut shard = self.shard_of(&key).lock();
        match shard.entry(key) {
            MapEntry::Occupied(mut occupied) => {
                let entry = occupied.get_mut();
                if entry.expires_at_ms <= now {
                    // Expired: restart from the default value.
                    entry.value = default();
                    // ORDERING: statistical counter, partner: none.
                    self.expired.fetch_add(1, Ordering::Relaxed);
                }
                entry.expires_at_ms = expires;
                f(&mut entry.value)
            }
            MapEntry::Vacant(vacant) => {
                let entry = vacant.insert(Entry { value: default(), expires_at_ms: expires });
                f(&mut entry.value)
            }
        }
    }

    /// Removes every expired entry; returns how many were evicted.
    pub fn evict_expired(&self) -> usize {
        let now = self.clock.now_ms();
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let before = shard.len();
            shard.retain(|_, e| e.expires_at_ms > now);
            evicted += before - shard.len();
        }
        // ORDERING: statistical counter with no partner; racy reads only.
        self.swept.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Counts live entries (takes every shard lock once).
    pub fn stats(&self) -> StoreStats {
        let now = self.clock.now_ms();
        let live = self
            .shards
            .iter()
            .map(|s| s.lock().values().filter(|e| e.expires_at_ms > now).count())
            .sum();
        StoreStats {
            live_entries: live,
            shards: self.shards.len(),
            expired: self.expired.load(Ordering::Relaxed), // ORDERING: racy statistical read, partner: none
            swept: self.swept.load(Ordering::Relaxed), // ORDERING: racy statistical read, partner: none
        }
    }

    /// Cumulative `(lazily expired, swept)` reclamation counts — the inputs
    /// for the serving layer's eviction counters. Lock-free.
    pub fn expiry_counts(&self) -> (u64, u64) {
        // ORDERING: racy statistical reads (partner: none); callers diff
        // successive snapshots and tolerate in-flight updates.
        (self.expired.load(Ordering::Relaxed), self.swept.load(Ordering::Relaxed))
    }

    /// Physically drops an entry — live **or** expired — returning whether
    /// one existed. Unlike [`TtlStore::remove`] this never clones or returns
    /// the value and does not count an expired entry as a lazy expiry: the
    /// caller is erasing the key on purpose (GDPR-style unlearning), not
    /// observing a TTL event, so reclamation statistics stay untouched.
    pub fn forget(&self, key: &K) -> bool {
        let mut shard = self.shard_of(key).lock();
        shard.remove(key).is_some()
    }

    /// Removes all entries.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }
}

impl<K: Hash + Eq + Clone, V: Clone, C: Clock> TtlStore<K, V, C> {
    /// Snapshots up to `cap` live entries — the ownership-handoff export:
    /// when a cluster member leaves, its sessions are exported here and
    /// imported by their new owners. Entries are cloned out (the store
    /// keeps serving until the handoff completes and `forget` erases them);
    /// expired entries are never exported. One shard lock is held at a
    /// time, so the export does not stall concurrent requests to other
    /// shards. The cap bounds the handoff: with more live sessions than
    /// `cap`, an arbitrary subset is exported and the rest simply restart
    /// from empty on their next request — the same degradation a TTL
    /// expiry produces.
    pub fn export_live(&self, cap: usize) -> Vec<(K, V)> {
        let now = self.clock.now_ms();
        let mut out = Vec::with_capacity(cap.min(1_024));
        for shard in self.shards.iter() {
            if out.len() >= cap {
                break;
            }
            let shard = shard.lock();
            for (k, e) in shard.iter() {
                if out.len() >= cap {
                    break;
                }
                if e.expires_at_ms > now {
                    out.push((k.clone(), e.value.clone()));
                }
            }
        }
        out
    }
}

impl<K: Hash + Eq, V: Clone, C: Clock> TtlStore<K, V, C> {
    /// Returns a clone of the live value; refreshes the TTL when
    /// `touch_on_read` is set.
    pub fn get(&self, key: &K) -> Option<V> {
        self.with_value(key, V::clone)
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn store(ttl_ms: u64, touch: bool) -> (TtlStore<u64, Vec<u64>, ManualClock>, ManualClock) {
        let clock = ManualClock::new();
        let cfg = StoreConfig { shards: 4, ttl_ms, touch_on_read: touch };
        (TtlStore::with_clock(cfg, clock.clone()), clock)
    }

    #[test]
    fn put_get_roundtrip() {
        let (s, _) = store(1_000, true);
        s.put(1, vec![10, 11]);
        assert_eq!(s.get(&1), Some(vec![10, 11]));
        assert_eq!(s.get(&2), None);
        assert!(s.contains(&1));
        assert!(!s.contains(&2));
    }

    #[test]
    fn entries_expire_after_ttl() {
        let (s, clock) = store(1_000, false);
        s.put(1, vec![1]);
        clock.advance_ms(999);
        assert!(s.get(&1).is_some());
        clock.advance_ms(1);
        assert_eq!(s.get(&1), None);
        assert!(!s.contains(&1));
    }

    #[test]
    fn expiry_counts_track_lazy_and_swept_reclamation() {
        let (s, clock) = store(1_000, false);
        assert_eq!(s.expiry_counts(), (0, 0));

        // Lazy reclamation: a read of an expired entry removes it.
        s.put(1, vec![1]);
        clock.advance_ms(1_001);
        assert_eq!(s.get(&1), None);
        assert_eq!(s.expiry_counts(), (1, 0));

        // A write landing on an expired entry counts as a lazy expiry too.
        s.put(2, vec![2]);
        clock.advance_ms(1_001);
        s.update_or_insert(2, Vec::new, |v| v.push(3));
        assert_eq!(s.expiry_counts(), (2, 0));

        // remove() of an expired entry is a lazy expiry, not a removal.
        s.put(3, vec![3]);
        clock.advance_ms(1_001);
        assert_eq!(s.remove(&3), None);
        assert_eq!(s.expiry_counts(), (3, 0));

        // The sweep accounts for everything it reclaims.
        for k in 10..15 {
            s.put(k, vec![k]);
        }
        clock.advance_ms(1_001);
        assert_eq!(s.evict_expired(), 6); // 5 fresh + key 2's rewritten entry
        let (expired, swept) = s.expiry_counts();
        assert_eq!((expired, swept), (3, 6));
        assert_eq!(s.stats().expired, expired);
        assert_eq!(s.stats().swept, swept);

        // Removing a live entry counts nowhere.
        s.put(4, vec![4]);
        assert_eq!(s.remove(&4), Some(vec![4]));
        assert_eq!(s.expiry_counts(), (3, 6));
    }

    #[test]
    fn touch_on_read_extends_ttl() {
        let (s, clock) = store(1_000, true);
        s.put(1, vec![1]);
        clock.advance_ms(900);
        assert!(s.get(&1).is_some()); // refreshes
        clock.advance_ms(900);
        assert!(s.get(&1).is_some(), "read at t=900 must have extended the ttl");
        clock.advance_ms(1_001);
        assert_eq!(s.get(&1), None);
    }

    #[test]
    fn no_touch_on_read_keeps_original_deadline() {
        let (s, clock) = store(1_000, false);
        s.put(1, vec![1]);
        clock.advance_ms(900);
        assert!(s.get(&1).is_some());
        clock.advance_ms(200); // t = 1100 > 1000
        assert_eq!(s.get(&1), None);
    }

    #[test]
    fn update_or_insert_appends_in_one_call() {
        let (s, _) = store(1_000, true);
        let len = s.update_or_insert(7, Vec::new, |v| {
            v.push(42);
            v.len()
        });
        assert_eq!(len, 1);
        let len = s.update_or_insert(7, Vec::new, |v| {
            v.push(43);
            v.len()
        });
        assert_eq!(len, 2);
        assert_eq!(s.get(&7), Some(vec![42, 43]));
    }

    #[test]
    fn update_or_insert_restarts_expired_sessions() {
        let (s, clock) = store(1_000, true);
        s.update_or_insert(7, Vec::new, |v| v.push(1));
        clock.advance_ms(2_000);
        s.update_or_insert(7, Vec::new, |v| v.push(2));
        // The stale [1] must be gone: the session restarted.
        assert_eq!(s.get(&7), Some(vec![2]));
    }

    #[test]
    fn remove_returns_live_value_only() {
        let (s, clock) = store(1_000, true);
        s.put(1, vec![5]);
        assert_eq!(s.remove(&1), Some(vec![5]));
        assert_eq!(s.remove(&1), None);
        s.put(2, vec![6]);
        clock.advance_ms(2_000);
        assert_eq!(s.remove(&2), None, "expired values are not returned");
    }

    #[test]
    fn forget_erases_live_and_expired_entries_without_counting_expiry() {
        let (s, clock) = store(1_000, false);
        s.put(1, vec![1]);
        assert!(s.forget(&1), "live entry must be erased");
        assert!(!s.contains(&1));
        assert!(!s.forget(&1), "second erase finds nothing");

        // Expired entries are still physically present until reclaimed;
        // forget must erase them too, and must NOT book a lazy expiry —
        // this is deliberate unlearning, not a TTL event.
        s.put(2, vec![2]);
        clock.advance_ms(2_000);
        assert!(s.forget(&2), "expired-but-unreclaimed entry must be erased");
        assert_eq!(s.expiry_counts(), (0, 0));
        assert_eq!(s.evict_expired(), 0, "nothing left for the sweep");
    }

    #[test]
    fn evict_expired_sweeps_all_shards() {
        let (s, clock) = store(1_000, false);
        for k in 0..100u64 {
            s.put(k, vec![k]);
        }
        clock.advance_ms(500);
        for k in 100..150u64 {
            s.put(k, vec![k]);
        }
        clock.advance_ms(600); // first 100 expired, last 50 live
        assert_eq!(s.evict_expired(), 100);
        let stats = s.stats();
        assert_eq!(stats.live_entries, 50);
        assert_eq!(stats.shards, 4);
        assert_eq!(s.evict_expired(), 0);
    }

    #[test]
    fn stats_exclude_expired_entries() {
        let (s, clock) = store(1_000, false);
        s.put(1, vec![1]);
        s.put(2, vec![2]);
        clock.advance_ms(2_000);
        s.put(3, vec![3]);
        assert_eq!(s.stats().live_entries, 1);
    }

    #[test]
    fn clear_empties_everything() {
        let (s, _) = store(1_000, true);
        for k in 0..32u64 {
            s.put(k, vec![k]);
        }
        s.clear();
        assert_eq!(s.stats().live_entries, 0);
    }

    #[test]
    fn export_live_snapshots_live_entries_only_up_to_cap() {
        let (s, clock) = store(1_000, false);
        for k in 0..10u64 {
            s.put(k, vec![k]);
        }
        clock.advance_ms(1_001); // all 10 expired
        for k in 10..16u64 {
            s.put(k, vec![k]);
        }

        let full = s.export_live(usize::MAX);
        assert_eq!(full.len(), 6, "expired entries must never be exported");
        for (k, v) in &full {
            assert!((10..16).contains(k));
            assert_eq!(v, &vec![*k]);
        }

        let capped = s.export_live(4);
        assert_eq!(capped.len(), 4, "cap bounds the handoff");
        assert!(capped.iter().all(|(k, _)| (10..16).contains(k)));

        assert!(s.export_live(0).is_empty());

        // Export is a snapshot: the store still serves everything.
        assert_eq!(s.stats().live_entries, 6);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cfg = StoreConfig { shards: 5, ..Default::default() };
        let s: TtlStore<u64, u64> = TtlStore::new(cfg);
        assert_eq!(s.stats().shards, 8);
    }

    #[test]
    fn concurrent_updates_do_not_lose_writes() {
        let (s, _) = store(60_000, true);
        let s = std::sync::Arc::new(s);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        s.update_or_insert(i % 64, Vec::new, |v| v.push(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 8 threads x 1000 appends over 64 keys: every append must survive.
        let total: usize = (0..64u64).map(|k| s.get(&k).map_or(0, |v| v.len())).sum();
        assert_eq!(total, 8_000);
    }

    /// Std-threaded twin of `tests/loom_ttl.rs` (which explores the same
    /// race exhaustively under `--features loom`): readers racing an
    /// expired session's restart must never surface the stale pre-expiry
    /// value.
    #[test]
    fn expired_entry_read_racing_restart_never_surfaces_stale_value() {
        let (s, clock) = store(1_000, false);
        s.put(7, vec![1]);
        clock.advance_ms(2_000); // session now expired
        let s = std::sync::Arc::new(s);
        let reader = {
            let s = std::sync::Arc::clone(&s);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    match s.get(&7) {
                        None => {}
                        Some(v) => assert_eq!(v, vec![2], "stale pre-expiry session surfaced"),
                    }
                }
            })
        };
        for _ in 0..10_000 {
            s.update_or_insert(7, || vec![2], |_| ());
        }
        reader.join().unwrap();
        assert_eq!(s.get(&7), Some(vec![2]));
    }
}
