//! The storage abstraction the serving engine is written against.
//!
//! The paper's serving component treats session storage as a swappable
//! substrate: production uses machine-local RocksDB, the load tests an
//! in-memory store, and both share the same 30-minutes-of-inactivity TTL
//! contract (Section 4.2). [`SessionStore`] captures that contract so the
//! request path depends only on the trait; [`crate::TtlStore`] is the
//! default implementation.
//!
//! # TTL semantics
//!
//! Every implementation must provide per-entry expiry with these rules:
//!
//! * A write ([`SessionStore::update_or_insert`]) always restarts the
//!   entry's TTL ("inactivity" expiry: the deadline tracks the last write).
//! * An entry whose TTL has elapsed behaves exactly like an absent entry:
//!   reads miss, [`SessionStore::update_or_insert`] starts from `default()`,
//!   [`SessionStore::remove`] returns `None`.
//! * Whether a *read* refreshes the TTL is implementation-configurable
//!   (RocksDB-style stores refresh on access; see
//!   [`crate::StoreConfig::touch_on_read`]).
//! * [`SessionStore::evict_expired`] reclaims expired entries eagerly;
//!   implementations may additionally reclaim them lazily on access.

use std::hash::Hash;

use crate::clock::Clock;
use crate::store::TtlStore;

/// A concurrent keyed store with TTL expiry, sufficient to hold evolving
/// sessions for a serving pod. See the module docs for the TTL contract.
pub trait SessionStore<K, V>: Send + Sync {
    /// Mutates the live value in place — inserting `default()` if the key is
    /// absent or expired — refreshes the TTL, and returns the closure's
    /// result. This is the request fast path ("append the clicked item and
    /// read the view back") and must be atomic per key.
    fn update_or_insert<T>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> T,
    ) -> T
    where
        Self: Sized;

    /// Runs `f` on the live value, if any. May refresh the TTL, per the
    /// implementation's read-touch policy.
    fn with_value<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T>
    where
        Self: Sized;

    /// Removes an entry, returning its value if it was live.
    fn remove(&self, key: &K) -> Option<V>;

    /// Erases an entry unconditionally — live **or** expired — returning
    /// whether one was physically dropped. This is the unlearning hook: a
    /// session deleted from the click log must also vanish from the
    /// evolving-session state, even if its TTL already lapsed (an expired
    /// entry still holds the data until it is reclaimed). The default
    /// delegates to [`SessionStore::remove`], which only sees live entries;
    /// implementations holding expired data past its deadline should
    /// override it with a physical erase.
    fn forget(&self, key: &K) -> bool {
        self.remove(key).is_some()
    }

    /// Snapshots up to `cap` live entries for ownership handoff: when the
    /// cluster remaps a member's sessions to new owners, the old owner
    /// exports them here, the new owners import them, and the old owner
    /// then [`SessionStore::forget`]s them. Expired entries must never be
    /// exported. The default exports nothing — an implementation without
    /// the override degrades handoff to "sessions restart from empty",
    /// which is the same contract a TTL expiry already imposes on clients.
    fn export_live(&self, cap: usize) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let _ = cap;
        Vec::new()
    }

    /// `true` if a live entry exists. Must not refresh the TTL.
    fn contains(&self, key: &K) -> bool;

    /// Eagerly reclaims expired entries; returns how many were evicted.
    fn evict_expired(&self) -> usize;

    /// Number of live (non-expired) entries.
    fn live_entries(&self) -> usize;

    /// Drops every entry, live or expired.
    fn clear(&self);

    /// Cumulative `(lazily expired, swept)` reclamation counts, for
    /// observability. Implementations that do not track reclamation may
    /// keep the default `(0, 0)`.
    fn expiry_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl<K, V, C> SessionStore<K, V> for TtlStore<K, V, C>
where
    K: Hash + Eq + Send,
    V: Send,
    C: Clock + Send + Sync,
{
    fn update_or_insert<T>(
        &self,
        key: K,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> T,
    ) -> T {
        TtlStore::update_or_insert(self, key, default, f)
    }

    fn with_value<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        TtlStore::with_value(self, key, f)
    }

    fn remove(&self, key: &K) -> Option<V> {
        TtlStore::remove(self, key)
    }

    fn forget(&self, key: &K) -> bool {
        TtlStore::forget(self, key)
    }

    fn export_live(&self, cap: usize) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        TtlStore::export_live(self, cap)
    }

    fn contains(&self, key: &K) -> bool {
        TtlStore::contains(self, key)
    }

    fn evict_expired(&self) -> usize {
        TtlStore::evict_expired(self)
    }

    fn live_entries(&self) -> usize {
        self.stats().live_entries
    }

    fn clear(&self) {
        TtlStore::clear(self)
    }

    fn expiry_counts(&self) -> (u64, u64) {
        TtlStore::expiry_counts(self)
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod conformance {
    //! A reusable conformance suite: any [`SessionStore`] implementation
    //! paired with a manual clock must pass `check_conformance`. Run here
    //! against the default [`TtlStore`].

    use super::*;
    use crate::clock::ManualClock;
    use crate::store::StoreConfig;

    const TTL_MS: u64 = 1_000;

    /// Drives the full TTL contract against `store`, where advancing
    /// `clock` is the only source of time. `touch_on_read` states the
    /// store's read-touch policy so the suite can assert the matching
    /// behaviour.
    fn check_conformance<S: SessionStore<u64, Vec<u64>>>(
        store: &S,
        clock: &ManualClock,
        touch_on_read: bool,
    ) {
        // Absent keys miss everywhere.
        assert!(!store.contains(&1));
        assert_eq!(store.with_value(&1, Vec::len), None);
        assert_eq!(store.remove(&1), None);
        assert_eq!(store.live_entries(), 0);

        // update_or_insert starts from the default and returns f's result.
        let len = store.update_or_insert(1, Vec::new, |v| {
            v.push(10);
            v.len()
        });
        assert_eq!(len, 1);
        assert!(store.contains(&1));
        assert_eq!(store.with_value(&1, |v| v.clone()), Some(vec![10]));

        // A second update sees the prior state.
        store.update_or_insert(1, Vec::new, |v| v.push(11));
        assert_eq!(store.with_value(&1, |v| v.clone()), Some(vec![10, 11]));
        assert_eq!(store.live_entries(), 1);

        // Expiry makes the entry behave as absent...
        clock.advance_ms(TTL_MS + 1);
        assert!(!store.contains(&1));
        assert_eq!(store.with_value(&1, Vec::len), None);
        assert_eq!(store.remove(&1), None);
        assert_eq!(store.live_entries(), 0);

        // ...and a write restarts from the default, not the stale value.
        store.update_or_insert(1, Vec::new, |v| v.push(20));
        assert_eq!(store.with_value(&1, |v| v.clone()), Some(vec![20]));

        // Writes refresh the TTL: two writes TTL-1 apart keep it alive past
        // the first deadline.
        clock.advance_ms(TTL_MS - 1);
        store.update_or_insert(1, Vec::new, |v| v.push(21));
        clock.advance_ms(TTL_MS - 1);
        assert!(store.contains(&1), "last write restarted the TTL");

        // Read-touch policy.
        assert!(store.with_value(&1, |_| ()).is_some());
        clock.advance_ms(2);
        assert_eq!(
            store.contains(&1),
            touch_on_read,
            "read {} have refreshed the TTL",
            if touch_on_read { "must" } else { "must not" },
        );
        store.clear();

        // contains never refreshes the TTL.
        store.update_or_insert(2, Vec::new, |v| v.push(1));
        clock.advance_ms(TTL_MS - 1);
        assert!(store.contains(&2));
        clock.advance_ms(2);
        assert!(!store.contains(&2), "contains must not have touched the entry");

        // remove returns the live value exactly once.
        store.update_or_insert(3, Vec::new, |v| v.push(30));
        assert_eq!(store.remove(&3), Some(vec![30]));
        assert_eq!(store.remove(&3), None);

        // forget erases unconditionally: live entries, then nothing, and —
        // for stores that keep expired data until reclamation — expired
        // entries too.
        store.update_or_insert(4, Vec::new, |v| v.push(40));
        assert!(store.forget(&4));
        assert!(!store.forget(&4));
        store.update_or_insert(5, Vec::new, |v| v.push(50));
        clock.advance_ms(TTL_MS + 1);
        store.forget(&5); // must not panic; erasure of expired data is best-effort per impl
        assert!(!store.contains(&5));

        // Eager eviction reclaims exactly the expired entries.
        store.clear();
        for k in 0..10 {
            store.update_or_insert(k, Vec::new, |v| v.push(k));
        }
        clock.advance_ms(TTL_MS / 2);
        for k in 10..15 {
            store.update_or_insert(k, Vec::new, |v| v.push(k));
        }
        clock.advance_ms(TTL_MS / 2 + 1); // first 10 expired, last 5 live
        assert_eq!(store.evict_expired(), 10);
        assert_eq!(store.live_entries(), 5);
        assert_eq!(store.evict_expired(), 0, "nothing left to evict");

        store.clear();
        assert_eq!(store.live_entries(), 0);
    }

    fn ttl_store(touch_on_read: bool) -> (TtlStore<u64, Vec<u64>, ManualClock>, ManualClock) {
        let clock = ManualClock::new();
        let config = StoreConfig { shards: 2, ttl_ms: TTL_MS, touch_on_read };
        (TtlStore::with_clock(config, clock.clone()), clock)
    }

    #[test]
    fn ttl_store_conforms_with_read_touch() {
        let (store, clock) = ttl_store(true);
        check_conformance(&store, &clock, true);
    }

    #[test]
    fn ttl_store_conforms_without_read_touch() {
        let (store, clock) = ttl_store(false);
        check_conformance(&store, &clock, false);
    }

    #[test]
    fn trait_is_usable_generically() {
        fn total_len<S: SessionStore<u64, Vec<u64>>>(store: &S, keys: &[u64]) -> usize {
            keys.iter().filter_map(|k| store.with_value(k, Vec::len)).sum()
        }
        let (store, _clock) = ttl_store(true);
        store.update_or_insert(1, Vec::new, |v| v.extend([1, 2]));
        store.update_or_insert(2, Vec::new, |v| v.push(3));
        assert_eq!(total_len(&store, &[1, 2, 3]), 3);
    }
}
