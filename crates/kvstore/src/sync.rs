//! Facade over the concurrency primitives used by the TTL store.
//!
//! [`crate::store`] takes its shard mutexes from here instead of
//! `parking_lot` directly (enforced by the `xtask` lint): normal builds get
//! the real lock at zero cost, `--features loom` builds get the
//! model-checker shim so store operations can be explored schedule-by-
//! schedule inside `loom::model`.

#[cfg(feature = "loom")]
pub use loom::sync::{Arc, Mutex, MutexGuard};

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Mutex, MutexGuard};
#[cfg(not(feature = "loom"))]
pub use std::sync::Arc;
