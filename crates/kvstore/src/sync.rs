//! Facade over the concurrency primitives used by the TTL store.
//!
//! [`crate::store`] takes its shard mutexes and expiry counters from here
//! instead of `parking_lot`/`std::sync` directly (enforced by the `xtask`
//! lint): normal builds get the real primitives at zero cost, `--features
//! loom` builds get the model-checker shims so store operations can be
//! explored schedule-by-schedule inside `loom::model`.

#[cfg(feature = "loom")]
pub use loom::sync::{Arc, Mutex, MutexGuard};

/// Atomic types for the store's expiry/eviction counters.
#[cfg(feature = "loom")]
pub mod atomic {
    pub use loom::sync::atomic::{AtomicU64, Ordering};
}

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Mutex, MutexGuard};
#[cfg(not(feature = "loom"))]
pub use std::sync::Arc;

/// Atomic types for the store's expiry/eviction counters.
#[cfg(not(feature = "loom"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}
