//! # serenade-kvstore — sharded in-memory TTL key-value store
//!
//! Serenade colocates the evolving user sessions with the recommendation
//! requests: every serving machine keeps its partition of the session state
//! in a machine-local key-value store (the paper uses RocksDB) so that
//! session reads and writes never cross the network (Section 4.2). Sessions
//! are short-lived — the paper configures a 30-minute inactivity TTL.
//!
//! This crate provides that substrate: a sharded, mutex-striped hash store
//! with per-entry TTL, lazy expiry on access plus an explicit sweep, and an
//! injectable clock so TTL behaviour is deterministically testable. The
//! microbenchmark of Section 4.2 (10M operations; read p99 ≈ 5µs, write p99
//! ≈ 18µs) is reproduced in `serenade-bench`.

#![warn(missing_docs)]

pub mod clock;
pub mod session;
pub mod store;
pub mod sync;

pub use clock::{Clock, ManualClock, SystemClock};
pub use session::SessionStore;
pub use store::{StoreConfig, StoreStats, TtlStore};
