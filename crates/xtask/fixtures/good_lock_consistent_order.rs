// Nested acquisition is fine when every path agrees on the order: the
// acquisition graph has an a->b edge but no cycle.
// path: crates/app/src/locks.rs
// expect: none
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn one(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn two(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga * *gb
    }
}
