// The worker-pool handoff pattern: the tick pushes into a mutex-guarded
// queue, vetted by an allowlist entry with a justification — mirroring the
// live workspace's DispatchQueue::push entry.
// path: crates/app/src/evloop.rs
// root: crates/app/src/evloop.rs :: EventLoop::run
// allow: reactor-blocking :: crates/app/src/evloop.rs :: Queue::push :: `.lock(` :: O(1) enqueue under a short critical section
// expect: none
use std::sync::Mutex;

pub struct Queue {
    inner: Mutex<Vec<u64>>,
}

impl Queue {
    fn push(&self, v: u64) {
        let mut g = self.inner.lock().unwrap();
        g.push(v);
    }
}

pub struct EventLoop {
    q: Queue,
}

impl EventLoop {
    pub fn run(&self) {
        self.q.push(1);
    }
}
