// Seeded deadlock: `forward` and `backward` acquire the same two mutexes in
// opposite orders, so two threads can each hold one and wait on the other.
// path: crates/app/src/locks.rs
// expect: lock-order-cycle
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
