// Seeded deadlock, one call hop deep: `ingest` holds `front` while a callee
// takes `back`; `flush` holds `back` while a callee takes `front`. The
// cycle only exists through the call graph.
// path: crates/app/src/pipeline.rs
// expect: lock-order-cycle
use std::sync::Mutex;

pub struct Sys {
    front: Mutex<Vec<u32>>,
    back: Mutex<Vec<u32>>,
}

impl Sys {
    fn drain_back(&self) {
        let g = self.back.lock().unwrap();
        drop(g);
    }

    fn drain_front(&self) {
        let g = self.front.lock().unwrap();
        drop(g);
    }

    pub fn ingest(&self) {
        let g = self.front.lock().unwrap();
        self.drain_back();
        drop(g);
    }

    pub fn flush(&self) {
        let g = self.back.lock().unwrap();
        self.drain_front();
        drop(g);
    }
}
