// A tick that only computes: reachable functions contain no locks and no
// blocking operations.
// path: crates/app/src/evloop.rs
// root: crates/app/src/evloop.rs :: EventLoop::run
// expect: none
pub struct EventLoop {
    acc: u64,
}

impl EventLoop {
    fn compute(&self) -> u64 {
        self.acc.wrapping_mul(31).wrapping_add(1)
    }

    pub fn run(&mut self) {
        self.acc = self.compute();
    }
}
