// The blocking call hides one hop below the lock holder: `reap` holds
// `jobs` while `backoff` sleeps.
// path: crates/app/src/pool.rs
// expect: lock-held-across-blocking
use std::sync::Mutex;

pub struct Pool {
    jobs: Mutex<Vec<u64>>,
}

impl Pool {
    fn backoff(&self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    pub fn reap(&self) {
        let g = self.jobs.lock().unwrap();
        self.backoff();
        drop(g);
    }
}
