// Allowlist hygiene: a malformed entry and an entry that waives nothing
// are both findings, so the exception list can only shrink.
// path: crates/app/src/lib.rs
// allow: reactor-blocking :: crates/app/src/lib.rs :: Nope::missing :: `.lock(` :: waives nothing, must be reported stale
// allow: this line is missing its separators
// expect: analyze-allowlist-stale
// expect: analyze-allowlist-format
pub fn noop() {}
