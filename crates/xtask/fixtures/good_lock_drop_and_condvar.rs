// Two legitimate patterns: a guard explicitly dropped before the blocking
// call, and a condvar wait (which releases the mutex while parked).
// path: crates/app/src/queue.rs
// expect: none
use std::sync::{Condvar, Mutex};

pub struct Queue {
    inner: Mutex<Vec<u64>>,
    cond: Condvar,
}

impl Queue {
    pub fn pop_wait(&self) -> Option<u64> {
        let g = self.inner.lock().unwrap();
        let mut g = self.cond.wait(g).unwrap();
        g.pop()
    }

    pub fn sweep(&self) {
        let mut g = self.inner.lock().unwrap();
        g.clear();
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
