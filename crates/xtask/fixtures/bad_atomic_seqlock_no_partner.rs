// Mis-ordered seqlock: the writer publishes `data` with a Relaxed store,
// so the reader's Acquire load synchronises with nothing — the classic
// "annotated but still wrong" shape the partner rule exists for.
// path: crates/app/src/seqlock.rs
// expect: atomic-acquire-partner
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    seq: AtomicU64,
    data: AtomicU64,
}

impl Cell {
    pub fn write(&self, v: u64) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        // ORDERING: (wrong) relaxed publish — the seeded bug under test.
        self.data.store(v, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    pub fn read(&self) -> u64 {
        // ORDERING: claims to pair with the writer's `data` store, but that
        // store is Relaxed: no Release partner exists.
        self.data.load(Ordering::Acquire)
    }
}
