// The live ingest write-hook pattern: `submit` appends to a bounded
// mutex-guarded queue and notifies the publisher without waiting for the
// publish; the only lock on the path is vetted by an allowlist entry —
// mirroring the workspace's `SharedState::lock_pending` entry.
// path: crates/app/src/ingest.rs
// root: crates/app/src/ingest.rs :: IngestHook::submit
// allow: reactor-blocking :: crates/app/src/ingest.rs :: IngestHook::submit :: `.lock(` :: bounded O(batch) append under a short critical section; the publisher never blocks while holding it
// expect: none
use std::sync::{Condvar, Mutex};

pub struct IngestHook {
    pending: Mutex<Vec<u64>>,
    wake: Condvar,
    cap: usize,
}

impl IngestHook {
    pub fn submit(&self, item: u64) -> bool {
        {
            let mut g = self.pending.lock().unwrap();
            if g.len() >= self.cap {
                return false;
            }
            g.push(item);
        }
        self.wake.notify_all();
        true
    }
}
