// The event-loop tick sleeps directly.
// path: crates/app/src/evloop.rs
// root: crates/app/src/evloop.rs :: EventLoop::run
// expect: reactor-blocking
pub struct EventLoop {
    live: bool,
}

impl EventLoop {
    pub fn run(&self) {
        while self.live {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
