// SeqCst everywhere: the default needs no justification comments.
// path: crates/app/src/flag.rs
// expect: none
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Flag {
    ready: AtomicU64,
}

impl Flag {
    pub fn raise(&self) {
        self.ready.store(1, Ordering::SeqCst);
    }

    pub fn is_raised(&self) -> bool {
        self.ready.load(Ordering::SeqCst) == 1
    }
}
