// A non-SeqCst ordering with no `// ORDERING:` comment.
// path: crates/app/src/metrics.rs
// expect: atomic-ordering-comment
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
