// The ingest write hook blocks a request worker: `submit` waits for the
// publisher to acknowledge the batch instead of enqueueing and returning.
// Mirrors the live workspace's `IngestPipeline::submit` root — the write
// hook runs on the read path and must never wait on the publisher.
// path: crates/app/src/ingest.rs
// root: crates/app/src/ingest.rs :: IngestHook::submit
// expect: reactor-blocking
use std::sync::{Condvar, Mutex};

pub struct IngestHook {
    pending: Mutex<Vec<u64>>,
    published: Condvar,
}

impl IngestHook {
    pub fn submit(&self, item: u64) {
        let mut g = self.pending.lock().unwrap();
        g.push(item);
        // Waiting for the publish turns every writer into a synchronous
        // caller — the defect this fixture pins.
        let _g = self.published.wait(g).unwrap();
    }
}
