// An ORDERING comment separated from its statement by a blank line does
// not count: attachment must be adjacent, same as the SAFETY rule.
// path: crates/app/src/ticket.rs
// expect: atomic-ordering-comment
use std::sync::atomic::{AtomicU64, Ordering};

pub fn tick(c: &AtomicU64) -> u64 {
    // ORDERING: ticket counter, partner: none.

    c.fetch_add(1, Ordering::Relaxed)
}
