// The configured event-loop root does not exist: with require_roots set
// (as in the live workspace) that is itself a finding, so a renamed or
// deleted reactor cannot silently disable the rule.
// path: crates/app/src/evloop.rs
// root: crates/app/src/evloop.rs :: EventLoop::run
// expect: reactor-blocking
pub fn unrelated() -> u32 {
    7
}
