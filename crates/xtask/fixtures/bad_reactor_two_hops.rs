// The blocking call is smuggled two resolved call hops below the tick:
// run -> forward -> Queue::push_blocking, which takes a mutex and sleeps.
// path: crates/app/src/evloop.rs
// root: crates/app/src/evloop.rs :: EventLoop::run
// expect: reactor-blocking
use std::sync::Mutex;

pub struct Queue {
    inner: Mutex<Vec<u64>>,
}

impl Queue {
    fn push_blocking(&self, v: u64) {
        let mut g = self.inner.lock().unwrap();
        g.push(v);
        drop(g);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

pub struct EventLoop {
    q: Queue,
}

impl EventLoop {
    fn forward(&self, v: u64) {
        self.q.push_blocking(v);
    }

    pub fn run(&self) {
        self.forward(1);
    }
}
