// A guard held across a sleep convoys every thread that needs the lock.
// path: crates/app/src/worker.rs
// expect: lock-held-across-blocking
use std::sync::Mutex;

pub struct Worker {
    state: Mutex<u64>,
}

impl Worker {
    pub fn drain(&self) {
        let mut g = self.state.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        *g += 1;
    }
}
