// A router proxy that holds the connection-pool mutex across the upstream
// socket write: one slow (or dead) upstream now stalls every request thread
// that needs *any* pooled connection — exactly the failover hazard the
// cluster's per-entry pools exist to avoid.
// path: crates/app/src/proxy.rs
// expect: lock-held-across-blocking
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Proxy {
    pool: Mutex<Vec<TcpStream>>,
}

impl Proxy {
    pub fn forward(&self, body: &[u8]) -> std::io::Result<()> {
        let mut g = self.pool.lock().unwrap();
        let stream = g.last_mut().unwrap();
        stream.write_all(body)?;
        drop(g);
        Ok(())
    }
}
