// Weak orderings done right: every non-SeqCst site carries an ORDERING
// comment and the Acquire loads have Release store partners on the same
// fields.
// path: crates/app/src/publish.rs
// expect: none
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Publisher {
    data: AtomicU64,
    ready: AtomicU64,
}

impl Publisher {
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Release); // ORDERING: pairs with consume's Acquire load of data
        self.ready.store(1, Ordering::Release); // ORDERING: pairs with consume's Acquire load of ready
    }

    pub fn consume(&self) -> Option<u64> {
        // ORDERING: pairs with publish's Release store of ready.
        if self.ready.load(Ordering::Acquire) == 1 {
            // ORDERING: pairs with publish's Release store of data.
            return Some(self.data.load(Ordering::Acquire));
        }
        None
    }
}
