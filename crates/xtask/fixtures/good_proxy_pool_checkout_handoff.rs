// The bounded checkout/check-in handoff the router's upstream pools use:
// the pool mutex guards only the O(1) pop and push — the connection is
// moved out, the guard dropped, and the blocking upstream write happens
// with no lock held. A stalled upstream costs one connection, not the pool.
// path: crates/app/src/proxy.rs
// expect: none
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Proxy {
    pool: Mutex<Vec<TcpStream>>,
    cap: usize,
}

impl Proxy {
    pub fn forward(&self, body: &[u8]) -> std::io::Result<()> {
        let mut g = self.pool.lock().unwrap();
        let conn = g.pop();
        drop(g);
        let mut conn = match conn {
            Some(c) => c,
            None => TcpStream::connect("127.0.0.1:9")?,
        };
        conn.write_all(body)?;
        let mut g = self.pool.lock().unwrap();
        if g.len() < self.cap {
            g.push(conn);
        }
        drop(g);
        Ok(())
    }
}
