//! `cargo run -p xtask -- <task>` — workspace checks from the CLI.
//!
//! * `lint` — the line-lexer hygiene rules (R1–R6).
//! * `analyze [--json] [--baseline FILE]` — the concurrency analyzer
//!   (lock-order cycles, atomic-ordering audit, reactor-blocking
//!   reachability). Exits non-zero on any finding; `--baseline` also
//!   diffs the JSON output against a committed baseline file.
//! * `bench-check` — the unified performance gate: every non-criterion
//!   bench harness with a committed `BENCH_*.json` artefact is run in
//!   `--check` mode (fresh measurement diffed against its baseline), and
//!   the first regression fails the pass.
//!
//! Both passes are wired into tier-1 `cargo test` via
//! `crates/xtask/tests/`; this binary exists for quick local runs and for
//! `scripts/check.sh`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze(args.collect()),
        Some("bench-check") => bench_check(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint, analyze, bench-check");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint|analyze|bench-check> [--json] [--baseline FILE]"
            );
            ExitCode::FAILURE
        }
    }
}

/// The gated bench harnesses: `(bench target, committed artefact, what the
/// gate holds)`. Each runs in `--check` mode, measuring fresh and failing
/// on regression against the artefact committed at the workspace root.
const BENCH_GATES: &[(&str, &str, &str)] = &[
    ("kernel_hot_path", "BENCH_kernel.json", "depersonalised kernel p50 (>10% fails)"),
    ("heap_arity", "BENCH_heap.json", "octonary replace-root p50 (>10% fails)"),
    ("server_batch", "BENCH_server.json", "coalesced-batch speedup + p99 (>10% fails)"),
    ("ingest_publish", "BENCH_ingest.json", "publish-to-visible p99 under churn (>10% fails)"),
    ("cluster_scale", "BENCH_cluster.json", "4-node rate floor + p99 (>2x fails)"),
];

fn bench_check() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    for (bench, artefact, what) in BENCH_GATES {
        if !root.join(artefact).is_file() {
            eprintln!("xtask bench-check: missing committed {artefact} (run the `{bench}` bench without --check and commit its artefact)");
            return ExitCode::FAILURE;
        }
        println!("==> bench gate `{bench}`: {what}, baseline {artefact}");
        let status = std::process::Command::new(env!("CARGO"))
            .current_dir(&root)
            .args(["bench", "-q", "-p", "serenade-bench", "--bench", bench, "--", "--check"])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask bench-check: `{bench}` gate failed ({s})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench-check: could not run cargo bench for `{bench}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask bench-check: all {} gates passed", BENCH_GATES.len());
    ExitCode::SUCCESS
}

fn lint() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    match xtask::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn analyze(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask analyze: --baseline needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    let findings = match xtask::analyze::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", xtask::analyze::render_json(&findings));
    } else if findings.is_empty() {
        println!("xtask analyze: clean");
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask analyze: {} finding(s)", findings.len());
    }
    let mut ok = findings.is_empty();
    if let Some(path) = baseline {
        let resolved = if path.is_absolute() { path } else { root.join(path) };
        match std::fs::read_to_string(&resolved) {
            Ok(content) => {
                if let Err(diff) = xtask::analyze::check_baseline(&findings, &content) {
                    eprintln!("{diff}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("xtask analyze: read baseline {}: {e}", resolved.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the manifest dir (under cargo) or cwd to the `[workspace]`
/// manifest.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}
