//! `cargo run -p xtask -- <task>` — workspace checks from the CLI.
//!
//! * `lint` — the line-lexer hygiene rules (R1–R6).
//! * `analyze [--json] [--baseline FILE]` — the concurrency analyzer
//!   (lock-order cycles, atomic-ordering audit, reactor-blocking
//!   reachability). Exits non-zero on any finding; `--baseline` also
//!   diffs the JSON output against a committed baseline file.
//!
//! Both passes are wired into tier-1 `cargo test` via
//! `crates/xtask/tests/`; this binary exists for quick local runs and for
//! `scripts/check.sh`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze(args.collect()),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint, analyze");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <lint|analyze> [--json] [--baseline FILE]");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    match xtask::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn analyze(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask analyze: --baseline needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    let findings = match xtask::analyze::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", xtask::analyze::render_json(&findings));
    } else if findings.is_empty() {
        println!("xtask analyze: clean");
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask analyze: {} finding(s)", findings.len());
    }
    let mut ok = findings.is_empty();
    if let Some(path) = baseline {
        let resolved = if path.is_absolute() { path } else { root.join(path) };
        match std::fs::read_to_string(&resolved) {
            Ok(content) => {
                if let Err(diff) = xtask::analyze::check_baseline(&findings, &content) {
                    eprintln!("{diff}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("xtask analyze: read baseline {}: {e}", resolved.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the manifest dir (under cargo) or cwd to the `[workspace]`
/// manifest.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}
