//! `cargo run -p xtask -- lint` — run the workspace lint pass from the CLI.
//!
//! The same pass is wired into tier-1 `cargo test` via
//! `crates/xtask/tests/workspace_lint.rs`; this binary exists for quick
//! local runs and for `scripts/check.sh`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root Cargo.toml");
            return ExitCode::FAILURE;
        }
    };
    match xtask::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Walks up from the manifest dir (under cargo) or cwd to the `[workspace]`
/// manifest.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}
