//! The analyzer's rule passes over function facts + call graph.
//!
//! * **lock-order-cycle** — builds the static lock-acquisition graph
//!   (node = crate-qualified lock class, edge = "acquired while holding",
//!   direct or through resolved calls) and reports every cycle with the
//!   acquisition chains of each edge. A cycle means two executions can
//!   interleave into a deadlock.
//! * **lock-held-across-blocking** — a live guard across a sleep, thread
//!   join, channel recv, or blocking I/O call (directly or transitively
//!   through resolved calls) convoys every other thread needing that lock.
//!   Condvar waits are exempt: they release the mutex while parked.
//! * **atomic-ordering-comment** — every non-SeqCst `Ordering::` use must
//!   carry an `// ORDERING:` comment naming its partner operation (the
//!   SeqCst-audit discipline from `serving::handle`, mechanised).
//! * **atomic-acquire-partner** — an `Acquire` load/RMW synchronises with
//!   nothing unless some `Release`-or-stronger store/RMW exists on the
//!   same atomic field in the same crate.
//! * **reactor-blocking** — no function reachable from the reactor event
//!   loop may block; the worker-pool handoff is allowlisted with a
//!   justification (see `analyze_allow.txt`).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::callgraph::{CallGraph, FnId};
use crate::facts::{AtomicOp, BlockKind, FileFacts};

/// One analyzer finding. Unlike the lint's `Violation`, findings carry the
/// function and (for graph rules) the acquisition/call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id.
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    /// Qualified function name (empty for module-level findings).
    pub function: String,
    pub message: String,
    /// Call/acquisition chain for graph-derived findings.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)?;
        for hop in &self.chain {
            write!(f, "\n    {hop}")?;
        }
        Ok(())
    }
}

/// Configuration for one analysis run (fixtures override the defaults).
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// `(file path, qualified fn)` roots of the reactor-blocking rule.
    pub reactor_roots: Vec<(String, String)>,
    /// Missing roots are an error in the live workspace (the event loop
    /// must exist) but fixtures without a reactor shouldn't fail.
    pub require_roots: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self {
            reactor_roots: vec![
                (
                    String::from("crates/serving/src/server/reactor.rs"),
                    String::from("Reactor::run"),
                ),
                // The ingest write hook runs on request workers: anything
                // blocking reachable from `submit` stalls the read path.
                (
                    String::from("crates/serving/src/ingest/pipeline.rs"),
                    String::from("IngestPipeline::submit"),
                ),
                // The router's shard classifier runs inside the reactor's
                // dispatch loop for every proxied request: it must stay a
                // lock-free snapshot read (membership load + rendezvous
                // hash), never touching the admin mutex or upstream pools.
                (
                    String::from("crates/serving/src/routerd.rs"),
                    String::from("RouterCore::shard_for"),
                ),
            ],
            require_roots: true,
        }
    }
}

/// Runs every rule family and returns the raw findings (allowlist is
/// applied by the caller), sorted by (rule, file, line).
pub fn run_rules(files: &[FileFacts], config: &AnalyzeConfig) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let mut findings = Vec::new();
    findings.extend(atomic_rules(files));
    findings.extend(lock_order_rules(&graph));
    findings.extend(reactor_blocking_rule(&graph, config));
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    findings.dedup();
    findings
}

// ---------------------------------------------------------------------------
// Atomic-ordering audit
// ---------------------------------------------------------------------------

fn atomic_rules(files: &[FileFacts]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Per-crate: does `field` have a Release-or-stronger store/RMW?
    let mut release_stores: HashSet<(String, String)> = HashSet::new();
    for file in files {
        let sites = file
            .fns
            .iter()
            .filter(|f| !f.is_test)
            .flat_map(|f| f.atomics.iter())
            .chain(file.module_atomics.iter());
        for site in sites {
            let writes = matches!(site.op, AtomicOp::Store | AtomicOp::Rmw);
            let releases = matches!(site.ordering.as_str(), "Release" | "AcqRel" | "SeqCst");
            if writes && releases && !site.field.is_empty() {
                release_stores.insert((file.crate_name.clone(), site.field.clone()));
            }
        }
    }
    for file in files {
        let fn_sites = file
            .fns
            .iter()
            .filter(|f| !f.is_test)
            .flat_map(|f| f.atomics.iter().map(move |s| (f.qual.clone(), s)));
        let module_sites = file.module_atomics.iter().map(|s| (String::new(), s));
        for (function, site) in fn_sites.chain(module_sites) {
            if site.ordering != "SeqCst" && !site.has_ordering_comment {
                findings.push(Finding {
                    rule: "atomic-ordering-comment",
                    file: file.path.clone(),
                    line: site.line,
                    function: function.clone(),
                    message: format!(
                        "`Ordering::{}` without an `// ORDERING:` comment naming its \
                         partner operation (SeqCst needs no comment; everything weaker \
                         must justify itself)",
                        site.ordering
                    ),
                    chain: Vec::new(),
                });
            }
            let acquire_read = site.ordering == "Acquire"
                && matches!(site.op, AtomicOp::Load | AtomicOp::Rmw);
            if acquire_read
                && !site.field.is_empty()
                && !release_stores.contains(&(file.crate_name.clone(), site.field.clone()))
            {
                findings.push(Finding {
                    rule: "atomic-acquire-partner",
                    file: file.path.clone(),
                    line: site.line,
                    function,
                    message: format!(
                        "`Acquire` read of `{}` has no Release-or-stronger store/RMW \
                         partner on the same field in crate `{}`: it synchronises with \
                         nothing",
                        site.field, file.crate_name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Lock-order rules
// ---------------------------------------------------------------------------

/// A lock class, qualified by crate so same-named fields in different
/// crates never merge.
fn qualify(crate_name: &str, class: &str) -> String {
    format!("{crate_name}/{class}")
}

/// Per-function transitive summaries: which lock classes a call to `f` may
/// acquire, and which blocking operations it may perform — each with one
/// representative chain.
struct Summaries<'a> {
    graph: &'a CallGraph<'a>,
    acquires: HashMap<FnId, Vec<(String, Vec<String>)>>,
    blocks: HashMap<FnId, Vec<(BlockKind, Vec<String>)>>,
}

impl<'a> Summaries<'a> {
    fn build(graph: &'a CallGraph<'a>) -> Self {
        let mut s = Summaries { graph, acquires: HashMap::new(), blocks: HashMap::new() };
        let ids: Vec<FnId> = graph.fn_ids.clone();
        for id in ids {
            let mut visiting = HashSet::new();
            s.summarise(id, &mut visiting);
        }
        s
    }

    fn summarise(&mut self, id: FnId, visiting: &mut HashSet<FnId>) {
        if self.acquires.contains_key(&id) || !visiting.insert(id) {
            return;
        }
        let facts = self.graph.fn_facts(id);
        let file = self.graph.file_of(id);
        let mut acq: Vec<(String, Vec<String>)> = facts
            .locks
            .iter()
            .map(|l| {
                (
                    qualify(&file.crate_name, &l.class),
                    vec![format!("{}:{} {} locks `{}`", file.path, l.line, facts.qual, l.class)],
                )
            })
            .collect();
        let mut blk: Vec<(BlockKind, Vec<String>)> = facts
            .blocking
            .iter()
            .filter(|b| !matches!(b.kind, BlockKind::CondvarWait))
            .map(|b| {
                (
                    b.kind,
                    vec![format!(
                        "{}:{} {} performs {} (`{}`)",
                        file.path,
                        b.line,
                        facts.qual,
                        b.kind.describe(),
                        b.needle
                    )],
                )
            })
            .collect();
        for call in &facts.calls {
            for target in self.graph.resolve(id, &call.callee) {
                if target == id || self.graph.fn_facts(target).is_test {
                    continue;
                }
                self.summarise(target, visiting);
                let hop = format!("{}:{} {} calls …", file.path, call.line, facts.qual);
                if let Some(child) = self.acquires.get(&target) {
                    for (class, chain) in child.clone() {
                        if !acq.iter().any(|(c, _)| *c == class) && chain.len() < 12 {
                            let mut full = vec![hop.clone()];
                            full.extend(chain);
                            acq.push((class, full));
                        }
                    }
                }
                if let Some(child) = self.blocks.get(&target) {
                    for (kind, chain) in child.clone() {
                        if !blk.iter().any(|(k, _)| *k == kind) && chain.len() < 12 {
                            let mut full = vec![hop.clone()];
                            full.extend(chain);
                            blk.push((kind, full));
                        }
                    }
                }
            }
        }
        visiting.remove(&id);
        self.acquires.insert(id, acq);
        self.blocks.insert(id, blk);
    }
}

fn lock_order_rules(graph: &CallGraph<'_>) -> Vec<Finding> {
    let summaries = Summaries::build(graph);
    let mut findings = Vec::new();

    // Edge map: held class → acquired class → (file, line, fn, chain).
    #[allow(clippy::type_complexity)]
    let mut edges: BTreeMap<String, BTreeMap<String, (String, usize, String, Vec<String>)>> =
        BTreeMap::new();

    for &id in &graph.fn_ids {
        let facts = graph.fn_facts(id);
        if facts.is_test {
            continue;
        }
        let file = graph.file_of(id);
        for e in &facts.held_edges {
            let held = qualify(&file.crate_name, &e.held);
            let acq = qualify(&file.crate_name, &e.acquired);
            edges.entry(held.clone()).or_default().entry(acq).or_insert_with(|| {
                (
                    file.path.clone(),
                    e.line,
                    facts.qual.clone(),
                    vec![
                        format!(
                            "{}:{} {} holds `{}` (acquired line {})",
                            file.path, e.line, facts.qual, e.held, e.held_line
                        ),
                        format!(
                            "{}:{} {} acquires `{}` while holding it",
                            file.path, e.line, facts.qual, e.acquired
                        ),
                    ],
                )
            });
        }
        for hc in &facts.held_calls {
            let call = &facts.calls[hc.call];
            for target in graph.resolve(id, &call.callee) {
                if graph.fn_facts(target).is_test {
                    continue;
                }
                // Transitive lock acquisitions under a held guard.
                if let Some(acqs) = summaries.acquires.get(&target) {
                    for (class, chain) in acqs {
                        for (held_class, held_line) in &hc.held {
                            let held = qualify(&file.crate_name, held_class);
                            if held == *class {
                                continue; // self-edge via passthrough call
                            }
                            edges
                                .entry(held)
                                .or_default()
                                .entry(class.clone())
                                .or_insert_with(|| {
                                    let mut full = vec![format!(
                                        "{}:{} {} holds `{}` (acquired line {})",
                                        file.path,
                                        call.line,
                                        facts.qual,
                                        held_class,
                                        held_line
                                    )];
                                    full.extend(chain.clone());
                                    (file.path.clone(), call.line, facts.qual.clone(), full)
                                });
                        }
                    }
                }
                // Transitive blocking under a held guard.
                if let Some(blks) = summaries.blocks.get(&target) {
                    if let Some((kind, chain)) = blks.first() {
                        for (held_class, held_line) in &hc.held {
                            let mut full = vec![format!(
                                "{}:{} {} holds `{}` (acquired line {})",
                                file.path, call.line, facts.qual, held_class, held_line
                            )];
                            full.extend(chain.clone());
                            findings.push(Finding {
                                rule: "lock-held-across-blocking",
                                file: file.path.clone(),
                                line: call.line,
                                function: facts.qual.clone(),
                                message: format!(
                                    "guard `{}` held across a call that performs {}",
                                    held_class,
                                    kind.describe()
                                ),
                                chain: full,
                            });
                        }
                    }
                }
            }
        }
        // Direct blocking under a held guard.
        for hb in &facts.held_blocking {
            let site = &facts.blocking[hb.site];
            findings.push(Finding {
                rule: "lock-held-across-blocking",
                file: file.path.clone(),
                line: site.line,
                function: facts.qual.clone(),
                message: format!(
                    "guard `{}` (acquired line {}) held across {} (`{}`)",
                    hb.held.0,
                    hb.held.1,
                    site.kind.describe(),
                    site.needle
                ),
                chain: Vec::new(),
            });
        }
    }

    // Cycle detection over the class graph (iterative DFS with an explicit
    // stack; back edge into the stack = cycle).
    let classes: Vec<&String> = edges.keys().collect();
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    for start in classes {
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.clone(), vec![start.clone()])];
        let mut visited: HashSet<String> = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = edges.get(&node) else {
                continue;
            };
            for next in nexts.keys() {
                if let Some(pos) = path.iter().position(|p| p == next) {
                    // Cycle: path[pos..] + next closes it.
                    let mut cycle: Vec<String> = path[pos..].to_vec();
                    // Normalise: rotate so the smallest class leads.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if !reported.insert(cycle.clone()) {
                        continue;
                    }
                    let mut chain = Vec::new();
                    let mut file = String::new();
                    let mut line = 0;
                    let mut function = String::new();
                    for i in 0..cycle.len() {
                        let from = &cycle[i];
                        let to = &cycle[(i + 1) % cycle.len()];
                        if let Some((f, l, func, c)) =
                            edges.get(from).and_then(|m| m.get(to))
                        {
                            if file.is_empty() {
                                file = f.clone();
                                line = *l;
                                function = func.clone();
                            }
                            chain.push(format!("edge `{from}` -> `{to}`:"));
                            chain.extend(c.iter().map(|h| format!("  {h}")));
                        }
                    }
                    let mut loop_desc = cycle.join("` -> `");
                    loop_desc.push_str("` -> `");
                    loop_desc.push_str(&cycle[0]);
                    findings.push(Finding {
                        rule: "lock-order-cycle",
                        file,
                        line,
                        function,
                        message: format!(
                            "lock-order cycle `{loop_desc}`: two threads taking these \
                             locks in different orders can deadlock"
                        ),
                        chain,
                    });
                } else if visited.insert(next.clone()) {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next.clone(), p));
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Reactor-blocking rule
// ---------------------------------------------------------------------------

fn reactor_blocking_rule(graph: &CallGraph<'_>, config: &AnalyzeConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots = Vec::new();
    for (path, qual) in &config.reactor_roots {
        let found = graph.lookup(path, qual);
        if found.is_empty() && config.require_roots {
            findings.push(Finding {
                rule: "reactor-blocking",
                file: path.clone(),
                line: 0,
                function: qual.clone(),
                message: format!(
                    "configured reactor root `{qual}` not found in `{path}`: the \
                     reachability rule has nothing to protect (update the root if the \
                     event loop moved)"
                ),
                chain: Vec::new(),
            });
        }
        roots.extend(found);
    }
    let preds = graph.reachable(&roots);
    let mut reached: Vec<FnId> = preds.keys().copied().collect();
    reached.sort();
    for id in reached {
        let facts = graph.fn_facts(id);
        if facts.is_test {
            continue;
        }
        let file = graph.file_of(id);
        let chain = graph.chain_to(id, &preds);
        for l in &facts.locks {
            findings.push(Finding {
                rule: "reactor-blocking",
                file: file.path.clone(),
                line: l.line,
                function: facts.qual.clone(),
                message: format!(
                    "mutex lock `{}` (`.lock(`) reachable from the reactor event loop",
                    l.class
                ),
                chain: chain.clone(),
            });
        }
        for b in &facts.blocking {
            findings.push(Finding {
                rule: "reactor-blocking",
                file: file.path.clone(),
                line: b.line,
                function: facts.qual.clone(),
                message: format!(
                    "{} (`{}`) reachable from the reactor event loop",
                    b.kind.describe(),
                    b.needle
                ),
                chain: chain.clone(),
            });
        }
    }
    findings
}
