//! Per-function fact extraction: the analyzer's front end.
//!
//! Parses one Rust source file with the shared [`crate::lexer`] into
//! [`FileFacts`]: for every function, the lock acquisitions (with guard
//! scopes), atomic operations (with their `Ordering` and whether an
//! `// ORDERING:` comment is attached), outgoing calls, and blocking
//! operations. The parser is deliberately approximate — it tracks brace
//! depth, `impl` blocks, struct field types, and statement boundaries, not
//! full Rust grammar — but it is *conservative in the right direction* for
//! each rule (see `rules.rs` for how approximations map to missed-edge vs
//! false-positive behaviour).
//!
//! Guard-scope model:
//! * `let`-bound guards (`let g = m.lock();`) live until the enclosing
//!   block closes or an explicit `drop(g)`.
//! * temporary guards (`m.lock().push(x);`) live until the end of the
//!   statement.
//! * a condvar `wait`/`wait_timeout` releases the mutex while parked, so
//!   it is exempt from "guard held across blocking call".

use crate::lexer::{find_token, is_ident, Lexer};

/// Field table of one `struct` definition: `(field name, base type)`.
/// The base type has `Arc`/`Box`/`Rc`/`Option` wrappers, references,
/// slices, and generic arguments stripped (`Arc<DispatchQueue>` →
/// `DispatchQueue`), so the call graph can walk `self.field.method()`
/// chains through it.
#[derive(Debug, Clone)]
pub struct StructFacts {
    pub name: String,
    pub fields: Vec<(String, String)>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(...)` — path segments, last one is the function.
    Path(Vec<String>),
    /// `recv.chain.f(...)` — receiver chain (`"()"`/`"[]"` mark a call or
    /// index segment the walker cannot type) plus the method name.
    Method { chain: Vec<String>, name: String },
    /// `f(...)` with no qualifier.
    Bare(String),
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    pub line: usize,
}

/// One `.lock()` acquisition. `class` is the receiver identifier (the
/// field or local the mutex lives in), qualified by crate in the rules
/// layer — an approximation of "which mutex", precise enough for a
/// workspace that names its locks.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub class: String,
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    Load,
    Store,
    /// swap / fetch_* / compare_exchange — reads and writes.
    Rmw,
    /// `const NAME: Ordering = Ordering::X` definition.
    ConstDef,
    /// A bare `Ordering::X` token with no adjacent atomic op (fence,
    /// argument passing).
    Other,
}

/// One `Ordering::X` use.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The atomic field/variable operated on (or the const name for
    /// [`AtomicOp::ConstDef`]); empty when undetermined.
    pub field: String,
    pub op: AtomicOp,
    /// `Relaxed` | `Acquire` | `Release` | `AcqRel` | `SeqCst`.
    pub ordering: String,
    pub line: usize,
    /// An `// ORDERING:` comment is attached to this statement (same line
    /// or in the comment block directly above; blank lines break the
    /// association, mirroring the SAFETY rule).
    pub has_ordering_comment: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    Sleep,
    ThreadJoin,
    ChannelRecv,
    CondvarWait,
    MutexLock,
    BlockingIo,
}

impl BlockKind {
    pub fn describe(self) -> &'static str {
        match self {
            BlockKind::Sleep => "sleep",
            BlockKind::ThreadJoin => "thread join",
            BlockKind::ChannelRecv => "channel recv",
            BlockKind::CondvarWait => "condvar wait",
            BlockKind::MutexLock => "mutex lock",
            BlockKind::BlockingIo => "blocking I/O",
        }
    }
}

/// One potentially-blocking operation (other than `.lock(`, which is
/// recorded as a [`LockSite`] and re-surfaced as `MutexLock` by the rules).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub kind: BlockKind,
    pub needle: &'static str,
    pub line: usize,
}

/// Lock acquired while another guard was live: one edge of the static
/// lock-order graph.
#[derive(Debug, Clone)]
pub struct HeldEdge {
    pub held: String,
    pub held_line: usize,
    pub acquired: String,
    pub line: usize,
}

/// A call made while ≥1 guard was live (for transitive lock-order edges
/// and transitive blocking-under-guard).
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// `(class, acquisition line)` of every live guard.
    pub held: Vec<(String, usize)>,
    /// Index into [`FnFacts::calls`].
    pub call: usize,
}

/// A blocking operation executed while a guard was live.
#[derive(Debug, Clone)]
pub struct HeldBlocking {
    pub held: (String, usize),
    /// Index into [`FnFacts::blocking`].
    pub site: usize,
}

#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// `Type::name` for methods/associated fns, plain `name` for free fns.
    pub qual: String,
    pub name: String,
    pub impl_type: Option<String>,
    pub line: usize,
    pub end_line: usize,
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub atomics: Vec<AtomicSite>,
    pub blocking: Vec<BlockingSite>,
    pub held_edges: Vec<HeldEdge>,
    pub held_calls: Vec<HeldCall>,
    pub held_blocking: Vec<HeldBlocking>,
}

#[derive(Debug, Default)]
pub struct FileFacts {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// `crates/<name>/…` → `<name>`; first path component otherwise.
    pub crate_name: String,
    pub structs: Vec<StructFacts>,
    pub fns: Vec<FnFacts>,
    /// `Ordering::` uses outside any function (module-level consts).
    pub module_atomics: Vec<AtomicSite>,
    /// Structural problems (unbalanced braces, unclosed items). A healthy
    /// workspace file must parse with none.
    pub errors: Vec<String>,
}

/// Blocking-operation needles. `.lock(` is handled separately (it is also
/// a lock acquisition). `.join()` is matched with the closing paren so
/// `str::join(sep)` never trips it.
const BLOCKING_NEEDLES: &[(&str, BlockKind)] = &[
    ("::sleep(", BlockKind::Sleep),
    (".join()", BlockKind::ThreadJoin),
    (".recv()", BlockKind::ChannelRecv),
    (".recv_timeout(", BlockKind::ChannelRecv),
    (".wait(", BlockKind::CondvarWait),
    (".wait_timeout(", BlockKind::CondvarWait),
    (".wait_while(", BlockKind::CondvarWait),
    (".write_all(", BlockKind::BlockingIo),
    (".read_exact(", BlockKind::BlockingIo),
    (".read_to_end(", BlockKind::BlockingIo),
    (".read_to_string(", BlockKind::BlockingIo),
    (".read_until(", BlockKind::BlockingIo),
];

const ATOMIC_OPS: &[(&str, AtomicOp)] = &[
    (".load(", AtomicOp::Load),
    (".store(", AtomicOp::Store),
    (".swap(", AtomicOp::Rmw),
    (".fetch_add(", AtomicOp::Rmw),
    (".fetch_sub(", AtomicOp::Rmw),
    (".fetch_and(", AtomicOp::Rmw),
    (".fetch_or(", AtomicOp::Rmw),
    (".fetch_xor(", AtomicOp::Rmw),
    (".fetch_min(", AtomicOp::Rmw),
    (".fetch_max(", AtomicOp::Rmw),
    (".fetch_update(", AtomicOp::Rmw),
    (".compare_exchange(", AtomicOp::Rmw),
    (".compare_exchange_weak(", AtomicOp::Rmw),
];

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "loop", "return", "fn", "struct", "enum", "union", "in"];

/// One entry of the parser's item-context stack.
#[derive(Debug)]
enum Ctx {
    /// Plain `{}` (mod bodies, control flow, struct literals, …).
    Block,
    /// `impl Type`/`trait Type` body; `ty` qualifies contained fns.
    Impl { ty: String },
    /// `struct Type { … }` body; fields append to `structs[idx]`.
    Struct { idx: usize },
    /// Function body; facts accumulate in the scratch `FnScratch`.
    Fn,
}

/// What an opening `{` is about to introduce, decided from the statement
/// text that precedes it.
#[derive(Debug)]
enum Pending {
    Impl { ty: String },
    Struct { name: String },
    Fn { name: String },
}

struct Guard {
    class: String,
    line: usize,
    binding: Option<String>,
    /// Depth *inside* which the guard lives; released when depth drops
    /// below this.
    at_depth: i32,
    /// Temporary (not `let`-bound): released at end of statement.
    temp: bool,
}

struct FnScratch {
    facts: FnFacts,
    guards: Vec<Guard>,
}

/// Parses one file into [`FileFacts`]. Pure function of its inputs so
/// fixture tests can feed it synthetic sources.
pub fn parse_file(relpath: &str, content: &str) -> FileFacts {
    let crate_name = {
        let mut parts = relpath.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(c)) => c.to_string(),
            (Some(first), _) => first.to_string(),
            _ => String::new(),
        }
    };
    let mut out = FileFacts {
        path: relpath.to_string(),
        crate_name,
        ..FileFacts::default()
    };

    let mut lexer = Lexer::default();
    let mut depth: i32 = 0;
    // (ctx, depth outside the ctx's braces) — pop when depth returns there.
    let mut ctx: Vec<(Ctx, i32)> = Vec::new();
    let mut fn_stack: Vec<FnScratch> = Vec::new();
    let mut pending: Option<Pending> = None;

    // Test-region tracking (same model as the lint pass).
    let mut test_region_until: Option<i32> = None;
    let mut pending_test_attr = false;

    // ORDERING-comment attachment (same model as the SAFETY rule).
    let mut ordering_pending = false;
    // Current statement: accumulated lexed code (lines joined by a space)
    // and whether an ORDERING comment covers it.
    let mut stmt = String::new();
    let mut stmt_has_ordering = false;

    let is_test_file = relpath.contains("/tests/") || relpath.starts_with("tests/");

    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let lexed = lexer.lex(raw);
        let code = lexed.code.as_str();
        let trimmed = code.trim();
        let line_has_ordering = lexed.comment.contains("ORDERING:");

        // Test-region attribute machinery.
        if pending_test_attr {
            if trimmed.starts_with("#[") {
                // stacked attribute; keep waiting
            } else if code.contains('{') {
                test_region_until = Some(depth);
                pending_test_attr = false;
            } else if code.contains(';') {
                pending_test_attr = false;
            }
        }
        if test_region_until.is_none()
            && ((trimmed.starts_with("#[cfg(") && trimmed.contains("test"))
                || trimmed.starts_with("#[test]"))
        {
            pending_test_attr = true;
        }
        let in_test = is_test_file || test_region_until.is_some() || pending_test_attr;

        // Split the line into statement fragments at top-level `;`/`{`/`}`.
        // Parens/brackets never nest braces-relevant statements in this
        // codebase's style, so splitting on the raw characters is safe for
        // everything the facts care about (semicolons inside `[T; N]` only
        // produce a harmless extra statement boundary).
        let bytes = code.as_bytes();
        let mut frag_start = 0;
        let mut i = 0;
        while i <= bytes.len() {
            let boundary = if i == bytes.len() {
                None
            } else {
                match bytes[i] {
                    b';' | b'{' | b'}' => Some(bytes[i]),
                    _ => None,
                }
            };
            if i == bytes.len() || boundary.is_some() {
                let text = &code[frag_start..i];
                if !text.trim().is_empty() {
                    if stmt.is_empty() {
                        // Statement starts here: it consumes any pending
                        // ORDERING comment block from above.
                        stmt_has_ordering = ordering_pending;
                    }
                    if line_has_ordering {
                        stmt_has_ordering = true;
                    }
                    let region_start = stmt.len() + 1; // +1 for the joiner
                    stmt.push(' ');
                    stmt.push_str(text);
                    scan_fragment(
                        &stmt,
                        region_start,
                        lineno,
                        stmt_has_ordering,
                        depth,
                        &mut fn_stack,
                        &mut out,
                        in_test,
                    );
                }
                frag_start = i + 1;
            }
            let Some(b) = boundary else {
                i += 1;
                continue;
            };
            // Struct fields must flush before `}` pops the struct context.
            flush_struct_field(&stmt, &ctx, &mut out);
            match b {
                b'{' => {
                    // Decide what this brace introduces from the statement.
                    let p = pending.take().or_else(|| classify_stmt(&stmt));
                    match p {
                        Some(Pending::Fn { name }) => {
                            let impl_type = ctx.iter().rev().find_map(|(c, _)| match c {
                                Ctx::Impl { ty } => Some(ty.clone()),
                                _ => None,
                            });
                            let qual = match &impl_type {
                                Some(t) => format!("{t}::{name}"),
                                None => name.clone(),
                            };
                            fn_stack.push(FnScratch {
                                facts: FnFacts {
                                    qual,
                                    name,
                                    impl_type,
                                    line: lineno,
                                    is_test: in_test,
                                    ..FnFacts::default()
                                },
                                guards: Vec::new(),
                            });
                            ctx.push((Ctx::Fn, depth));
                        }
                        Some(Pending::Impl { ty }) => ctx.push((Ctx::Impl { ty }, depth)),
                        Some(Pending::Struct { name }) => {
                            out.structs.push(StructFacts { name, fields: Vec::new() });
                            let idx = out.structs.len() - 1;
                            ctx.push((Ctx::Struct { idx }, depth));
                        }
                        None => ctx.push((Ctx::Block, depth)),
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    while let Some((_, open_depth)) = ctx.last() {
                        if depth <= *open_depth {
                            let (closed, _) = ctx.pop().expect("ctx checked non-empty");
                            if matches!(closed, Ctx::Fn) {
                                if let Some(mut scratch) = fn_stack.pop() {
                                    scratch.facts.end_line = lineno;
                                    out.fns.push(scratch.facts);
                                }
                            }
                        } else {
                            break;
                        }
                    }
                    if let Some(limit) = test_region_until {
                        if depth <= limit {
                            test_region_until = None;
                        }
                    }
                    // Release guards whose block closed.
                    if let Some(scratch) = fn_stack.last_mut() {
                        scratch.guards.retain(|g| g.at_depth <= depth);
                    }
                }
                b';' => {
                    // A `fn` signature ending in `;` is a bodyless trait
                    // method — discard the pending decl.
                    pending = None;
                }
                _ => unreachable!(),
            }
            // Statement boundary: temporaries die, the buffer resets.
            if let Some(scratch) = fn_stack.last_mut() {
                scratch.guards.retain(|g| !g.temp);
            }
            stmt.clear();
            stmt_has_ordering = false;
            i += 1;
        }
        // End of line: inside a struct body, a trailing `,` ends a field.
        if stmt.trim_end().ends_with(',') {
            flush_struct_field(&stmt, &ctx, &mut out);
            stmt.clear();
            stmt_has_ordering = false;
        }

        // ORDERING pending-comment update (mirrors the SAFETY rule): a
        // comment-only line extends the block, any code or blank line
        // consumes/breaks it.
        // A bare `//` (empty comment) still continues the block — only a
        // truly blank line breaks the attachment, mirroring the SAFETY rule.
        let is_comment_only = trimmed.is_empty() && !raw.trim().is_empty();
        if is_comment_only {
            if line_has_ordering {
                ordering_pending = true;
            }
        } else {
            ordering_pending = line_has_ordering;
        }
    }

    if depth != 0 {
        out.errors.push(format!("unbalanced braces: net depth {depth} at EOF"));
    }
    for (c, _) in &ctx {
        out.errors.push(format!("unclosed item context at EOF: {c:?}"));
    }
    for scratch in fn_stack {
        out.errors.push(format!("unclosed fn `{}` at EOF", scratch.facts.qual));
    }
    out
}

/// Classifies a statement that ends in `{`: which item (if any) is it
/// introducing? Order matters: `fn f(x: impl Trait) {` is a fn.
fn classify_stmt(stmt: &str) -> Option<Pending> {
    let positions: Vec<(usize, &str)> = ["fn", "impl", "trait", "struct"]
        .iter()
        .filter_map(|kw| find_token(stmt, kw).map(|p| (p, *kw)))
        .collect();
    let (pos, kw) = positions.into_iter().min_by_key(|(p, _)| *p)?;
    let rest = &stmt[pos + kw.len()..];
    match kw {
        "fn" => ident_after(rest).map(|name| Pending::Fn { name }),
        "struct" => ident_after(rest).map(|name| Pending::Struct { name }),
        "trait" => ident_after(rest).map(|ty| Pending::Impl { ty }),
        "impl" => {
            // `impl<T> Type`, `impl Trait for Type` — the implemented type
            // is after `for` when present.
            let rest = skip_generics(rest);
            let ty_src = match find_token(rest, "for") {
                Some(p) => &rest[p + 3..],
                None => rest,
            };
            ident_after(ty_src).map(|ty| Pending::Impl { ty })
        }
        _ => None,
    }
}

/// First identifier in `s`, skipping whitespace and a leading `<…>`
/// generic-parameter list.
fn ident_after(s: &str) -> Option<String> {
    let s = skip_generics(s);
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && !is_ident(b[i]) {
        // Identifiers must start before any brace/paren.
        if b[i] == b'{' || b[i] == b'(' {
            return None;
        }
        i += 1;
    }
    let start = i;
    while i < b.len() && is_ident(b[i]) {
        i += 1;
    }
    (i > start).then(|| s[start..i].to_string())
}

/// Skips a leading `<…>` (with nesting) after optional whitespace.
fn skip_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut angle = 0i32;
    for (i, c) in t.char_indices() {
        match c {
            '<' => angle += 1,
            '>' => {
                angle -= 1;
                if angle == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// Inside a `struct` body, parses `name: Type` fields from the finished
/// statement fragment (which may hold several comma-separated fields).
fn flush_struct_field(stmt: &str, ctx: &[(Ctx, i32)], out: &mut FileFacts) {
    let Some((Ctx::Struct { idx }, _)) = ctx.last() else {
        return;
    };
    // Split on commas outside `<>`/`()`/`[]`.
    let mut level = 0i32;
    let mut start = 0;
    let mut pieces = Vec::new();
    for (i, c) in stmt.char_indices() {
        match c {
            '<' | '(' | '[' => level += 1,
            '>' | ')' | ']' => level -= 1,
            ',' if level == 0 => {
                pieces.push(&stmt[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&stmt[start..]);
    for piece in pieces {
        let t = piece.trim();
        if t.is_empty() || t.starts_with("#[") {
            continue;
        }
        // Strip visibility.
        let t = t.strip_prefix("pub").map(str::trim_start).unwrap_or(t);
        let t = if t.starts_with('(') {
            // pub(crate) etc.
            match t.find(')') {
                Some(p) => t[p + 1..].trim_start(),
                None => continue,
            }
        } else {
            t
        };
        let Some(colon) = t.find(':') else {
            continue;
        };
        let name = t[..colon].trim();
        if name.is_empty() || !name.bytes().all(is_ident) {
            continue;
        }
        let ty = base_type(t[colon + 1..].trim());
        if !ty.is_empty() {
            out.structs[*idx].fields.push((name.to_string(), ty));
        }
    }
}

/// Reduces a field's type expression to the base type the call graph can
/// walk through: strips references, `Arc`/`Box`/`Rc`/`Option` wrappers,
/// slices/arrays, path prefixes, and generic arguments.
pub fn base_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        if let Some(stripped) = t.strip_prefix('&') {
            t = stripped.trim_start().strip_prefix("mut ").unwrap_or(stripped.trim_start());
            continue;
        }
        if t.starts_with('[') && t.ends_with(']') {
            t = t[1..t.len() - 1].trim();
            if let Some(semi) = t.rfind(';') {
                t = t[..semi].trim();
            }
            continue;
        }
        if t.starts_with('(') {
            return String::new(); // tuple: no single base type
        }
        let head_end = t.find('<').unwrap_or(t.len());
        let head = t[..head_end].trim();
        let seg = head.rsplit("::").next().unwrap_or(head).trim();
        if ["Arc", "Box", "Rc", "Option"].contains(&seg) && head_end < t.len() {
            if let Some(close) = t.rfind('>') {
                t = t[head_end + 1..close].trim();
                continue;
            }
        }
        return seg.to_string();
    }
}

/// Scans the newly-appended region of the current statement for lock,
/// blocking, call, and atomic sites. `stmt` is the full statement so far
/// (for `let`-binding and receiver-chain context); only matches starting
/// at `region_start` or later are recorded.
#[allow(clippy::too_many_arguments)]
fn scan_fragment(
    stmt: &str,
    region_start: usize,
    lineno: usize,
    has_ordering: bool,
    depth: i32,
    fn_stack: &mut Vec<FnScratch>,
    out: &mut FileFacts,
    in_test: bool,
) {
    // Atomics are collected even at module level (const defs); everything
    // else needs a function context.
    for site in scan_atomics(stmt, region_start, lineno, has_ordering) {
        match fn_stack.last_mut() {
            Some(s) => s.facts.atomics.push(site),
            None if !in_test => out.module_atomics.push(site),
            None => {}
        }
    }
    let Some(scratch) = fn_stack.last_mut() else {
        return;
    };

    // `drop(name)` releases a let-bound guard early.
    let mut from = region_start;
    while let Some(p) = stmt[from..].find("drop(") {
        let at = from + p;
        if at == 0 || !is_ident(stmt.as_bytes()[at - 1]) {
            let arg_start = at + "drop(".len();
            let arg: String = stmt[arg_start..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !arg.is_empty() {
                scratch.guards.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
            }
        }
        from = at + "drop(".len();
    }

    // Lock acquisitions.
    let mut from = region_start;
    while let Some(p) = stmt[from..].find(".lock(") {
        let at = from + p;
        let class = receiver_ident(stmt, at);
        let class = if class.is_empty() { String::from("<unknown>") } else { class };
        // Edges: acquiring while any guard is live.
        for g in &scratch.guards {
            scratch.facts.held_edges.push(HeldEdge {
                held: g.class.clone(),
                held_line: g.line,
                acquired: class.clone(),
                line: lineno,
            });
        }
        let binding = let_binding(stmt);
        scratch.guards.push(Guard {
            class: class.clone(),
            line: lineno,
            temp: binding.is_none(),
            binding,
            at_depth: depth,
        });
        scratch.facts.locks.push(LockSite { class, line: lineno });
        from = at + ".lock(".len();
    }

    // Blocking operations.
    for (needle, kind) in BLOCKING_NEEDLES {
        let mut from = region_start;
        while let Some(p) = stmt[from..].find(needle) {
            let at = from + p;
            scratch.facts.blocking.push(BlockingSite { kind: *kind, needle, line: lineno });
            let site = scratch.facts.blocking.len() - 1;
            if *kind != BlockKind::CondvarWait {
                for g in &scratch.guards {
                    scratch.facts.held_blocking.push(HeldBlocking {
                        held: (g.class.clone(), g.line),
                        site,
                    });
                }
            }
            from = at + needle.len();
        }
    }

    // Calls.
    for callee in scan_calls(stmt, region_start) {
        scratch.facts.calls.push(CallSite { callee, line: lineno });
        if !scratch.guards.is_empty() {
            scratch.facts.held_calls.push(HeldCall {
                held: scratch.guards.iter().map(|g| (g.class.clone(), g.line)).collect(),
                call: scratch.facts.calls.len() - 1,
            });
        }
    }
}

/// The binding name of the statement's `let`, if it is a simple
/// `let [mut] name =` pattern.
fn let_binding(stmt: &str) -> Option<String> {
    let p = find_token(stmt, "let")?;
    let rest = stmt[p + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").map(str::trim_start).unwrap_or(rest);
    let b = rest.as_bytes();
    let mut i = 0;
    while i < b.len() && is_ident(b[i]) {
        i += 1;
    }
    (i > 0).then(|| rest[..i].to_string())
}

/// The identifier immediately before `.x(` at `dot_pos` (the `.`'s index),
/// skipping one trailing call/index group: `self.shard(key).lock(` → `shard`.
fn receiver_ident(stmt: &str, dot_pos: usize) -> String {
    let b = stmt.as_bytes();
    let mut i = dot_pos;
    // Skip whitespace backwards.
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Skip one balanced `(...)`/`[...]` group (a call or index whose
    // callee/base names the receiver).
    if i > 0 && (b[i - 1] == b')' || b[i - 1] == b']') {
        let (close, open) = if b[i - 1] == b')' { (b')', b'(') } else { (b']', b'[') };
        let mut level = 0;
        while i > 0 {
            i -= 1;
            if b[i] == close {
                level += 1;
            } else if b[i] == open {
                level -= 1;
                if level == 0 {
                    break;
                }
            }
        }
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    let end = i;
    while i > 0 && is_ident(b[i - 1]) {
        i -= 1;
    }
    stmt[i..end].to_string()
}

/// Extracts `Ordering::X` sites from the new region of a statement.
fn scan_atomics(
    stmt: &str,
    region_start: usize,
    lineno: usize,
    has_ordering: bool,
) -> Vec<AtomicSite> {
    let mut sites = Vec::new();
    let mut from = region_start;
    while let Some(p) = stmt[from..].find("Ordering::") {
        let at = from + p;
        let after = &stmt[at + "Ordering::".len()..];
        let ordering: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
        from = at + "Ordering::".len();
        if !["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(&ordering.as_str()) {
            continue;
        }
        // Const definition? `const NAME: Ordering = Ordering::X`.
        if let Some(cp) = find_token(&stmt[..at], "const") {
            if stmt[cp..at].contains(": Ordering") && stmt[cp..at].contains('=') {
                let name = ident_after(&stmt[cp + "const".len()..]).unwrap_or_default();
                sites.push(AtomicSite {
                    field: name,
                    op: AtomicOp::ConstDef,
                    ordering,
                    line: lineno,
                    has_ordering_comment: has_ordering,
                });
                continue;
            }
        }
        // Nearest atomic op before the token decides the op and field.
        let mut best: Option<(usize, &str, AtomicOp)> = None;
        for (needle, op) in ATOMIC_OPS {
            if let Some(q) = stmt[..at].rfind(needle) {
                if best.map_or(true, |(bq, _, _)| q > bq) {
                    best = Some((q, needle, *op));
                }
            }
        }
        let (op, field) = match best {
            Some((q, _needle, op)) => (op, receiver_ident(stmt, q)),
            None => (AtomicOp::Other, String::new()),
        };
        sites.push(AtomicSite {
            field,
            op,
            ordering,
            line: lineno,
            has_ordering_comment: has_ordering,
        });
    }
    sites
}

/// Extracts call sites (`Callee`s) from the new region of a statement.
fn scan_calls(stmt: &str, region_start: usize) -> Vec<Callee> {
    let b = stmt.as_bytes();
    let mut out = Vec::new();
    for open in region_start..b.len() {
        if b[open] != b'(' {
            continue;
        }
        // Identifier directly before the paren (no whitespace in Rust call
        // syntax; tolerate none).
        let mut i = open;
        let end = i;
        while i > 0 && is_ident(b[i - 1]) {
            i -= 1;
        }
        if i == end {
            continue;
        }
        let name = &stmt[i..end];
        if name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        if CALLISH_KEYWORDS.contains(&name) {
            continue;
        }
        // Macro (`name!(`)? The `!` sits between ident and paren — already
        // excluded since b[open-1] must be the ident's last byte; but check
        // `name !(` style too.
        if end < b.len() && b[end] == b'!' {
            continue;
        }
        // Declaration (`fn name(`), not a call.
        let before = stmt[..i].trim_end();
        if before.ends_with("fn") || before.ends_with("struct") || before.ends_with("enum") {
            continue;
        }
        if before.ends_with("::") {
            // Path call: collect segments backwards.
            let mut segs = vec![name.to_string()];
            let mut j = before.len() - 2; // before the `::`
            loop {
                let seg_end = j;
                while j > 0 && is_ident(b[j - 1]) {
                    j -= 1;
                }
                if j == seg_end {
                    break;
                }
                segs.push(stmt[j..seg_end].to_string());
                if j >= 2 && &stmt[j - 2..j] == "::" {
                    j -= 2;
                } else {
                    break;
                }
            }
            segs.reverse();
            out.push(Callee::Path(segs));
        } else if before.ends_with('.') {
            // Method call: walk the receiver chain.
            let mut chain = Vec::new();
            let mut j = before.len() - 1; // index of the `.`
            loop {
                while j > 0 && b[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if j == 0 {
                    break;
                }
                if b[j - 1] == b')' || b[j - 1] == b']' {
                    // A call or index in the chain: untypeable segment.
                    let (close, open_c) =
                        if b[j - 1] == b')' { (b')', b'(') } else { (b']', b'[') };
                    let mut level = 0;
                    while j > 0 {
                        j -= 1;
                        if b[j] == close {
                            level += 1;
                        } else if b[j] == open_c {
                            level -= 1;
                            if level == 0 {
                                break;
                            }
                        }
                    }
                    // Swallow the callee/base identifier too.
                    while j > 0 && b[j - 1].is_ascii_whitespace() {
                        j -= 1;
                    }
                    let seg_end = j;
                    while j > 0 && is_ident(b[j - 1]) {
                        j -= 1;
                    }
                    let _ = seg_end;
                    chain.push(String::from("()"));
                } else if is_ident(b[j - 1]) {
                    let seg_end = j;
                    while j > 0 && is_ident(b[j - 1]) {
                        j -= 1;
                    }
                    chain.push(stmt[j..seg_end].to_string());
                } else {
                    break;
                }
                // Continue the chain through another `.`.
                while j > 0 && b[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if j > 0 && b[j - 1] == b'.' {
                    j -= 1;
                } else {
                    break;
                }
            }
            chain.reverse();
            if chain.is_empty() {
                chain.push(String::from("()"));
            }
            out.push(Callee::Method { chain, name: name.to_string() });
        } else {
            out.push(Callee::Bare(name.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_fn<'a>(facts: &'a FileFacts, qual: &str) -> &'a FnFacts {
        facts.fns.iter().find(|f| f.qual == qual).unwrap_or_else(|| {
            panic!("no fn {qual}; have {:?}", facts.fns.iter().map(|f| &f.qual).collect::<Vec<_>>())
        })
    }

    #[test]
    fn let_guard_lives_to_block_end_and_temp_dies_at_statement_end() {
        let src = "impl Q {\n    fn a(&self) {\n        let g = self.m.lock().unwrap();\n        std::thread::sleep(d);\n    }\n    fn b(&self) {\n        self.m.lock().unwrap().push(1);\n        std::thread::sleep(d);\n    }\n}\n";
        let facts = parse_file("crates/x/src/l.rs", src);
        let a = one_fn(&facts, "Q::a");
        assert_eq!(a.held_blocking.len(), 1, "let-bound guard held across sleep");
        let b = one_fn(&facts, "Q::b");
        assert!(b.held_blocking.is_empty(), "temporary guard dies at the semicolon");
    }

    #[test]
    fn drop_releases_the_named_guard() {
        let src = "impl Q {\n    fn a(&self) {\n        let g = self.m.lock().unwrap();\n        drop(g);\n        std::thread::sleep(d);\n    }\n}\n";
        let facts = parse_file("crates/x/src/l.rs", src);
        assert!(one_fn(&facts, "Q::a").held_blocking.is_empty());
    }

    #[test]
    fn inner_block_releases_its_guards_on_close() {
        let src = "impl Q {\n    fn a(&self) {\n        {\n            let g = self.m.lock().unwrap();\n        }\n        std::thread::sleep(d);\n    }\n}\n";
        let facts = parse_file("crates/x/src/l.rs", src);
        assert!(one_fn(&facts, "Q::a").held_blocking.is_empty());
    }

    #[test]
    fn multi_line_statement_still_finds_the_lock() {
        // The reactor's own style: the receiver and `.lock()` split across
        // lines must still produce one lock site with the right class.
        let src = "impl R {\n    fn t(&self) {\n        let mut pending =\n            self.signal.lock\n            .lock()\n            .unwrap();\n        pending.clear();\n    }\n}\n";
        let facts = parse_file("crates/x/src/r.rs", src);
        let t = one_fn(&facts, "R::t");
        assert_eq!(t.locks.len(), 1);
        assert_eq!(t.locks[0].class, "lock");
    }

    #[test]
    fn condvar_wait_is_not_held_blocking() {
        let src = "impl Q {\n    fn next(&self) {\n        let g = self.inner.lock().unwrap();\n        let g = self.cond.wait(g).unwrap();\n        drop(g);\n    }\n}\n";
        let facts = parse_file("crates/x/src/q.rs", src);
        let f = one_fn(&facts, "Q::next");
        assert!(f.blocking.iter().any(|b| b.kind == BlockKind::CondvarWait));
        assert!(f.held_blocking.is_empty(), "condvar wait releases the mutex");
    }

    #[test]
    fn struct_fields_strip_wrappers_to_base_types() {
        let src = "struct S {\n    q: Arc<DispatchQueue>,\n    g: Option<Box<Gate>>,\n    n: u64,\n}\n";
        let facts = parse_file("crates/x/src/s.rs", src);
        let s = &facts.structs[0];
        assert_eq!(s.fields, vec![
            ("q".to_string(), "DispatchQueue".to_string()),
            ("g".to_string(), "Gate".to_string()),
            ("n".to_string(), "u64".to_string()),
        ]);
    }

    #[test]
    fn ordering_const_def_is_classified() {
        let src = "const HANDSHAKE: Ordering = Ordering::SeqCst;\n";
        let facts = parse_file("crates/x/src/c.rs", src);
        assert_eq!(facts.module_atomics.len(), 1);
        assert_eq!(facts.module_atomics[0].op, AtomicOp::ConstDef);
        assert_eq!(facts.module_atomics[0].ordering, "SeqCst");
    }

    #[test]
    fn test_code_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.lock(); }\n}\n";
        let facts = parse_file("crates/x/src/t.rs", src);
        assert!(!one_fn(&facts, "live").is_test);
        assert!(one_fn(&facts, "t").is_test);
    }
}
