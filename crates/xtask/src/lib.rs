//! Workspace lint pass: concurrency-hygiene rules the compiler cannot check.
//!
//! The serving core carries hand-rolled `unsafe` reclamation
//! (`serving::handle`), a model-checker shim (`shims/loom`), and a no-panic
//! request path — invariants that are easy to break silently in a later
//! change. This crate enforces them statically with a small line lexer (no
//! `syn`, no network): run `cargo run -p xtask -- lint`, or rely on
//! `tests/workspace_lint.rs`, which wires the same pass into tier-1
//! `cargo test`.
//!
//! Rules (each is documented in detail on its check below):
//!
//! * **R1 safety-comment** — every `unsafe` keyword needs a `// SAFETY:`
//!   comment (or a `# Safety` doc section) in the comment block immediately
//!   above it (blank lines break the association) or on the same line.
//! * **R2 no-panic-request-path** — request-path modules must not contain
//!   `unwrap()`/`expect()`/`panic!`-family calls outside test code; vetted
//!   exceptions live in `lint_allow.txt` with a one-line justification.
//! * **R3 facade-only-sync** — modules ported to the `sync` facade must not
//!   import `std::sync::atomic`, `std::thread`, or `parking_lot` directly
//!   (normal builds re-export them; `--features loom` swaps in the shim).
//! * **R4 no-sleep** — `thread::sleep` only in the load generator and tests.
//! * **R5 shim-wiring** — every directory in `shims/` must be wired into
//!   the workspace by a `path` dependency, keyed by its package name, and
//!   documented in `shims/README.md`.
//! * **R6 record-no-alloc** — in telemetry hot-path modules, functions whose
//!   name starts with `record` run on every request per worker and must stay
//!   allocation- and lock-free: no `Vec::push`/`String`/`format!` and no
//!   mutex acquisition (snapshot/render functions are naturally exempt —
//!   the rule keys on the function name).

pub mod analyze;
pub mod callgraph;
pub mod facts;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{braces, find_token, Lexer};

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Stable rule identifier (`safety-comment`, `no-panic-request-path`, …).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Serving/kvstore modules on the request hot path: a panic here unwinds an
/// HTTP worker's keep-alive loop and kills every connection multiplexed on
/// it, so failures must surface as typed errors instead (R2).
const REQUEST_PATH_MODULES: &[&str] = &[
    "crates/serving/src/engine.rs",
    "crates/serving/src/http.rs",
    "crates/serving/src/server/mod.rs",
    "crates/serving/src/server/parser.rs",
    "crates/serving/src/server/conn.rs",
    "crates/serving/src/server/lifecycle.rs",
    "crates/serving/src/server/reactor.rs",
    "crates/serving/src/server/dispatch.rs",
    "crates/serving/src/server/worker.rs",
    "crates/serving/src/server/metrics.rs",
    "crates/serving/src/cluster.rs",
    "crates/serving/src/handle.rs",
    "crates/serving/src/cache.rs",
    "crates/serving/src/json.rs",
    "crates/serving/src/rules.rs",
    "crates/serving/src/ingest/mod.rs",
    "crates/serving/src/ingest/pipeline.rs",
    "crates/serving/src/ingest/epoch.rs",
    "crates/serving/src/ingest/metrics.rs",
    "crates/serving/src/server/backend.rs",
    "crates/serving/src/transport.rs",
    "crates/serving/src/routerd.rs",
    "crates/serving/src/node.rs",
    "crates/kvstore/src/store.rs",
    "crates/kvstore/src/session.rs",
    "crates/kvstore/src/clock.rs",
    "crates/serving/src/stats.rs",
    "crates/serving/src/telemetry.rs",
    "crates/telemetry/src/histogram.rs",
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/trace.rs",
];

/// Telemetry modules whose `record*` functions sit on the per-request hot
/// path (R6). Recording a latency sample must never allocate or take a lock:
/// an allocation stalls the worker under memory pressure and a mutex turns
/// the per-shard atomics back into a convoy. Snapshot/render code in the
/// same files is exempt — the rule keys on the `record` name prefix.
const RECORD_PATH_MODULES: &[&str] = &[
    "crates/serving/src/cache.rs",
    "crates/telemetry/src/histogram.rs",
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/trace.rs",
    "crates/serving/src/stats.rs",
    "crates/serving/src/telemetry.rs",
    "crates/serving/src/server/metrics.rs",
    "crates/serving/src/ingest/metrics.rs",
    "crates/serving/src/ingest/epoch.rs",
];

/// Needles R6 treats as allocation or locking inside a `record*` function.
const RECORD_ALLOC_NEEDLES: &[&str] = &[
    ".push(",
    ".push_str(",
    "String::",
    ".to_string(",
    ".to_owned(",
    "format!(",
    "vec![",
    "Vec::new",
    "Box::new",
    ".lock(",
];

/// Modules ported to the `sync` facade (R3). Their concurrency primitives
/// must come from `crate::sync` so `--features loom` can swap in the model
/// checker; a direct `std::sync::atomic`/`std::thread`/`parking_lot` import
/// would silently escape the checker's instrumentation.
const FACADE_MODULES: &[&str] = &[
    "crates/serving/src/cache.rs",
    "crates/serving/src/handle.rs",
    "crates/serving/src/stats.rs",
    "crates/serving/src/server/lifecycle.rs",
    "crates/kvstore/src/store.rs",
    "crates/serving/src/ingest/epoch.rs",
];

/// Files allowed to call `thread::sleep` (R4): open-loop load generation
/// needs pacing by design. Everything else on a worker thread is latency
/// poison and must use condition variables or channels.
const SLEEP_ALLOWED: &[&str] = &["crates/serving/src/loadgen.rs"];

const PANIC_NEEDLES: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// One `lint_allow.txt` entry: `path :: needle :: justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub needle: String,
    pub justification: String,
    /// Line in `lint_allow.txt`, for stale-entry reporting.
    pub source_line: usize,
}

/// Parses `lint_allow.txt`. Lines are `path :: needle :: justification`;
/// blank lines and `#` comments are skipped. Malformed lines are reported
/// as violations rather than ignored.
pub fn parse_allowlist(content: &str) -> (Vec<AllowEntry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, " :: ").collect();
        if parts.len() != 3 || parts.iter().any(|p| p.trim().is_empty()) {
            violations.push(Violation {
                file: String::from("crates/xtask/lint_allow.txt"),
                line: i + 1,
                rule: "allowlist-format",
                message: format!("expected `path :: needle :: justification`, got `{line}`"),
            });
            continue;
        }
        entries.push(AllowEntry {
            file: parts[0].trim().to_string(),
            needle: parts[1].trim().to_string(),
            justification: parts[2].trim().to_string(),
            source_line: i + 1,
        });
    }
    (entries, violations)
}

/// Per-file lint over `content`. `relpath` is workspace-relative with `/`
/// separators; it selects which rules apply. Pure function of its inputs so
/// fixture tests can feed it synthetic files.
pub fn scan_file(relpath: &str, content: &str) -> Vec<Violation> {
    let is_test_file = relpath.contains("/tests/") || relpath.starts_with("tests/");
    let request_path = REQUEST_PATH_MODULES.contains(&relpath);
    let facade = FACADE_MODULES.contains(&relpath);
    let sleep_ok = SLEEP_ALLOWED.contains(&relpath) || is_test_file;
    let record_path = RECORD_PATH_MODULES.contains(&relpath);

    let mut lexer = Lexer::default();
    let mut violations = Vec::new();

    // Test-region tracking: a `#[cfg(test)]`-style attribute (any cfg
    // containing the `test` token) puts the lexer in "test code" until the
    // block it introduces closes. Attribute on a braceless item (e.g. a
    // `use`) covers just that statement.
    let mut depth: i32 = 0;
    let mut test_region_until: Option<i32> = None; // skip while depth > this
    let mut pending_test_attr = false;

    // R1: true while a `SAFETY:` comment block immediately above is still
    // "attached" — comment-only lines extend it, any code or blank line
    // consumes/breaks it.
    let mut safety_pending = false;

    // R6: region tracking for `fn record*` bodies, mirroring the test-region
    // machinery — the region opens at the function's `{` and closes when the
    // brace depth returns to the level outside it.
    let mut record_region_until: Option<i32> = None;
    let mut pending_record_fn = false;

    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let lexed = lexer.lex(raw);
        let code = lexed.code.as_str();

        if lexed.comment.contains("SAFETY:") || lexed.comment.contains("# Safety") {
            safety_pending = true;
        }

        let trimmed = code.trim();
        if pending_test_attr {
            // The attribute's item starts here (attributes may stack).
            if trimmed.starts_with("#[") {
                // another attribute; keep waiting
            } else if code.contains('{') {
                test_region_until = Some(depth);
                pending_test_attr = false;
            } else if code.contains(';') {
                // Braceless item (use/static): only that line is test code.
                pending_test_attr = false;
                depth += braces(code);
                continue;
            }
        }
        if trimmed.starts_with("#[cfg(") && trimmed.contains("test") && test_region_until.is_none()
        {
            pending_test_attr = true;
        }
        if trimmed.starts_with("#[test]") && test_region_until.is_none() {
            pending_test_attr = true;
        }

        // R6 region transitions (before the depth update, like test regions).
        let mut record_scan_line = record_region_until.is_some();
        if record_path {
            if record_region_until.is_none() && !pending_record_fn {
                if let Some(pos) = find_token(code, "fn") {
                    if code[pos + 2..].trim_start().starts_with("record") {
                        pending_record_fn = true;
                    }
                }
            }
            if pending_record_fn {
                if code.contains('{') {
                    pending_record_fn = false;
                    record_region_until = Some(depth);
                    record_scan_line = true;
                } else if code.contains(';') {
                    // Bodyless declaration (trait method) — nothing to scan.
                    pending_record_fn = false;
                }
            }
        }

        let depth_before = depth;
        depth += braces(code);
        let in_test = is_test_file
            || match test_region_until {
                Some(limit) => {
                    if depth <= limit {
                        test_region_until = None;
                        // The closing-brace line itself still belongs to
                        // the test region.
                        true
                    } else {
                        true
                    }
                }
                None => pending_test_attr && depth > depth_before,
            };
        if let Some(limit) = record_region_until {
            // The closing-brace line itself was already marked for scanning.
            if depth <= limit {
                record_region_until = None;
            }
        }

        // R1: `unsafe` needs a SAFETY comment attached — in the comment
        // block directly above (blank lines break it) or on the same line.
        // Applies everywhere, tests included — an uncommented unsafe block
        // in a test is still a trap for the next reader. `unsafe fn(` is a
        // function-pointer *type*, not a block.
        if let Some(col) = find_token(code, "unsafe") {
            let after = code[col + "unsafe".len()..].trim_start();
            let is_fn_ptr_type = after.starts_with("fn(");
            if !is_fn_ptr_type && !safety_pending {
                violations.push(Violation {
                    file: relpath.to_string(),
                    line: lineno,
                    rule: "safety-comment",
                    message: String::from(
                        "`unsafe` without a `// SAFETY:` comment attached above it",
                    ),
                });
            }
        }

        // R2: no panicking calls on the request path (non-test code).
        if request_path && !in_test {
            for needle in PANIC_NEEDLES {
                if let Some(col) = code.find(needle) {
                    // `self.expect(` is this workspace's parser-combinator
                    // helper returning `Err`, not `Option::expect`.
                    if *needle == ".expect(" && code[..col].ends_with("self") {
                        continue;
                    }
                    violations.push(Violation {
                        file: relpath.to_string(),
                        line: lineno,
                        rule: "no-panic-request-path",
                        message: format!(
                            "`{needle}` on the request path (a panic kills the worker's \
                             keep-alive connection); return a typed error or allowlist it"
                        ),
                    });
                }
            }
        }

        // R6: no allocation or locking inside `record*` hot-path functions.
        if record_scan_line && !in_test {
            for needle in RECORD_ALLOC_NEEDLES {
                if code.contains(needle) {
                    violations.push(Violation {
                        file: relpath.to_string(),
                        line: lineno,
                        rule: "record-no-alloc",
                        message: format!(
                            "`{needle}` inside a `record*` function; the record path runs \
                             per request per worker and must not allocate or lock"
                        ),
                    });
                }
            }
        }

        // R3: facade-ported modules must go through `crate::sync`.
        if facade && !in_test {
            for needle in ["std::sync::atomic", "std::thread", "parking_lot"] {
                if code.contains(needle) {
                    violations.push(Violation {
                        file: relpath.to_string(),
                        line: lineno,
                        rule: "facade-only-sync",
                        message: format!(
                            "`{needle}` bypasses the `sync` facade; the loom build would \
                             not instrument it"
                        ),
                    });
                }
            }
        }

        // R4: no sleeping on worker threads.
        if !sleep_ok && !in_test && code.contains("::sleep(") {
            violations.push(Violation {
                file: relpath.to_string(),
                line: lineno,
                rule: "no-sleep",
                message: String::from(
                    "`thread::sleep` outside the load generator and tests; use channels \
                     or condvars",
                ),
            });
        }

        // A code line consumes the attached SAFETY block; a blank line
        // breaks it; comment-only lines extend it.
        let is_comment_only = trimmed.is_empty() && !lexed.comment.trim().is_empty();
        if !is_comment_only {
            safety_pending = lexed.comment.contains("SAFETY:")
                || lexed.comment.contains("# Safety");
        }
    }
    violations
}

/// R5: every shim directory must be wired into the workspace under its
/// package name and documented in the shim README. Catches the classic
/// drift where a shim is edited or added but the workspace silently keeps
/// resolving the name elsewhere (or nowhere).
pub fn check_shim_wiring(
    shim_dirs: &[(String, String)], // (dir name, its Cargo.toml content)
    root_manifest: &str,
    shim_manifests_joined: &str,
    readme: &str,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (dir, manifest) in shim_dirs {
        let file = format!("shims/{dir}/Cargo.toml");
        let name = toml_value(manifest, "name");
        let version = toml_value(manifest, "version");
        let Some(name) = name else {
            violations.push(Violation {
                file,
                line: 0,
                rule: "shim-wiring",
                message: String::from("shim manifest has no `name` field"),
            });
            continue;
        };
        if version.is_none() {
            violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "shim-wiring",
                message: format!("shim `{name}` declares no `version`"),
            });
        }
        let root_ref = format!("path = \"shims/{dir}\"");
        let sibling_ref = format!("path = \"../{dir}\"");
        if !root_manifest.contains(&root_ref) && !shim_manifests_joined.contains(&sibling_ref) {
            violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "shim-wiring",
                message: format!(
                    "shims/{dir} is not wired in: no `{root_ref}` in the root Cargo.toml \
                     and no shim depends on it"
                ),
            });
        } else if root_manifest.contains(&root_ref) {
            // The dependency key must equal the package name, or the crate
            // in the directory is not the one the name resolves to.
            let keyed = root_manifest.lines().any(|l| {
                l.trim_start().starts_with(&format!("{name} ")) && l.contains(&root_ref)
            });
            if !keyed {
                violations.push(Violation {
                    file: file.clone(),
                    line: 0,
                    rule: "shim-wiring",
                    message: format!(
                        "root Cargo.toml wires shims/{dir} under a key other than its \
                         package name `{name}`"
                    ),
                });
            }
        }
        if !readme.contains(&format!("`{name}`")) {
            violations.push(Violation {
                file,
                line: 0,
                rule: "shim-wiring",
                message: format!("shims/README.md has no row for `{name}`"),
            });
        }
    }
    violations
}

/// First `key = "value"` in a TOML chunk (enough for our manifests; no
/// TOML parser in an offline workspace).
fn toml_value<'a>(toml: &'a str, key: &str) -> Option<&'a str> {
    for line in toml.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix(key) {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                return v.trim().strip_prefix('"').and_then(|v| v.split('"').next());
            }
        }
    }
    None
}

/// Applies the allowlist: waives matching violations, then reports unused
/// (stale) entries so the list can only shrink, never rot.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    entries: &[AllowEntry],
    sources: &dyn Fn(&str) -> Option<String>,
) -> Vec<Violation> {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for v in violations {
        let mut waived = false;
        for (i, e) in entries.iter().enumerate() {
            if e.file == v.file && v.line > 0 {
                let line_matches = sources(&v.file)
                    .and_then(|src| src.lines().nth(v.line - 1).map(|l| l.contains(&e.needle)))
                    .unwrap_or(false);
                if line_matches {
                    used[i] = true;
                    waived = true;
                }
            }
        }
        if !waived {
            kept.push(v);
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            kept.push(Violation {
                file: String::from("crates/xtask/lint_allow.txt"),
                line: e.source_line,
                rule: "allowlist-stale",
                message: format!(
                    "entry for {} (`{}`) no longer waives anything; remove it",
                    e.file, e.needle
                ),
            });
        }
    }
    kept
}

/// Walks the workspace and runs every rule. `root` is the workspace root
/// (the directory holding the top-level `Cargo.toml`).
/// The workspace-relative paths the lint walks — exposed so tests can pin
/// coverage (e.g. that `shims/loom` and the reactor's raw-syscall module
/// are inside the SAFETY-comment rule's reach).
pub fn lint_targets(root: &Path) -> Result<Vec<String>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "shims", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    Ok(files
        .iter()
        .map(|p| {
            p.strip_prefix(root)
                .unwrap_or(p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect())
}

pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    // Rust sources under crates/, shims/, and the workspace-level tests/.
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "shims", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();

    let rel = |p: &Path| -> String {
        p.strip_prefix(root)
            .unwrap_or(p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/")
    };

    let mut raw: Vec<Violation> = Vec::new();
    for f in &files {
        let content = std::fs::read_to_string(f)
            .map_err(|e| format!("read {}: {e}", f.display()))?;
        raw.extend(scan_file(&rel(f), &content));
    }

    // R5 needs the manifests and README.
    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("read root Cargo.toml: {e}"))?;
    let readme = std::fs::read_to_string(root.join("shims/README.md")).unwrap_or_default();
    let mut shim_dirs = Vec::new();
    let mut shim_manifests = String::new();
    let entries = std::fs::read_dir(root.join("shims"))
        .map_err(|e| format!("read shims/: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read shims/: {e}"))?;
        if entry.path().is_dir() {
            let dir = entry.file_name().to_string_lossy().into_owned();
            let manifest = std::fs::read_to_string(entry.path().join("Cargo.toml"))
                .unwrap_or_default();
            shim_manifests.push_str(&manifest);
            shim_manifests.push('\n');
            shim_dirs.push((dir, manifest));
        }
    }
    shim_dirs.sort();
    raw.extend(check_shim_wiring(&shim_dirs, &root_manifest, &shim_manifests, &readme));

    // Allowlist pass.
    let allow_path = root.join("crates/xtask/lint_allow.txt");
    let allow_content = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let (entries, mut format_violations) = parse_allowlist(&allow_content);
    violations.append(&mut format_violations);
    let root_owned = root.to_path_buf();
    let sources = move |relpath: &str| std::fs::read_to_string(root_owned.join(relpath)).ok();
    violations.extend(apply_allowlist(raw, &entries, &sources));

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // e.g. no workspace-level tests/ dir
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            // `fixtures/` holds deliberately-bad analyzer corpora; walking
            // them would fail the workspace on its own test data.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        scan_file(path, src)
    }

    #[test]
    fn uncommented_unsafe_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint("crates/serving/src/handle.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety-comment");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_within_five_lines_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid, see caller.\n    unsafe { *p }\n}\n";
        assert!(lint("crates/serving/src/handle.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded to the caller.\n    unsafe { *p }\n}\n";
        assert!(lint("shims/loom/src/sync.rs", src).is_empty());
    }

    #[test]
    fn detached_safety_comment_does_not_cover() {
        // A blank line between the comment block and the unsafe site breaks
        // the association.
        let src = "// SAFETY: detached.\n\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let v = lint("crates/serving/src/handle.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn long_safety_block_still_covers() {
        let mut src = String::from("// SAFETY: a long argument\n");
        for _ in 0..8 {
            src.push_str("// spanning many comment lines\n");
        }
        src.push_str("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert!(lint("crates/serving/src/handle.rs", &src).is_empty());
    }

    #[test]
    fn same_line_safety_comment_covers() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: caller contract.\n";
        assert!(lint("crates/serving/src/handle.rs", src).is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_an_unsafe_site() {
        let src = "pub struct D { pub dealloc: (unsafe fn(usize), usize) }\n";
        assert!(lint("shims/loom/src/rt.rs", src).is_empty());
    }

    #[test]
    fn request_path_unwrap_is_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let v = lint("crates/serving/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-panic-request-path");
    }

    #[test]
    fn non_request_path_unwrap_is_fine() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint("crates/serving/src/absim.rs", src).is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_module_is_fine() {
        let src = "fn ok() {}\n\n#[cfg(all(test, not(feature = \"loom\")))]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(lint("crates/serving/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unwrap_after_test_module_closes_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n\nfn bad(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint("crates/serving/src/engine.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn panic_needles_in_strings_and_comments_are_ignored() {
        let src = "fn f() -> &'static str {\n    // .unwrap() would panic!( here\n    \"contains .unwrap() and panic!(\"\n}\n";
        assert!(lint("crates/serving/src/engine.rs", src).is_empty());
    }

    #[test]
    fn parser_internal_self_expect_is_structural() {
        let src = "impl P {\n    fn go(&mut self) -> Result<(), String> {\n        self.expect(b'{')\n    }\n}\n";
        assert!(lint("crates/serving/src/json.rs", src).is_empty());
    }

    #[test]
    fn facade_bypass_is_flagged() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        let v = lint("crates/serving/src/stats.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "facade-only-sync");
    }

    #[test]
    fn sleep_outside_loadgen_is_flagged() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n";
        let v = lint("crates/serving/src/router.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-sleep");
        assert!(lint("crates/serving/src/loadgen.rs", src).is_empty());
    }

    #[test]
    fn record_fn_allocation_is_flagged() {
        let src = "impl H {\n    pub fn record_us(&self, us: u64) {\n        self.samples.lock().push(us);\n    }\n}\n";
        let v = lint("crates/telemetry/src/histogram.rs", src);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"record-no-alloc"), "{v:?}");
        // Both `.lock(` and `.push(` on the line are reported.
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn record_fn_single_line_body_is_scanned() {
        let src = "impl H {\n    fn record(&self) { self.tags.push(format!(\"x\")) }\n}\n";
        let v = lint("crates/telemetry/src/trace.rs", src);
        assert!(v.iter().any(|x| x.rule == "record-no-alloc"), "{v:?}");
    }

    #[test]
    fn allocation_outside_record_fns_is_fine() {
        // snapshot/render allocate by design; only `record*` is restricted.
        let src = "impl H {\n    pub fn record_us(&self, us: u64) {\n        self.count.fetch_add(1, Ordering::Relaxed);\n    }\n    pub fn snapshot(&self) -> Vec<u64> {\n        let mut out = Vec::new();\n        out.push(self.count.load(Ordering::Relaxed));\n        out\n    }\n    pub fn render(&self) -> String {\n        format!(\"{}\", self.count.load(Ordering::Relaxed))\n    }\n}\n";
        assert!(lint("crates/telemetry/src/histogram.rs", src).is_empty());
    }

    #[test]
    fn record_rule_only_applies_to_telemetry_hot_path_modules() {
        // The offline metrics recorder pushes to a Vec by design.
        let src = "impl R {\n    pub fn record_us(&mut self, us: u64) {\n        self.samples.push(us);\n    }\n}\n";
        assert!(lint("crates/metrics/src/latency.rs", src).is_empty());
    }

    #[test]
    fn record_fn_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn record_all(v: &mut Vec<u64>) { v.push(1); }\n}\n";
        assert!(lint("crates/telemetry/src/histogram.rs", src).is_empty());
    }

    #[test]
    fn server_tree_is_on_the_no_panic_request_path() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        for file in [
            "crates/serving/src/server/mod.rs",
            "crates/serving/src/server/parser.rs",
            "crates/serving/src/server/conn.rs",
            "crates/serving/src/server/lifecycle.rs",
            "crates/serving/src/server/reactor.rs",
            "crates/serving/src/server/dispatch.rs",
            "crates/serving/src/server/worker.rs",
            "crates/serving/src/server/metrics.rs",
        ] {
            let v = lint(file, src);
            assert!(
                v.iter().any(|x| x.rule == "no-panic-request-path"),
                "{file} must be on the request path: {v:?}"
            );
        }
    }

    #[test]
    fn lifecycle_gate_is_facade_only() {
        let src = "use std::sync::atomic::AtomicUsize;\n";
        let v = lint("crates/serving/src/server/lifecycle.rs", src);
        assert!(v.iter().any(|x| x.rule == "facade-only-sync"), "{v:?}");
    }

    #[test]
    fn server_metrics_record_path_must_not_allocate() {
        let src = "impl M {\n    pub fn record_state(&self) { self.tags.push(1); }\n}\n";
        let v = lint("crates/serving/src/server/metrics.rs", src);
        assert!(v.iter().any(|x| x.rule == "record-no-alloc"), "{v:?}");
    }

    #[test]
    fn telemetry_is_on_the_no_panic_request_path() {
        let src = "fn record_us(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint("crates/telemetry/src/histogram.rs", src);
        assert!(v.iter().any(|x| x.rule == "no-panic-request-path"), "{v:?}");
    }

    #[test]
    fn allowlist_waives_and_detects_stale() {
        let (entries, bad) = parse_allowlist(
            "# comment\n\
             crates/serving/src/engine.rs :: .unwrap() :: vetted\n\
             crates/serving/src/http.rs :: .unwrap() :: no longer present\n",
        );
        assert!(bad.is_empty());
        let engine_src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let raw = scan_file("crates/serving/src/engine.rs", engine_src);
        assert_eq!(raw.len(), 1);
        let sources = move |p: &str| {
            (p == "crates/serving/src/engine.rs").then(|| engine_src.to_string())
        };
        let kept = apply_allowlist(raw, &entries, &sources);
        // The engine violation is waived; the http entry is stale.
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].rule, "allowlist-stale");
        assert_eq!(kept[0].line, 3);
    }

    #[test]
    fn malformed_allowlist_line_is_reported() {
        let (entries, bad) = parse_allowlist("not a valid entry\n");
        assert!(entries.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "allowlist-format");
    }

    #[test]
    fn shim_wiring_catches_unwired_and_undocumented() {
        let dirs = vec![
            (String::from("good"), String::from("[package]\nname = \"good\"\nversion = \"1.0.0\"\n")),
            (String::from("orphan"), String::from("[package]\nname = \"orphan\"\nversion = \"1.0.0\"\n")),
        ];
        let root = "[workspace.dependencies]\ngood = { path = \"shims/good\" }\n";
        let readme = "| `good` | good 1 | everything |\n";
        let v = check_shim_wiring(&dirs, root, "", readme);
        // orphan: not wired + not in README.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "shim-wiring"));
        assert!(v.iter().all(|x| x.file.contains("orphan")));
    }

    #[test]
    fn shim_wiring_catches_key_name_mismatch() {
        let dirs = vec![(
            String::from("dir"),
            String::from("[package]\nname = \"realname\"\nversion = \"1.0.0\"\n"),
        )];
        let root = "othername = { path = \"shims/dir\" }\n";
        let readme = "| `realname` |\n";
        let v = check_shim_wiring(&dirs, root, "", readme);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("other than its package name"));
    }

    /// The prediction cache sits on the request hot path: a panic in a
    /// probe unwinds the HTTP worker exactly like one in the engine.
    #[test]
    fn cache_is_on_the_no_panic_request_path() {
        let src = "fn probe(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint("crates/serving/src/cache.rs", src);
        assert!(v.iter().any(|x| x.rule == "no-panic-request-path"), "{v:?}");
    }

    /// The cache's shard locks must come from `crate::sync` so the loom
    /// cache/generation model actually instruments them.
    #[test]
    fn cache_is_facade_only() {
        let src = "use parking_lot::Mutex;\n";
        let v = lint("crates/serving/src/cache.rs", src);
        assert!(v.iter().any(|x| x.rule == "facade-only-sync"), "{v:?}");
        // `std::sync::Arc` is not a facade bypass: the loom build keeps it
        // for the counter handles the registry shares.
        assert!(lint("crates/serving/src/cache.rs", "use std::sync::Arc;\n").is_empty());
    }

    /// `record_hit_duration` runs on every cache hit; it must stay
    /// allocation- and lock-free like every other `record*` hot path.
    #[test]
    fn cache_record_path_must_not_allocate() {
        let src = "impl C {\n    pub fn record_hit_duration(&self) { self.tags.push(1); }\n}\n";
        let v = lint("crates/serving/src/cache.rs", src);
        assert!(v.iter().any(|x| x.rule == "record-no-alloc"), "{v:?}");
    }

    /// The reactor owns the workspace's raw syscall surface: every epoll
    /// wrapper is `unsafe` and must carry its SAFETY argument, and a poll
    /// loop that sleeps stalls every multiplexed connection at once (R4).
    #[test]
    fn reactor_requires_safety_comments_and_may_not_sleep() {
        let src = "fn wait() -> i64 {\n    unsafe { syscall4(SYS_EPOLL_WAIT, 0, 0, 0, 0) }\n}\n";
        let v = lint("crates/serving/src/server/reactor.rs", src);
        assert!(v.iter().any(|x| x.rule == "safety-comment"), "{v:?}");
        let src = "fn tick() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n";
        let v = lint("crates/serving/src/server/reactor.rs", src);
        assert!(v.iter().any(|x| x.rule == "no-sleep"), "{v:?}");
    }

    /// The dispatch queue's gather window must come from condvar timeouts,
    /// never a sleep (R4), and its lock recovery must not panic (R2): a
    /// worker that dies in `next_work` silently strands every queued
    /// request behind it.
    #[test]
    fn dispatch_queue_is_panic_free_and_sleepless() {
        let src = "fn next(q: &Q) -> W {\n    q.inner.lock().unwrap()\n}\n";
        let v = lint("crates/serving/src/server/dispatch.rs", src);
        assert!(v.iter().any(|x| x.rule == "no-panic-request-path"), "{v:?}");
        let src = "fn gather() { std::thread::sleep(WINDOW); }\n";
        let v = lint("crates/serving/src/server/dispatch.rs", src);
        assert!(v.iter().any(|x| x.rule == "no-sleep"), "{v:?}");
    }

    /// The acceptance-criteria fixture: an uncommented `unsafe` block plus
    /// a request-path `unwrap()` must both fail the lint.
    #[test]
    fn acceptance_fixture_fails_both_rules() {
        let src = "pub fn read(p: *const u8, fallback: Option<u8>) -> u8 {\n    let v = unsafe { *p };\n    v + fallback.unwrap()\n}\n";
        let v = lint("crates/serving/src/engine.rs", src);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"safety-comment"), "{v:?}");
        assert!(rules.contains(&"no-panic-request-path"), "{v:?}");
    }
}
