//! Line lexer shared by the lint pass and the concurrency analyzer.
//!
//! Strips comments and string/char literal bodies from source lines so the
//! passes above it can substring-match code without being fooled by text in
//! literals, while preserving the comment text (the SAFETY/ORDERING rules
//! need to read it). A hand-rolled scanner beats regexes here: it has to
//! survive nested block comments, raw strings spanning lines, and
//! lifetimes-vs-char-literals (`'a` vs `'a'`).

/// A source line with comments and string/char literal bodies blanked out,
/// plus what was inside the comments.
pub struct LexedLine {
    /// Code with literals/comments replaced by spaces — safe to
    /// substring-match. Columns line up with the raw line.
    pub code: String,
    /// Concatenated comment text on this line.
    pub comment: String,
}

/// Persistent lexer state across lines of one file.
#[derive(Default)]
pub struct Lexer {
    /// Depth of nested `/* */` block comments.
    block_comment: usize,
    /// Inside a raw string literal: number of `#`s in its delimiter.
    raw_string: Option<usize>,
    /// Inside an ordinary `"…"` string that did not close on its line
    /// (multi-line literals, common in test fixtures).
    string: bool,
}

impl Lexer {
    /// Strips one line.
    pub fn lex(&mut self, line: &str) -> LexedLine {
        let b = line.as_bytes();
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            if self.block_comment > 0 {
                if b[i..].starts_with(b"*/") {
                    self.block_comment -= 1;
                    i += 2;
                } else if b[i..].starts_with(b"/*") {
                    self.block_comment += 1;
                    i += 2;
                } else {
                    comment.push(b[i] as char);
                    i += 1;
                }
                code.push(' ');
                continue;
            }
            if self.string {
                if b[i] == b'\\' {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    self.string = false;
                }
                code.push(' ');
                i += 1;
                continue;
            }
            if let Some(hashes) = self.raw_string {
                let mut closer = String::from("\"");
                closer.push_str(&"#".repeat(hashes));
                if b[i..].starts_with(closer.as_bytes()) {
                    self.raw_string = None;
                    i += closer.len();
                } else {
                    i += 1;
                }
                code.push(' ');
                continue;
            }
            if b[i..].starts_with(b"//") {
                comment.push_str(&line[i + 2..]);
                // Pad so column numbers stay meaningful.
                code.push_str(&" ".repeat(b.len() - i));
                break;
            }
            if b[i..].starts_with(b"/*") {
                self.block_comment += 1;
                code.push_str("  ");
                i += 2;
                continue;
            }
            // Raw strings: r"..." / r#"..."# / br#"..."#.
            if b[i] == b'r' || (b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
                let start = if b[i] == b'b' { i + 2 } else { i + 1 };
                let mut j = start;
                while j < b.len() && b[j] == b'#' {
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    self.raw_string = Some(j - start);
                    code.push_str(&" ".repeat(j + 1 - i));
                    i = j + 1;
                    continue;
                }
            }
            if b[i] == b'"' {
                // Ordinary string literal; honours backslash escapes and
                // carries over to the next line when unterminated
                // (multi-line literals).
                code.push(' ');
                i += 1;
                self.string = true;
                while i < b.len() {
                    if b[i] == b'\\' {
                        code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        code.push(' ');
                        i += 1;
                        self.string = false;
                        break;
                    }
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            // Char literal, distinguished from a lifetime by the closing
            // quote one-or-two bytes later.
            if b[i] == b'\'' {
                let escaped = i + 1 < b.len() && b[i + 1] == b'\\';
                let close = if escaped { i + 3 } else { i + 2 };
                if close < b.len() && b[close] == b'\'' {
                    code.push_str(&" ".repeat(close + 1 - i));
                    i = close + 1;
                    continue;
                }
            }
            code.push(b[i] as char);
            i += 1;
        }
        LexedLine { code, comment }
    }

    /// `true` while inside a multi-line block comment, raw string, or
    /// ordinary string literal.
    pub fn mid_literal(&self) -> bool {
        self.block_comment > 0 || self.raw_string.is_some() || self.string
    }
}

/// Net brace depth change of a lexed code line.
pub fn braces(code: &str) -> i32 {
    let mut d = 0;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Finds `token` in `code` at a word boundary.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(code.as_bytes()[at - 1]);
        let end = at + token.len();
        let after_ok = end >= code.len() || !is_ident(code.as_bytes()[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = end;
    }
    None
}

/// `true` for bytes that can appear in a Rust identifier.
pub fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<String> {
        let mut lx = Lexer::default();
        src.lines().map(|l| lx.lex(l).code).collect()
    }

    #[test]
    fn multi_line_string_is_blanked_until_its_close() {
        let src = "let s = \"first {\nsecond }\nthird\";\nlet t = 1 { }";
        let code = lex_all(src);
        assert_eq!(braces(&code[0]), 0, "open brace inside string: {:?}", code[0]);
        assert_eq!(braces(&code[1]), 0, "close brace inside string: {:?}", code[1]);
        assert!(code[3].contains('{') && code[3].contains('}'), "code after close survives");
    }

    #[test]
    fn escaped_quote_does_not_close_a_multi_line_string() {
        let src = "let s = \"a \\\" {\nstill <- in string }\n\"; let x = 2;";
        let code = lex_all(src);
        assert_eq!(braces(&code[0]) + braces(&code[1]), 0);
        assert!(code[2].contains("let x = 2"), "string closed on line 3: {:?}", code[2]);
    }

    #[test]
    fn brace_char_literals_do_not_count() {
        let mut lx = Lexer::default();
        let code = lx.lex("match c { '{' => a('}'), _ => {} }").code;
        assert_eq!(braces(&code), 0);
    }

    #[test]
    fn comment_text_is_preserved_through_block_comments() {
        let mut lx = Lexer::default();
        assert!(lx.lex("/* ORDERING: pairs with x */ y.load(o)").comment.contains("ORDERING:"));
        assert!(lx.lex("x // ORDERING: tail").comment.contains("ORDERING: tail"));
    }
}
