//! Analyzer orchestration: walk → parse → rules → allowlist → output.
//!
//! `cargo run -p xtask -- analyze [--json] [--baseline FILE]` runs the
//! whole pipeline over `crates/` (shims implement the primitives the rules
//! reason about, so they are out of scope; test code is skipped inside the
//! rules). Any finding fails the run — vetted exceptions live in
//! `crates/xtask/analyze_allow.txt` as
//! `rule :: file :: function :: needle :: justification` lines with the
//! same stale-entry detection as the lint allowlist: an entry that stops
//! waiving anything becomes a finding itself.

use std::path::Path;

use crate::facts::{parse_file, FileFacts};
use crate::rules::{run_rules, AnalyzeConfig, Finding};

/// One `analyze_allow.txt` entry.
#[derive(Debug, Clone)]
pub struct AnalyzeAllowEntry {
    pub rule: String,
    pub file: String,
    pub function: String,
    /// Substring the finding's message must contain (usually the needle,
    /// e.g. `` `.lock(` ``).
    pub needle: String,
    pub justification: String,
    pub source_line: usize,
}

/// Parses `analyze_allow.txt`. Malformed lines become findings.
pub fn parse_analyze_allowlist(content: &str) -> (Vec<AnalyzeAllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(5, " :: ").collect();
        if parts.len() != 5 || parts.iter().any(|p| p.trim().is_empty()) {
            findings.push(Finding {
                rule: "analyze-allowlist-format",
                file: String::from("crates/xtask/analyze_allow.txt"),
                line: i + 1,
                function: String::new(),
                message: format!(
                    "expected `rule :: file :: function :: needle :: justification`, \
                     got `{line}`"
                ),
                chain: Vec::new(),
            });
            continue;
        }
        entries.push(AnalyzeAllowEntry {
            rule: parts[0].trim().to_string(),
            file: parts[1].trim().to_string(),
            function: parts[2].trim().to_string(),
            needle: parts[3].trim().to_string(),
            justification: parts[4].trim().to_string(),
            source_line: i + 1,
        });
    }
    (entries, findings)
}

/// Applies the allowlist: waives matching findings, then reports unused
/// (stale) entries so the list can only shrink, never rot.
pub fn apply_analyze_allowlist(
    findings: Vec<Finding>,
    entries: &[AnalyzeAllowEntry],
) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for f in findings {
        let mut waived = false;
        for (i, e) in entries.iter().enumerate() {
            if e.rule == f.rule
                && e.file == f.file
                && e.function == f.function
                && f.message.contains(&e.needle)
            {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            kept.push(f);
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "analyze-allowlist-stale",
                file: String::from("crates/xtask/analyze_allow.txt"),
                line: e.source_line,
                function: String::new(),
                message: format!(
                    "entry `{} :: {} :: {} :: {}` no longer waives anything; remove it",
                    e.rule, e.file, e.function, e.needle
                ),
                chain: Vec::new(),
            });
        }
    }
    kept
}

/// Parses every source and runs the rules + allowlist: the pure core used
/// by both the workspace entry point and the fixture tests.
pub fn analyze_sources(
    sources: &[(String, String)],
    config: &AnalyzeConfig,
    allow: &[AnalyzeAllowEntry],
) -> Vec<Finding> {
    let mut files: Vec<FileFacts> = Vec::new();
    let mut findings = Vec::new();
    for (path, content) in sources {
        let facts = parse_file(path, content);
        for err in &facts.errors {
            findings.push(Finding {
                rule: "parse-error",
                file: path.clone(),
                line: 0,
                function: String::new(),
                message: err.clone(),
                chain: Vec::new(),
            });
        }
        files.push(facts);
    }
    findings.extend(run_rules(&files, config));
    let mut out = apply_analyze_allowlist(findings, allow);
    out.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    out
}

/// Parses the whole workspace's `crates/` tree into facts (no rules) —
/// exposed for the parser round-trip test.
pub fn parse_workspace(root: &Path) -> Result<Vec<FileFacts>, String> {
    Ok(workspace_sources(root)?
        .iter()
        .map(|(p, c)| parse_file(p, c))
        .collect())
}

/// Collects `(relpath, content)` for every analyzed source in the
/// workspace: `crates/` only (shims implement the primitives; top-level
/// `tests/` are integration-test code the rules skip anyway).
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    crate::collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let content =
            std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        out.push((rel, content));
    }
    Ok(out)
}

/// Full workspace analysis with the committed allowlist.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = workspace_sources(root)?;
    let allow_content =
        std::fs::read_to_string(root.join("crates/xtask/analyze_allow.txt")).unwrap_or_default();
    let (entries, mut findings) = parse_analyze_allowlist(&allow_content);
    findings.extend(analyze_sources(&sources, &AnalyzeConfig::default(), &entries));
    Ok(findings)
}

// ---------------------------------------------------------------------------
// JSON output + baseline
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as stable, diffable JSON (sorted; one finding per
/// entry; chains included) — the `--json` output and the baseline format.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", json_escape(f.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"function\": \"{}\", ", json_escape(&f.function)));
        out.push_str(&format!("\"message\": \"{}\", ", json_escape(&f.message)));
        out.push_str("\"chain\": [");
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(hop)));
        }
        out.push_str("]}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Compares current findings against a committed baseline file (the JSON
/// rendered by [`render_json`]). Returns `Err` with a human-readable diff
/// when they disagree.
pub fn check_baseline(findings: &[Finding], baseline: &str) -> Result<(), String> {
    let current = render_json(findings);
    if current.trim() == baseline.trim() {
        return Ok(());
    }
    let cur_lines: Vec<&str> = current.lines().collect();
    let base_lines: Vec<&str> = baseline.lines().collect();
    let mut diff = String::from("analyzer findings differ from the committed baseline:\n");
    for l in &cur_lines {
        if !base_lines.contains(l) {
            diff.push_str(&format!("  + {l}\n"));
        }
    }
    for l in &base_lines {
        if !cur_lines.contains(l) {
            diff.push_str(&format!("  - {l}\n"));
        }
    }
    diff.push_str(
        "regenerate with `cargo run -p xtask -- analyze --json > \
         crates/xtask/analyze_baseline.json` if the change is intended",
    );
    Err(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, function: &str, message: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            function: function.to_string(),
            message: message.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn allowlist_waives_matches_and_reports_stale_entries() {
        let (entries, format_findings) = parse_analyze_allowlist(
            "# comment\n\
             reactor-blocking :: a.rs :: Q::push :: `.lock(` :: fine\n\
             reactor-blocking :: b.rs :: Nope::f :: `.lock(` :: stale\n",
        );
        assert!(format_findings.is_empty());
        let findings = vec![finding(
            "reactor-blocking",
            "a.rs",
            "Q::push",
            "mutex lock `inner` (`.lock(`) reachable from the reactor event loop",
        )];
        let kept = apply_analyze_allowlist(findings, &entries);
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].rule, "analyze-allowlist-stale");
        assert_eq!(kept[0].line, 3, "stale entry's own line number");
    }

    #[test]
    fn malformed_allowlist_lines_are_findings() {
        let (entries, findings) = parse_analyze_allowlist("not a valid line\n");
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "analyze-allowlist-format");
    }

    #[test]
    fn allowlist_must_match_function_not_just_file() {
        let (entries, _) =
            parse_analyze_allowlist("reactor-blocking :: a.rs :: Q::push :: `.lock(` :: ok\n");
        let findings = vec![finding(
            "reactor-blocking",
            "a.rs",
            "Q::other",
            "mutex lock `inner` (`.lock(`) reachable from the reactor event loop",
        )];
        let kept = apply_analyze_allowlist(findings, &entries);
        assert!(kept.iter().any(|f| f.rule == "reactor-blocking"), "different fn not waived");
    }

    #[test]
    fn render_json_is_stable_and_escaped() {
        let f = finding("parse-error", "a\\b.rs", "f", "quote \" and\nnewline");
        let json = render_json(&[f]);
        assert!(json.contains("\"a\\\\b.rs\""));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.starts_with("{\n  \"version\": 1"));
    }

    #[test]
    fn baseline_diff_names_both_directions() {
        let current = vec![finding("parse-error", "new.rs", "", "x")];
        let stale_baseline = render_json(&[finding("parse-error", "old.rs", "", "y")]);
        let err = check_baseline(&current, &stale_baseline).unwrap_err();
        assert!(err.contains("+") && err.contains("new.rs"));
        assert!(err.contains("-") && err.contains("old.rs"));
        assert!(check_baseline(&current, &render_json(&current)).is_ok());
    }
}
