//! Workspace call graph over [`crate::facts`].
//!
//! Resolution is deliberately conservative: an edge is added only when the
//! callee can be named with reasonable confidence —
//!
//! 1. **Typed receiver chains**: `self.shared.gate.try_begin_request()`
//!    walks the struct field tables (`Reactor.shared: Arc<Shared>` →
//!    `Shared.gate: LifecycleGate`) to `LifecycleGate::try_begin_request`.
//! 2. **Path calls**: `Type::f(..)` via the impl-type table, `module::f(..)`
//!    via file stems in the same crate, `Self::f(..)` via the enclosing
//!    `impl`.
//! 3. **Unique-name fallback**: an untypeable receiver links only when
//!    exactly one workspace method has that name *and* the name is not a
//!    common std-container/std-sync method (the denylist below) — multiple
//!    candidates or a denylisted name mean no edge.
//!
//! Missed edges weaken reachability (documented limitation); they never
//! create false positives in the blocking/lock rules.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::facts::{Callee, FileFacts};

/// Index of one function: `(file index, fn index within the file)`.
pub type FnId = (usize, usize);

/// Method names the unique-name fallback refuses to resolve: they are
/// overwhelmingly std-container/std-sync calls whose receiver we failed to
/// type, and a single same-named workspace method must not capture them.
const FALLBACK_DENYLIST: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "get_mut", "get_or_init", "len", "is_empty",
    "clear", "iter", "iter_mut", "into_iter", "drain", "retain", "extend", "contains",
    "contains_key", "take", "clone", "next", "read", "write", "flush", "send", "recv",
    "recv_timeout", "join", "wait", "wait_timeout", "wait_while", "notify_all", "notify_one",
    "lock", "try_lock", "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "fetch_min", "fetch_max", "compare_exchange", "unwrap", "expect",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "map", "and_then", "ok", "err", "min",
    "max", "sort", "sort_by", "split", "trim", "parse", "new", "default", "from", "into",
    "to_string", "to_owned", "to_vec", "as_ref", "as_mut", "as_str", "as_bytes", "fmt", "eq",
    "cmp", "hash", "drop", "write_all", "read_exact", "read_to_end", "sleep", "spawn",
    "with", "finish", "field", "count", "sum", "elapsed", "abs", "floor", "ceil", "shutdown",
];

pub struct CallGraph<'a> {
    pub files: &'a [FileFacts],
    /// Flat function list; `FnId` indexes through `files` directly.
    pub fn_ids: Vec<FnId>,
    by_typed: HashMap<(String, String), Vec<FnId>>, // (impl type, name)
    methods_by_name: HashMap<String, Vec<FnId>>,
    free_by_file: HashMap<(usize, String), Vec<FnId>>,
    free_by_crate: HashMap<(String, String), Vec<FnId>>,
    qual_by_file: HashMap<(usize, String), Vec<FnId>>,
    /// Workspace type name → field name → base type, merged across files.
    fields: HashMap<String, HashMap<String, String>>,
    /// File stems per crate: (crate, stem) → file indices.
    stems: HashMap<(String, String), Vec<usize>>,
    impl_types: HashSet<String>,
}

impl<'a> CallGraph<'a> {
    pub fn build(files: &'a [FileFacts]) -> Self {
        let mut g = CallGraph {
            files,
            fn_ids: Vec::new(),
            by_typed: HashMap::new(),
            methods_by_name: HashMap::new(),
            free_by_file: HashMap::new(),
            free_by_crate: HashMap::new(),
            qual_by_file: HashMap::new(),
            fields: HashMap::new(),
            stems: HashMap::new(),
            impl_types: HashSet::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            let stem = file
                .path
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_suffix(".rs"))
                .unwrap_or("")
                .to_string();
            g.stems.entry((file.crate_name.clone(), stem)).or_default().push(fi);
            for s in &file.structs {
                let table = g.fields.entry(s.name.clone()).or_default();
                for (f, ty) in &s.fields {
                    table.entry(f.clone()).or_insert_with(|| ty.clone());
                }
            }
            for (ni, f) in file.fns.iter().enumerate() {
                let id = (fi, ni);
                g.fn_ids.push(id);
                g.qual_by_file.entry((fi, f.qual.clone())).or_default().push(id);
                match &f.impl_type {
                    Some(ty) => {
                        g.impl_types.insert(ty.clone());
                        g.by_typed.entry((ty.clone(), f.name.clone())).or_default().push(id);
                        g.methods_by_name.entry(f.name.clone()).or_default().push(id);
                    }
                    None => {
                        g.free_by_file.entry((fi, f.name.clone())).or_default().push(id);
                        g.free_by_crate
                            .entry((file.crate_name.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        g
    }

    pub fn fn_facts(&self, id: FnId) -> &crate::facts::FnFacts {
        &self.files[id.0].fns[id.1]
    }

    pub fn file_of(&self, id: FnId) -> &FileFacts {
        &self.files[id.0]
    }

    /// Looks up a function by `(file path, qualified name)` — the root
    /// specification used by the reactor-blocking rule.
    pub fn lookup(&self, path: &str, qual: &str) -> Vec<FnId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.path == path)
            .flat_map(|(fi, _)| {
                self.qual_by_file.get(&(fi, qual.to_string())).cloned().unwrap_or_default()
            })
            .collect()
    }

    /// Walks a `self.a.b` receiver chain through the field tables starting
    /// from `impl_ty`; returns the final base type, or `None` if any hop is
    /// untypeable.
    fn walk_chain(&self, impl_ty: &str, chain: &[String]) -> Option<String> {
        let mut ty = impl_ty.to_string();
        for seg in chain {
            if seg == "()" || seg == "[]" {
                return None;
            }
            ty = self.fields.get(&ty)?.get(seg)?.clone();
        }
        Some(ty)
    }

    /// Resolves one call site to zero or more workspace functions.
    pub fn resolve(&self, caller: FnId, callee: &Callee) -> Vec<FnId> {
        let file = self.file_of(caller);
        let impl_ty = self.fn_facts(caller).impl_type.clone();
        match callee {
            Callee::Bare(name) => {
                if let Some(v) = self.free_by_file.get(&(caller.0, name.clone())) {
                    return v.clone();
                }
                match self.free_by_crate.get(&(file.crate_name.clone(), name.clone())) {
                    Some(v) if v.len() == 1 => v.clone(),
                    _ => Vec::new(),
                }
            }
            Callee::Path(segs) => {
                if segs.len() < 2 {
                    return Vec::new();
                }
                let name = segs[segs.len() - 1].clone();
                let prev = segs[segs.len() - 2].as_str();
                if prev == "Self" {
                    if let Some(ty) = &impl_ty {
                        return self
                            .by_typed
                            .get(&(ty.clone(), name))
                            .cloned()
                            .unwrap_or_default();
                    }
                    return Vec::new();
                }
                if self.impl_types.contains(prev) {
                    return self
                        .by_typed
                        .get(&(prev.to_string(), name))
                        .cloned()
                        .unwrap_or_default();
                }
                // `module::f(..)` — file stem in the same crate.
                if let Some(fis) = self.stems.get(&(file.crate_name.clone(), prev.to_string())) {
                    let mut out = Vec::new();
                    for fi in fis {
                        if let Some(v) = self.free_by_file.get(&(*fi, name.clone())) {
                            out.extend(v.iter().copied());
                        }
                    }
                    return out;
                }
                Vec::new()
            }
            Callee::Method { chain, name } => {
                if chain.first().map(String::as_str) == Some("self") {
                    if let Some(ty) = &impl_ty {
                        if chain.len() == 1 {
                            if let Some(v) = self.by_typed.get(&(ty.clone(), name.clone())) {
                                return v.clone();
                            }
                            // `self.f()` with no such method (trait default,
                            // deref) — fall through to the name fallback.
                        } else if let Some(final_ty) = self.walk_chain(ty, &chain[1..]) {
                            if self.fields.contains_key(&final_ty)
                                || self.impl_types.contains(&final_ty)
                            {
                                // Known workspace type: its method set is
                                // authoritative; absence means std/trait
                                // dispatch we cannot see. No fallback.
                                return self
                                    .by_typed
                                    .get(&(final_ty, name.clone()))
                                    .cloned()
                                    .unwrap_or_default();
                            }
                            // Typed to a non-workspace type (Vec, Mutex, …):
                            // not ours. No fallback either — the type is
                            // known, just foreign.
                            return Vec::new();
                        }
                    }
                }
                // Untypeable receiver: unique-name fallback with denylist.
                if FALLBACK_DENYLIST.contains(&name.as_str()) {
                    return Vec::new();
                }
                match self.methods_by_name.get(name) {
                    Some(v) if v.len() == 1 => v.clone(),
                    _ => Vec::new(),
                }
            }
        }
    }

    /// BFS from `roots`; returns every reachable function with its
    /// predecessor (for chain reconstruction): `fn → (pred fn, call line)`.
    pub fn reachable(&self, roots: &[FnId]) -> HashMap<FnId, Option<(FnId, usize)>> {
        let mut seen: HashMap<FnId, Option<(FnId, usize)>> = HashMap::new();
        let mut queue = VecDeque::new();
        for r in roots {
            if seen.insert(*r, None).is_none() {
                queue.push_back(*r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let facts = self.fn_facts(id);
            for call in &facts.calls {
                for target in self.resolve(id, &call.callee) {
                    if self.fn_facts(target).is_test {
                        continue;
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(target) {
                        e.insert(Some((id, call.line)));
                        queue.push_back(target);
                    }
                }
            }
        }
        seen
    }

    /// Reconstructs the call chain from a root to `id` as
    /// `file:line fn_qual` hops.
    pub fn chain_to(
        &self,
        id: FnId,
        preds: &HashMap<FnId, Option<(FnId, usize)>>,
    ) -> Vec<String> {
        let mut hops = Vec::new();
        let mut cur = id;
        let mut fuel = 64;
        while fuel > 0 {
            fuel -= 1;
            let facts = self.fn_facts(cur);
            let file = self.file_of(cur);
            match preds.get(&cur) {
                Some(Some((pred, line))) => {
                    let pfacts = self.fn_facts(*pred);
                    let pfile = self.file_of(*pred);
                    hops.push(format!(
                        "{}:{} {} -> {}",
                        pfile.path, line, pfacts.qual, facts.qual
                    ));
                    cur = *pred;
                }
                _ => {
                    hops.push(format!("{}:{} {} (root)", file.path, facts.line, facts.qual));
                    break;
                }
            }
        }
        hops.reverse();
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::parse_file;

    fn graph_of(files: &[FileFacts]) -> CallGraph<'_> {
        CallGraph::build(files)
    }

    fn id_of(g: &CallGraph<'_>, qual: &str) -> FnId {
        *g.fn_ids
            .iter()
            .find(|id| g.fn_facts(**id).qual == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn typed_field_chains_resolve_across_structs() {
        let src = "struct A { b: Arc<B> }\nstruct B { c: C }\nimpl C {\n    fn hit(&self) {}\n}\nimpl A {\n    fn go(&self) { self.b.c.hit(); }\n}\n";
        let files = vec![parse_file("crates/x/src/a.rs", src)];
        let g = graph_of(&files);
        let go = id_of(&g, "A::go");
        let call = &g.fn_facts(go).calls[0];
        let targets = g.resolve(go, &call.callee);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fn_facts(targets[0]).qual, "C::hit");
    }

    #[test]
    fn denylisted_names_never_resolve_through_the_fallback() {
        // `q.push(..)` on an untypeable receiver must NOT link to the one
        // workspace method named `push`.
        let src = "impl Queue {\n    fn push(&self) {}\n}\nfn f(q: &X) { q.push(); }\n";
        let files = vec![parse_file("crates/x/src/q.rs", src)];
        let g = graph_of(&files);
        let f = id_of(&g, "f");
        let call = &g.fn_facts(f).calls[0];
        assert!(g.resolve(f, &call.callee).is_empty());
    }

    #[test]
    fn unique_unusual_names_do_resolve_through_the_fallback() {
        let src = "impl Queue {\n    fn push_blocking(&self) {}\n}\nfn f(q: &X) { q.push_blocking(); }\n";
        let files = vec![parse_file("crates/x/src/q.rs", src)];
        let g = graph_of(&files);
        let f = id_of(&g, "f");
        let call = &g.fn_facts(f).calls[0];
        let targets = g.resolve(f, &call.callee);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fn_facts(targets[0]).qual, "Queue::push_blocking");
    }

    #[test]
    fn reachability_skips_test_functions() {
        let src = "fn root() { helper(); }\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n";
        let files = vec![parse_file("crates/x/src/r.rs", src)];
        let g = graph_of(&files);
        let root = id_of(&g, "root");
        let seen = g.reachable(&[root]);
        assert!(seen.contains_key(&id_of(&g, "helper")));
        assert!(!seen.contains_key(&id_of(&g, "t")));
    }
}
