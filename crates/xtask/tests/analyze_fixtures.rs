//! Fixture suite for the concurrency analyzer.
//!
//! Every file under `crates/xtask/fixtures/` is a self-describing corpus:
//! comment directives at the top declare the virtual path the source is
//! analyzed under, optional reactor roots and allowlist entries, and the
//! exact set of rules the analyzer must fire (or `expect: none`).
//!
//! * seeded-**bad** fixtures pin that each rule still detects its target
//!   defect (a deadlock cycle, a mis-ordered seqlock, a blocking call
//!   smuggled below the event loop, …);
//! * **good** fixtures pin that the legitimate patterns (consistent lock
//!   order, condvar waits, annotated weak orderings, allowlisted handoffs)
//!   stay clean — the false-positive budget is zero.

use std::collections::BTreeSet;
use std::path::PathBuf;

use xtask::analyze::{analyze_sources, parse_analyze_allowlist};
use xtask::rules::AnalyzeConfig;

struct Fixture {
    name: String,
    /// Virtual workspace-relative path the body is analyzed under.
    path: String,
    /// `(file, qualified fn)` reactor roots; non-empty enables the
    /// reactor-blocking rule with `require_roots`.
    roots: Vec<(String, String)>,
    /// Raw allowlist lines fed through the normal parser.
    allow: String,
    /// Rules that must fire (empty + `none` directive = must be clean).
    expect: BTreeSet<String>,
    expect_none: bool,
    body: String,
}

fn parse_fixture(name: &str, content: &str) -> Fixture {
    let mut f = Fixture {
        name: name.to_string(),
        path: String::new(),
        roots: Vec::new(),
        allow: String::new(),
        expect: BTreeSet::new(),
        expect_none: false,
        body: content.to_string(),
    };
    for line in content.lines() {
        let Some(rest) = line.trim().strip_prefix("// ") else { continue };
        if let Some(p) = rest.strip_prefix("path: ") {
            f.path = p.trim().to_string();
        } else if let Some(r) = rest.strip_prefix("root: ") {
            let mut parts = r.splitn(2, " :: ");
            let file = parts.next().unwrap_or("").trim().to_string();
            let qual = parts.next().unwrap_or("").trim().to_string();
            assert!(!file.is_empty() && !qual.is_empty(), "{name}: bad root directive `{r}`");
            f.roots.push((file, qual));
        } else if let Some(a) = rest.strip_prefix("allow: ") {
            f.allow.push_str(a.trim());
            f.allow.push('\n');
        } else if let Some(e) = rest.strip_prefix("expect: ") {
            let e = e.trim();
            if e == "none" {
                f.expect_none = true;
            } else {
                f.expect.insert(e.to_string());
            }
        }
    }
    assert!(!f.path.is_empty(), "{name}: missing `// path:` directive");
    assert!(
        f.expect_none != !f.expect.is_empty() || !f.expect.is_empty(),
        "{name}: needs `// expect: <rule>` lines or `// expect: none`"
    );
    f
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn load_fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("fixtures entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().expect("stem").to_string_lossy().into_owned();
        let content = std::fs::read_to_string(&path).expect("read fixture");
        out.push(parse_fixture(&name, &content));
    }
    out
}

fn run_fixture(f: &Fixture) -> Vec<xtask::rules::Finding> {
    let config = AnalyzeConfig {
        reactor_roots: f.roots.clone(),
        require_roots: !f.roots.is_empty(),
    };
    let (entries, mut findings) = parse_analyze_allowlist(&f.allow);
    let sources = vec![(f.path.clone(), f.body.clone())];
    findings.extend(analyze_sources(&sources, &config, &entries));
    findings
}

#[test]
fn every_fixture_parses_without_errors() {
    for f in load_fixtures() {
        let facts = xtask::facts::parse_file(&f.path, &f.body);
        assert!(
            facts.errors.is_empty(),
            "fixture {} has parse errors: {:?}",
            f.name,
            facts.errors
        );
    }
}

#[test]
fn bad_fixtures_are_flagged_and_good_fixtures_are_clean() {
    let fixtures = load_fixtures();
    assert!(fixtures.len() >= 15, "fixture corpus shrank to {}", fixtures.len());
    for f in &fixtures {
        let findings = run_fixture(f);
        let fired: BTreeSet<String> =
            findings.iter().map(|x| x.rule.to_string()).collect();
        if f.expect_none {
            assert!(
                findings.is_empty(),
                "good fixture {} must be clean, got:\n{}",
                f.name,
                findings.iter().map(|x| format!("  {x}\n")).collect::<String>()
            );
        } else {
            assert_eq!(
                fired, f.expect,
                "fixture {} fired {:?}, expected {:?}:\n{}",
                f.name,
                fired,
                f.expect,
                findings.iter().map(|x| format!("  {x}\n")).collect::<String>()
            );
        }
    }
}

#[test]
fn fixture_corpus_covers_every_rule_family() {
    // Belt-and-braces: each rule family keeps >= 3 seeded-bad expectations
    // and >= 2 clean fixtures, per the correctness-tooling contract.
    let fixtures = load_fixtures();
    let bad = |rules: &[&str]| -> usize {
        fixtures
            .iter()
            .filter(|f| f.expect.iter().any(|r| rules.contains(&r.as_str())))
            .count()
    };
    let lock = bad(&["lock-order-cycle", "lock-held-across-blocking"]);
    let atomic = bad(&["atomic-ordering-comment", "atomic-acquire-partner"]);
    let reactor = bad(&["reactor-blocking"]);
    assert!(lock >= 3, "lock-order family has only {lock} bad fixtures");
    assert!(atomic >= 3, "atomic family has only {atomic} bad fixtures");
    assert!(reactor >= 3, "reactor family has only {reactor} bad fixtures");
    let good = fixtures.iter().filter(|f| f.expect_none).count();
    assert!(good >= 6, "only {good} clean fixtures (need >= 2 per family)");
}

#[test]
fn deadlock_cycle_finding_reports_both_chains() {
    // The direct-cycle fixture must explain itself: the cycle message and
    // an acquisition chain for each edge.
    let fixtures = load_fixtures();
    let f = fixtures
        .iter()
        .find(|f| f.name == "bad_lock_cycle_direct")
        .expect("bad_lock_cycle_direct fixture");
    let findings = run_fixture(f);
    let cycle = findings
        .iter()
        .find(|x| x.rule == "lock-order-cycle")
        .expect("cycle finding");
    assert!(cycle.message.contains("app/a") && cycle.message.contains("app/b"),
        "cycle message should name both lock classes: {}", cycle.message);
    assert!(
        cycle.chain.len() >= 2,
        "cycle must carry an acquisition chain per edge: {:?}",
        cycle.chain
    );
}

#[test]
fn two_hop_reactor_finding_carries_the_call_chain() {
    let fixtures = load_fixtures();
    let f = fixtures
        .iter()
        .find(|f| f.name == "bad_reactor_two_hops")
        .expect("bad_reactor_two_hops fixture");
    let findings = run_fixture(f);
    let lock_finding = findings
        .iter()
        .find(|x| x.rule == "reactor-blocking" && x.message.contains("`.lock(`"))
        .expect("lock reachability finding");
    let chain = lock_finding.chain.join("\n");
    assert!(
        chain.contains("EventLoop::run") && chain.contains("EventLoop::forward"),
        "chain must walk run -> forward -> push_blocking:\n{chain}"
    );
}
