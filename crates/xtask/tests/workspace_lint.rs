//! Tier-1 wiring of the workspace lint: plain `cargo test` fails if any
//! rule regresses, so the no-panic request path, the SAFETY-comment
//! discipline, and the `sync`-facade boundary cannot rot silently.

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    // crates/xtask -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf();
    let violations = xtask::lint_workspace(&root).expect("lint pass must run");
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}
