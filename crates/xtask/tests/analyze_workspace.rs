//! Tier-1 wiring of the concurrency analyzer against the live workspace.
//!
//! * the fact parser must round-trip every workspace source with zero
//!   structural errors (a parse error means the analyzer is blind to that
//!   file, which is how rules rot);
//! * guard scopes must match hand-checked ground truth in the dispatch
//!   queue (the subtlest scoping in the tree: a condvar wait re-binding
//!   its own guard in a loop);
//! * the full analysis must come back clean, and must match the committed
//!   JSON baseline byte-for-byte;
//! * the lint walk must keep `shims/loom` and the reactor's raw-syscall
//!   module inside the SAFETY-comment rule's reach.

use std::path::PathBuf;

use xtask::facts::BlockKind;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn parser_round_trips_every_workspace_file() {
    let files = xtask::analyze::parse_workspace(&workspace_root()).expect("parse workspace");
    assert!(files.len() > 30, "workspace walk found only {} files", files.len());
    let mut total_fns = 0;
    for f in &files {
        assert!(f.errors.is_empty(), "{} has parse errors: {:?}", f.path, f.errors);
        total_fns += f.fns.len();
    }
    assert!(total_fns > 300, "suspiciously few functions parsed: {total_fns}");
}

#[test]
fn dispatch_queue_guard_scopes_match_ground_truth() {
    let files = xtask::analyze::parse_workspace(&workspace_root()).expect("parse workspace");
    let dispatch = files
        .iter()
        .find(|f| f.path == "crates/serving/src/server/dispatch.rs")
        .expect("dispatch.rs parsed");
    let next_work = dispatch
        .fns
        .iter()
        .find(|f| f.qual == "DispatchQueue::next_work")
        .expect("DispatchQueue::next_work found");
    // It locks `inner` and parks on the batching condvar...
    assert!(next_work.locks.iter().any(|l| l.class == "inner"), "lock site on `inner`");
    assert!(
        next_work.blocking.iter().any(|b| b.kind == BlockKind::CondvarWait),
        "condvar wait recorded"
    );
    // ...but the wait releases the mutex, so "guard held across blocking"
    // must NOT fire here: the only held_blocking entries allowed are
    // condvar waits, which the rule exempts.
    for hb in &next_work.held_blocking {
        assert_eq!(
            next_work.blocking[hb.site].kind,
            BlockKind::CondvarWait,
            "non-condvar blocking under the `inner` guard in next_work"
        );
    }

    // Ground truth for the struct table: the call graph types
    // `self.shared.*` chains through these fields.
    let shared = files
        .iter()
        .flat_map(|f| f.structs.iter())
        .find(|s| s.name == "DispatchQueue")
        .expect("DispatchQueue struct facts");
    assert!(
        shared.fields.iter().any(|(n, t)| n == "cond" && t == "Condvar"),
        "DispatchQueue.cond: Condvar in field table, got {:?}",
        shared.fields
    );
}

#[test]
fn trace_ring_record_is_fully_annotated() {
    // The seqlock writer is the densest weak-ordering site in the tree;
    // every one of its atomics must carry an ORDERING comment.
    let files = xtask::analyze::parse_workspace(&workspace_root()).expect("parse workspace");
    let trace = files
        .iter()
        .find(|f| f.path == "crates/telemetry/src/trace.rs")
        .expect("trace.rs parsed");
    let record = trace
        .fns
        .iter()
        .find(|f| f.qual == "TraceRing::record")
        .expect("TraceRing::record found");
    assert!(record.atomics.len() >= 10, "seqlock writer atomics: {}", record.atomics.len());
    for a in &record.atomics {
        assert!(
            a.ordering == "SeqCst" || a.has_ordering_comment,
            "unannotated {} at trace.rs:{}",
            a.ordering,
            a.line
        );
    }
}

#[test]
fn workspace_analysis_is_clean() {
    let findings =
        xtask::analyze::analyze_workspace(&workspace_root()).expect("analyze workspace");
    assert!(
        findings.is_empty(),
        "concurrency analyzer findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn analysis_matches_committed_baseline() {
    let root = workspace_root();
    let findings = xtask::analyze::analyze_workspace(&root).expect("analyze workspace");
    let baseline = std::fs::read_to_string(root.join("crates/xtask/analyze_baseline.json"))
        .expect("committed baseline");
    if let Err(diff) = xtask::analyze::check_baseline(&findings, &baseline) {
        panic!("{diff}");
    }
}

#[test]
fn reactor_root_exists_in_the_live_workspace() {
    // `require_roots` only protects us if the configured root matches a
    // real function — pin the (file, qual) pair the default config names.
    let files = xtask::analyze::parse_workspace(&workspace_root()).expect("parse workspace");
    let reactor = files
        .iter()
        .find(|f| f.path == "crates/serving/src/server/reactor.rs")
        .expect("reactor.rs parsed");
    assert!(
        reactor.fns.iter().any(|f| f.qual == "Reactor::run"),
        "Reactor::run missing — update AnalyzeConfig::default and the allowlist"
    );
}

#[test]
fn safety_rule_covers_shims_and_reactor_syscall_module() {
    // Coverage pin 1: the lint walk visits the loom shim and the reactor
    // (whose `sys` module is the only raw-syscall surface in the tree).
    let targets = xtask::lint_targets(&workspace_root()).expect("lint targets");
    for must in [
        "shims/loom/src/lib.rs",
        "shims/loom/src/sync.rs",
        "crates/serving/src/server/reactor.rs",
    ] {
        assert!(targets.iter().any(|t| t == must), "lint walk skips {must}");
    }
    // Coverage pin 2: the SAFETY rule actually fires at those paths — it
    // is path-independent, so an uncommented `unsafe` anywhere is caught.
    for path in ["shims/loom/src/sync.rs", "crates/serving/src/server/reactor.rs"] {
        let bad = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let violations = xtask::scan_file(path, bad);
        assert!(
            violations.iter().any(|v| v.rule == "safety-comment"),
            "safety-comment rule must apply to {path}"
        );
    }
}

#[test]
fn analyzer_skips_its_own_fixture_corpus() {
    // The fixtures are deliberately-bad code; if the walk ever picks them
    // up, the workspace fails on its own test data.
    let sources =
        xtask::analyze::workspace_sources(&workspace_root()).expect("workspace sources");
    assert!(
        sources.iter().all(|(p, _)| !p.contains("/fixtures/")),
        "fixtures leaked into the analysis walk"
    );
    // But the corpus itself must exist where the fixture suite expects it.
    assert!(
        workspace_root().join("crates/xtask/fixtures").is_dir(),
        "fixture corpus missing"
    );
}
